#include "sim/master_worker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "util/log.hpp"

namespace cdsf::sim {

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               const TechniqueFactory& factory, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  if (messages.latency < 0.0 || messages.master_service_time < 0.0) {
    throw std::invalid_argument("simulate_loop_mpi: message costs must be >= 0");
  }
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) {
    throw std::invalid_argument("simulate_loop_mpi: factory returned null");
  }
  technique->reset();

  // Fault tolerance is armed only when a crash-kind failure exists, so
  // degrade-only and failure-free runs stay bit-identical to the legacy
  // protocol. With crashes, the master only ever observes MESSAGES: a dead
  // worker simply stops reporting, so each outstanding chunk carries a
  // timeout; after fault_detection.max_probes expirations (exponential
  // backoff between probes) the worker is declared dead and its chunk
  // re-dispatched. A recovering worker's fresh request also exposes the
  // loss (even with detection disabled), mirroring an MPI reconnect.
  const bool crash_mode = detail::has_crash_failures(config);
  const bool detection = crash_mode && config.fault_detection.enabled;

  MpiRunResult result;
  result.run.workers.assign(processors, WorkerStats{});
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kDegrade) continue;
    result.run.faults.workers_crashed += 1;
    if (failure.kind == SimConfig::FailureKind::kCrashRecover) {
      result.run.faults.workers_recovered += 1;
    }
  }

  // Serial iterations on worker 0 before the parallel loop opens.
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        prepared.input_factor * detail::sample_work(application.serial_iterations(),
                                                    prepared.mean_iter, prepared.stddev_iter,
                                                    prepared.run_rng);
    serial_end = prepared.workers[0].availability->finish_time(0.0, serial_work);
    if (!std::isfinite(serial_end)) {
      throw std::runtime_error(
          "simulate_loop_mpi: worker 0 crashed during the serial phase — the serial "
          "iterations have no fault tolerance (re-dispatch needs the loop to open)");
    }
  }
  result.run.serial_end = serial_end;
  result.run.makespan = serial_end;

  if (config.collect_trace) {
    for (std::size_t w = 0; w < processors; ++w) {
      if (!prepared.workers[w].crashes()) continue;
      result.run.events.push_back(
          {LifecycleEvent::Kind::kWorkerCrash, prepared.workers[w].crash_time, w, 0});
      if (std::isfinite(prepared.workers[w].recovery_time)) {
        result.run.events.push_back({LifecycleEvent::Kind::kWorkerRecover,
                                     prepared.workers[w].recovery_time, w, 0});
      }
    }
  }

  Engine engine;
  detail::IterationPool pool(application.parallel_iterations());
  std::int64_t completed = 0;  // accepted parallel iterations (crash mode)
  double master_free_at = 0.0;

  // Master-side fault state (all untouched in legacy mode).
  struct Outstanding {
    bool active = false;
    bool lost = false;  // physically stranded by the worker's crash
    detail::IterationPool::Range range;
    double dispatch_time = 0.0;
    double start_time = 0.0;
    double end_time = 0.0;
    std::uint64_t id = 0;
    std::size_t probes = 0;
  };
  std::vector<Outstanding> outstanding(processors);
  std::vector<std::uint64_t> next_id(processors, 0);
  std::vector<char> declared_dead(processors, 0);
  std::vector<char> idle(processors, 0);

  std::function<void(std::size_t)> master_receive_request;

  // Pulls a reclaimed/returned range back into circulation: benched workers
  // (idle because the pool momentarily drained) get the master's deferred
  // reply now.
  auto wake_idle = [&] {
    for (std::size_t v = 0; v < processors; ++v) {
      if (idle[v] && !declared_dead[v]) {
        idle[v] = 0;
        master_receive_request(v);
      }
    }
  };

  // Takes worker w's outstanding chunk away from it (it was declared dead
  // or rejoined after a crash) and returns the iterations to the pool.
  auto reclaim_outstanding = [&](std::size_t w) {
    Outstanding& out = outstanding[w];
    if (!out.active) return;
    out.active = false;
    result.run.faults.iterations_reexecuted += out.range.count;
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkLost, engine.now(), w, out.range.count});
    }
    if (out.lost) {
      result.run.faults.chunks_lost += 1;
      const double detect_latency =
          std::max(0.0, engine.now() - prepared.workers[w].crash_time);
      result.run.faults.detection_latency_total += detect_latency;
      result.run.faults.max_detection_latency =
          std::max(result.run.faults.max_detection_latency, detect_latency);
      double wasted = out.start_time - out.dispatch_time;
      if (out.start_time < engine.now()) {
        wasted += prepared.workers[w].availability->work_delivered(out.start_time, engine.now());
      }
      result.run.faults.wasted_work += wasted;
    }
    pool.give_back(out.range);
    wake_idle();
  };

  // One timeout expiration for assignment `id` on worker w. Stale probes
  // (the report arrived, or the chunk was already reclaimed) are no-ops.
  std::function<void(std::size_t, std::uint64_t, double)> probe_fire =
      [&](std::size_t w, std::uint64_t id, double interval) {
        Outstanding& out = outstanding[w];
        if (!out.active || out.id != id) return;
        out.probes += 1;
        if (config.collect_trace) {
          result.run.events.push_back({LifecycleEvent::Kind::kWorkerSuspected, engine.now(),
                                       w, static_cast<std::int64_t>(out.probes)});
        }
        if (out.probes >= config.fault_detection.max_probes) {
          declared_dead[w] = 1;
          if (!out.lost) result.run.faults.false_suspicions += 1;
          CDSF_LOG_TRACE << "mpi master declares worker " << w << " dead at " << engine.now();
          if (config.collect_trace) {
            result.run.events.push_back(
                {LifecycleEvent::Kind::kWorkerDeclaredDead, engine.now(), w, 0});
          }
          reclaim_outstanding(w);
          return;
        }
        const double next = interval * config.fault_detection.backoff;
        engine.schedule_at(engine.now() + next,
                           [&probe_fire, w, id, next] { probe_fire(w, id, next); });
      };

  // The master serializes request handling; each handled request either
  // assigns a chunk (reply travels back with one latency) or retires the
  // worker. Completion reports carry the technique feedback.
  master_receive_request = [&](std::size_t w) {
    const double arrival = engine.now();
    const double service_start = std::max(arrival, master_free_at);
    const double wait = service_start - arrival;
    result.master.queue_wait_time += wait;
    result.master.max_queue_wait = std::max(result.master.max_queue_wait, wait);
    master_free_at = service_start + messages.master_service_time;
    result.master.requests_handled += 1;
    result.master.busy_time += messages.master_service_time;

    engine.schedule_at(master_free_at, [&, w] {
      WorkerStats& stats = result.run.workers[w];
      if (declared_dead[w]) return;
      const std::int64_t pending = pool.pending();
      if (pending <= 0) {
        // Crash mode: stay wakeable — a reclaim may refill the pool.
        if (crash_mode) idle[w] = 1;
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      const dls::SchedulingContext ctx{pending, w, engine.now()};
      std::int64_t chunk = technique->next_chunk(ctx);
      if (chunk <= 0) {
        if (!crash_mode) {
          stats.finish_time = std::max(stats.finish_time, engine.now());
          return;
        }
        // Fault-tolerant fallback: the technique's plan is spent but
        // reclaimed iterations are pending — drain them in equal shares.
        std::size_t alive = 0;
        for (std::size_t v = 0; v < processors; ++v) alive += declared_dead[v] ? 0u : 1u;
        const auto alive64 = static_cast<std::int64_t>(alive);
        chunk = (pending + alive64 - 1) / alive64;
      }
      const detail::IterationPool::Range range = pool.take(chunk);
      if (range.count <= 0) {
        if (crash_mode) idle[w] = 1;
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }

      // Assignment message travels to the worker; computation starts on
      // arrival (the scheduling_overhead of the abstract model is the
      // message round trip here, so it is NOT charged again).
      const double dispatch_time = engine.now();
      const double start_time = dispatch_time + messages.latency;
      const double work = prepared.input_factor *
                          detail::chunk_work(application, processor_type, prepared.mean_iter,
                                             prepared.stddev_iter, config.iteration_cov,
                                             range.first, range.count,
                                             *prepared.workers[w].rng);
      const double end_time = prepared.workers[w].availability->finish_time(start_time, work);
      // Physically stranded iff the worker's outage touches the chunk's
      // lifetime: assigned before (or into) the outage and not finished by
      // the crash. A permanent crash makes end_time +infinity, which also
      // lands here.
      const bool lost = start_time < prepared.workers[w].recovery_time &&
                        end_time > prepared.workers[w].crash_time;

      if (config.collect_trace) {
        result.run.trace.push_back(
            {w, range.count, dispatch_time, start_time, end_time, lost});
      }
      CDSF_LOG_TRACE << "mpi worker " << w << " chunk " << range.count << " ["
                     << dispatch_time << ", " << end_time << "]" << (lost ? " LOST" : "");

      if (!crash_mode) {
        // Legacy protocol (bit-identical): account at dispatch, report
        // always arrives.
        stats.chunks += 1;
        stats.iterations += range.count;
        stats.busy_time += end_time - start_time;
        stats.overhead_time += start_time - dispatch_time;
        result.run.total_chunks += 1;
        engine.schedule_at(end_time, [&, w, range, start_time, dispatch_time, end_time] {
          result.run.workers[w].finish_time = end_time;
          result.run.makespan = std::max(result.run.makespan, end_time);
          // Completion report + next request reach the master one latency
          // later; the feedback is recorded when the master RECEIVES it.
          engine.schedule_after(messages.latency, [&, w, range, start_time, dispatch_time,
                                                   end_time] {
            technique->record(dls::ChunkResult{w, range.count, end_time - start_time,
                                               end_time - dispatch_time});
            master_receive_request(w);
          });
        });
        return;
      }

      // Crash mode: account only ACCEPTED completion reports, so lost and
      // falsely-suspected (late-report) chunks never pollute the worker
      // stats or the technique's adaptive weights.
      const std::uint64_t id = ++next_id[w];
      outstanding[w] =
          Outstanding{true, lost, range, dispatch_time, start_time, end_time, id, 0};
      if (detection) {
        // Expected round trip from the master's a-priori knowledge: the
        // weight seed (observed availability) is all it has — the actual
        // availability path is exactly what it cannot see.
        const double expected_compute = static_cast<double>(range.count) *
                                        prepared.mean_iter * prepared.input_factor /
                                        std::max(prepared.params.weights[w], 0.05);
        const double timeout =
            std::max(config.fault_detection.min_timeout,
                     config.fault_detection.timeout_factor *
                         (expected_compute + 2.0 * messages.latency));
        engine.schedule_at(dispatch_time + timeout,
                           [&probe_fire, w, id, timeout] { probe_fire(w, id, timeout); });
      }
      if (lost) return;  // the worker dies mid-chunk: no report, ever

      engine.schedule_at(end_time, [&, w, id, start_time, end_time] {
        engine.schedule_after(messages.latency, [&, w, id, start_time, end_time] {
          Outstanding& out = outstanding[w];
          if (!out.active || out.id != id) {
            // Late report from a falsely-suspected worker: its iterations
            // were already re-dispatched, so the result is dropped — but
            // the worker is clearly alive, so reinstate it.
            result.run.faults.wasted_work +=
                prepared.workers[w].availability->work_delivered(start_time, end_time);
            if (declared_dead[w]) {
              declared_dead[w] = 0;
              if (config.collect_trace) {
                result.run.events.push_back(
                    {LifecycleEvent::Kind::kWorkerReinstated, engine.now(), w, 0});
              }
              master_receive_request(w);
            }
            return;
          }
          out.active = false;
          WorkerStats& ws = result.run.workers[w];
          ws.chunks += 1;
          ws.iterations += out.range.count;
          ws.busy_time += out.end_time - out.start_time;
          ws.overhead_time += out.start_time - out.dispatch_time;
          ws.finish_time = out.end_time;
          result.run.total_chunks += 1;
          result.run.makespan = std::max(result.run.makespan, out.end_time);
          completed += out.range.count;
          technique->record(dls::ChunkResult{w, out.range.count,
                                             out.end_time - out.start_time,
                                             out.end_time - out.dispatch_time});
          master_receive_request(w);
        });
      });
    });
  };

  if (application.parallel_iterations() > 0) {
    engine.schedule_at(serial_end, [&] {
      // Every worker's initial request reaches the master one latency in;
      // workers already down at the kick never send one (their recovery
      // request, if any, is their first contact).
      for (std::size_t w = 0; w < processors; ++w) {
        const detail::Worker& worker = prepared.workers[w];
        if (worker.crash_time <= serial_end && serial_end < worker.recovery_time) continue;
        engine.schedule_after(messages.latency, [&, w] { master_receive_request(w); });
      }
    });
    for (std::size_t w = 0; w < processors; ++w) {
      const detail::Worker& worker = prepared.workers[w];
      if (!worker.crashes() || !std::isfinite(worker.recovery_time)) continue;
      // The rejoining worker's request reaches the master one latency after
      // recovery (or after the loop opens); it also reveals that the old
      // chunk died with the worker, even when timeout detection is off.
      const double rejoin = std::max(worker.recovery_time, serial_end) + messages.latency;
      engine.schedule_at(rejoin, [&, w] {
        declared_dead[w] = 0;
        reclaim_outstanding(w);
        master_receive_request(w);
      });
    }
    engine.run();
  }

  if (crash_mode && completed < application.parallel_iterations()) {
    throw std::runtime_error(
        "simulate_loop_mpi: " +
        std::to_string(application.parallel_iterations() - completed) +
        " iterations stranded by crashes (fault detection disabled or no surviving "
        "worker to re-dispatch to)");
  }

  for (WorkerStats& w : result.run.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  detail::finalize_run(result.run);
  return result;
}

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               dls::TechniqueId technique, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  return simulate_loop_mpi(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, messages, seed);
}

}  // namespace cdsf::sim
