#include "sim/master_worker.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "util/log.hpp"

namespace cdsf::sim {

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               const TechniqueFactory& factory, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  if (messages.latency < 0.0 || messages.master_service_time < 0.0) {
    throw std::invalid_argument("simulate_loop_mpi: message costs must be >= 0");
  }
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) {
    throw std::invalid_argument("simulate_loop_mpi: factory returned null");
  }
  technique->reset();

  MpiRunResult result;
  result.run.workers.assign(processors, WorkerStats{});

  // Serial iterations on worker 0 before the parallel loop opens.
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        prepared.input_factor * detail::sample_work(application.serial_iterations(),
                                                    prepared.mean_iter, prepared.stddev_iter,
                                                    prepared.run_rng);
    serial_end = prepared.workers[0].availability->finish_time(0.0, serial_work);
  }
  result.run.serial_end = serial_end;
  result.run.makespan = serial_end;

  Engine engine;
  std::int64_t remaining = application.parallel_iterations();
  double master_free_at = 0.0;

  // The master serializes request handling; each handled request either
  // assigns a chunk (reply travels back with one latency) or retires the
  // worker. Completion reports carry the technique feedback.
  std::function<void(std::size_t)> master_receive_request = [&](std::size_t w) {
    const double arrival = engine.now();
    const double service_start = std::max(arrival, master_free_at);
    const double wait = service_start - arrival;
    result.master.queue_wait_time += wait;
    result.master.max_queue_wait = std::max(result.master.max_queue_wait, wait);
    master_free_at = service_start + messages.master_service_time;
    result.master.requests_handled += 1;
    result.master.busy_time += messages.master_service_time;

    engine.schedule_at(master_free_at, [&, w] {
      WorkerStats& stats = result.run.workers[w];
      if (remaining <= 0) {
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      const dls::SchedulingContext ctx{remaining, w, engine.now()};
      std::int64_t chunk = technique->next_chunk(ctx);
      if (chunk <= 0) {
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      chunk = std::min(chunk, remaining);
      const std::int64_t first_index = application.parallel_iterations() - remaining;
      remaining -= chunk;

      // Assignment message travels to the worker; computation starts on
      // arrival (the scheduling_overhead of the abstract model is the
      // message round trip here, so it is NOT charged again).
      const double dispatch_time = engine.now();
      const double start_time = dispatch_time + messages.latency;
      const double work = prepared.input_factor *
                          detail::chunk_work(application, processor_type, prepared.mean_iter,
                                             prepared.stddev_iter, config.iteration_cov,
                                             first_index, chunk, *prepared.workers[w].rng);
      const double end_time = prepared.workers[w].availability->finish_time(start_time, work);

      stats.chunks += 1;
      stats.iterations += chunk;
      stats.busy_time += end_time - start_time;
      stats.overhead_time += start_time - dispatch_time;
      result.run.total_chunks += 1;
      if (config.collect_trace) {
        result.run.trace.push_back({w, chunk, dispatch_time, start_time, end_time});
      }
      CDSF_LOG_TRACE << "mpi worker " << w << " chunk " << chunk << " [" << dispatch_time
                     << ", " << end_time << "]";

      engine.schedule_at(end_time, [&, w, chunk, start_time, dispatch_time, end_time] {
        result.run.workers[w].finish_time = end_time;
        result.run.makespan = std::max(result.run.makespan, end_time);
        // Completion report + next request reach the master one latency
        // later; the feedback is recorded when the master RECEIVES it.
        engine.schedule_after(messages.latency, [&, w, chunk, start_time, dispatch_time,
                                                 end_time] {
          technique->record(dls::ChunkResult{w, chunk, end_time - start_time,
                                             end_time - dispatch_time});
          master_receive_request(w);
        });
      });
    });
  };

  if (application.parallel_iterations() > 0) {
    engine.schedule_at(serial_end, [&] {
      // Every worker's initial request reaches the master one latency in.
      for (std::size_t w = 0; w < processors; ++w) {
        engine.schedule_after(messages.latency, [&, w] { master_receive_request(w); });
      }
    });
    engine.run();
  }

  for (WorkerStats& w : result.run.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  return result;
}

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               dls::TechniqueId technique, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  return simulate_loop_mpi(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, messages, seed);
}

}  // namespace cdsf::sim
