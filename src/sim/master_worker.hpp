// Message-passing master–worker execution model.
//
// The DLS implementations behind the paper (and its cited studies) are MPI
// master–worker codes: an idle worker SENDs a work request, the master
// computes the chunk size and REPLYs with an assignment, and completion
// timings travel back with the next request. loop_executor.hpp abstracts
// that protocol into a fixed per-chunk overhead; this model makes it
// explicit:
//
//   * every message costs a one-way latency,
//   * the master handles one request at a time (service time per request),
//     so fine-grained techniques (SS) can SATURATE the master at scale —
//     the classic effect that motivated chunking in the first place,
//   * the technique's feedback (record) fires when the master RECEIVES the
//     completion report, not when the chunk finishes.
//
// With zero latency and zero service time this model reduces exactly to
// simulate_loop (validated by tests).
//
// The substrate may additionally be UNRELIABLE (SimConfig::channel): a
// seeded ChannelModel drops, duplicates, and reorders messages (plus
// burst-loss episodes), and the protocol hardens to at-least-once
// semantics — monotonically sequence-numbered assignments and reports,
// master- and worker-side dedup (a re-delivered assignment is never
// executed twice; a duplicated report never double-feeds record()), and
// ack-driven retransmission with exponential backoff that composes with
// the failure detector's false-suspicion timeout doubling. The MASTER
// itself can crash and restart (FailureKind::kMasterCrashRestart) from a
// write-ahead log + periodic snapshots (SimConfig::checkpoint): restart
// re-dispatches unacked assignments and never re-records completed work.
// With a clean channel and checkpointing off all of this is structurally
// disarmed and the executor is bit-identical to the reliable protocol.
//
// GRAY failures — workers that are wrong rather than dead — are handled by
// three cooperating layers (shared semantics with loop_executor.cpp):
// payload corruption on the channel (ChannelModel::corrupt_*) is caught by
// checksum framing at the receiver, counted in ChannelStats, and recovered
// through the ack/retransmit loop, so a corrupted report can never reach
// record(); a per-worker fail-slow EWMA (SimConfig::quarantine) drains
// persistent underperformers into quarantine, probes them with canary
// chunks, and reinstates them on sustained recovery; and an audit_rate
// fraction of accepted chunks is re-executed on an independent worker,
// with a mismatch marking the ORIGINATING worker suspect — catching
// silent data corruption (FailureKind::kSilentCorrupt) that checksums
// cannot see. All of it is structurally disarmed when unconfigured.
#pragma once

#include <cstdint>

#include "sim/loop_executor.hpp"

namespace cdsf::sim {

/// Communication cost model.
struct MessageModel {
  /// One-way message latency (request, assignment, and report alike).
  double latency = 0.25;
  /// Master CPU time to handle one request (dequeue, compute chunk, reply).
  double master_service_time = 0.05;
};

/// Master-side accounting.
struct MasterStats {
  std::uint64_t requests_handled = 0;
  double busy_time = 0.0;
  /// Total time requests spent waiting in the master's queue.
  double queue_wait_time = 0.0;
  /// Longest single queue wait.
  double max_queue_wait = 0.0;
};

/// RunResult plus the master's accounting.
struct MpiRunResult {
  RunResult run;
  MasterStats master;
};

/// Simulates one application execution under the message-passing protocol.
/// The master is a dedicated coordinator (it does not compute iterations);
/// serial iterations still execute on worker 0 before the parallel loop.
/// Throws like simulate_loop, plus std::invalid_argument for negative
/// message costs.
[[nodiscard]] MpiRunResult simulate_loop_mpi(const workload::Application& application,
                                             std::size_t processor_type, std::size_t processors,
                                             const sysmodel::AvailabilitySpec& availability,
                                             dls::TechniqueId technique,
                                             const SimConfig& config,
                                             const MessageModel& messages, std::uint64_t seed);

/// Factory variant (custom techniques).
[[nodiscard]] MpiRunResult simulate_loop_mpi(const workload::Application& application,
                                             std::size_t processor_type, std::size_t processors,
                                             const sysmodel::AvailabilitySpec& availability,
                                             const TechniqueFactory& factory,
                                             const SimConfig& config,
                                             const MessageModel& messages, std::uint64_t seed);

/// Replicated MPI runs: the message-passing analogue of
/// simulate_replicated, additionally filling ReplicationSummary::
/// channel_total / checkpoint_total. Every replication derives its
/// randomness (including channel faults) from its own child seed and the
/// accumulation is in replication order, so the summary is bit-identical
/// for ANY thread count. Throws std::invalid_argument if replications == 0.
[[nodiscard]] ReplicationSummary simulate_replicated_mpi(
    const workload::Application& application, std::size_t processor_type,
    std::size_t processors, const sysmodel::AvailabilitySpec& availability,
    dls::TechniqueId technique, const SimConfig& config, const MessageModel& messages,
    std::uint64_t seed, std::size_t replications, double deadline, std::size_t threads = 1);

}  // namespace cdsf::sim
