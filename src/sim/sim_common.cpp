#include "sim/sim_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace cdsf::sim::detail {

void validate_config(const SimConfig& config) {
  if (config.scheduling_overhead < 0.0) {
    throw std::invalid_argument("SimConfig: scheduling_overhead must be >= 0");
  }
  if (config.iteration_cov < 0.0) {
    throw std::invalid_argument("SimConfig: iteration_cov must be >= 0");
  }
  if (config.input_factor_cov < 0.0) {
    throw std::invalid_argument("SimConfig: input_factor_cov must be >= 0");
  }
  if (!(config.epoch_length > 0.0)) {
    throw std::invalid_argument("SimConfig: epoch_length must be > 0");
  }
  if (!(config.markov_persistence >= 0.0 && config.markov_persistence < 1.0)) {
    throw std::invalid_argument("SimConfig: markov_persistence must be in [0, 1)");
  }
  if (config.diurnal_amplitude < 0.0 || !(config.diurnal_period > 0.0)) {
    throw std::invalid_argument("SimConfig: diurnal knobs out of domain");
  }
  const SimConfig::FaultDetection& fd = config.fault_detection;
  if (!(fd.timeout_factor > 0.0) || !(fd.min_timeout > 0.0) || !(fd.backoff >= 1.0) ||
      fd.max_probes == 0) {
    throw std::invalid_argument("SimConfig: fault_detection knobs out of domain");
  }
  const SimConfig::Speculation& sp = config.speculation;
  if (!(sp.quantile > 0.0) || !(sp.min_elapsed > 0.0) ||
      !(sp.escalation_factor > 0.0 && sp.escalation_factor < 1.0) ||
      !(sp.min_quantile > 0.0) || sp.min_quantile > sp.quantile) {
    throw std::invalid_argument("SimConfig: speculation knobs out of domain");
  }
  const ChannelModel& ch = config.channel;
  for (double p : {ch.drop_to_worker, ch.drop_to_master, ch.duplicate_to_worker,
                   ch.duplicate_to_master, ch.reorder_to_worker, ch.reorder_to_master,
                   ch.corrupt_to_worker, ch.corrupt_to_master}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("SimConfig: channel probabilities must be in [0, 1]");
    }
  }
  if ((ch.reorder_to_worker > 0.0 || ch.reorder_to_master > 0.0) && !(ch.reorder_delay > 0.0)) {
    throw std::invalid_argument("SimConfig: channel reorder_delay must be > 0");
  }
  if (ch.burst_gap_mean < 0.0 || ch.burst_duration < 0.0 ||
      (ch.burst_gap_mean > 0.0 && !(ch.burst_duration > 0.0))) {
    throw std::invalid_argument("SimConfig: channel burst knobs out of domain");
  }
  if (!(ch.rto > 0.0) || !(ch.rto_backoff >= 1.0)) {
    throw std::invalid_argument("SimConfig: channel rto must be > 0 and rto_backoff >= 1");
  }
  if (config.checkpoint.enabled && !(config.checkpoint.interval > 0.0)) {
    throw std::invalid_argument("SimConfig: checkpoint interval must be > 0");
  }
  const SimConfig::Quarantine& q = config.quarantine;
  if (!(q.ewma_alpha > 0.0 && q.ewma_alpha <= 1.0)) {
    throw std::invalid_argument("SimConfig: quarantine ewma_alpha must be in (0, 1]");
  }
  if (!(q.slowdown_threshold > 1.0)) {
    throw std::invalid_argument(
        "SimConfig: quarantine slowdown_threshold must be > 1 (a healthy worker's "
        "slowdown sits at 1)");
  }
  if (q.min_observations == 0 || q.probe_successes == 0 || q.audit_mismatch_limit == 0) {
    throw std::invalid_argument("SimConfig: quarantine counts must be >= 1");
  }
  if (!(q.probe_interval > 0.0)) {
    throw std::invalid_argument("SimConfig: quarantine probe_interval must be > 0");
  }
  if (!(q.audit_rate >= 0.0 && q.audit_rate <= 1.0)) {
    throw std::invalid_argument("SimConfig: quarantine audit_rate must be in [0, 1]");
  }
  const SimConfig::DeadlineRisk& dr = config.deadline_risk;
  if (dr.enabled) {
    if (!config.speculation.enabled) {
      throw std::invalid_argument(
          "SimConfig: deadline_risk requires speculation.enabled (nothing to escalate)");
    }
    if (!(dr.deadline >= 0.0) || !std::isfinite(dr.deadline) ||
        !(dr.check_interval > 0.0) || !(dr.risk_floor > 0.0 && dr.risk_floor < 1.0)) {
      throw std::invalid_argument("SimConfig: deadline_risk knobs out of domain");
    }
  }
}

void validate_failures(const std::vector<SimConfig::Failure>& failures,
                       std::size_t processors) {
  std::vector<bool> seen(processors, false);
  bool master_seen = false;
  for (const SimConfig::Failure& failure : failures) {
    if (failure.kind == SimConfig::FailureKind::kMasterCrashRestart) {
      // Targets the coordinator, not a worker: the worker index is ignored
      // and the per-worker dedup does not apply.
      if (master_seen) {
        throw std::invalid_argument("simulate_loop: at most one master crash-restart");
      }
      master_seen = true;
      if (!(failure.time >= 0.0) || !std::isfinite(failure.time)) {
        throw std::invalid_argument("simulate_loop: master crash time must be finite and >= 0");
      }
      if (!(failure.recovery_time > failure.time) || !std::isfinite(failure.recovery_time)) {
        throw std::invalid_argument(
            "simulate_loop: master crash-restart recovery_time must be finite and > crash "
            "time (a run without a master can never finish)");
      }
      continue;
    }
    if (failure.worker >= processors) {
      throw std::invalid_argument("simulate_loop: failure targets an unknown worker");
    }
    if (seen[failure.worker]) {
      throw std::invalid_argument(
          "simulate_loop: duplicate failure for worker " + std::to_string(failure.worker) +
          " (at most one failure per worker)");
    }
    seen[failure.worker] = true;
    if (failure.time < 0.0) {
      throw std::invalid_argument("simulate_loop: failure time must be >= 0");
    }
    switch (failure.kind) {
      case SimConfig::FailureKind::kDegrade:
        if (!(failure.residual_availability > 0.0 && failure.residual_availability <= 1.0)) {
          throw std::invalid_argument(
              "simulate_loop: kDegrade residual availability must be in (0, 1]");
        }
        break;
      case SimConfig::FailureKind::kCrash:
        if (!std::isfinite(failure.time)) {
          throw std::invalid_argument("simulate_loop: crash failure time must be finite");
        }
        break;
      case SimConfig::FailureKind::kCrashRecover:
        if (!std::isfinite(failure.time)) {
          throw std::invalid_argument("simulate_loop: crash failure time must be finite");
        }
        if (!(failure.recovery_time > failure.time) || !std::isfinite(failure.recovery_time)) {
          throw std::invalid_argument(
              "simulate_loop: kCrashRecover recovery_time must be finite and > failure time");
        }
        break;
      case SimConfig::FailureKind::kSilentCorrupt:
        if (!std::isfinite(failure.time)) {
          throw std::invalid_argument(
              "simulate_loop: kSilentCorrupt onset time must be finite");
        }
        if (!(failure.corrupt_probability > 0.0 && failure.corrupt_probability <= 1.0)) {
          throw std::invalid_argument(
              "simulate_loop: kSilentCorrupt corrupt_probability must be in (0, 1]");
        }
        break;
      case SimConfig::FailureKind::kMasterCrashRestart:
        break;  // validated above (the per-worker loop skips it)
    }
  }
}

bool has_crash_failures(const SimConfig& config) {
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kCrash ||
        failure.kind == SimConfig::FailureKind::kCrashRecover) {
      return true;
    }
  }
  return false;
}

const SimConfig::Failure* master_restart_failure(const SimConfig& config) {
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kMasterCrashRestart) return &failure;
  }
  return nullptr;
}

bool has_silent_corrupt(const SimConfig& config) {
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kSilentCorrupt) return true;
  }
  return false;
}

const SimConfig::Failure* silent_corrupt_failure(const SimConfig& config,
                                                 std::size_t worker) {
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kSilentCorrupt &&
        failure.worker == worker) {
      return &failure;
    }
  }
  return nullptr;
}

void apply_failure(Worker& worker, const SimConfig::Failure& failure) {
  switch (failure.kind) {
    case SimConfig::FailureKind::kMasterCrashRestart:
      break;  // the master is not a worker; handled inside simulate_loop_mpi
    case SimConfig::FailureKind::kSilentCorrupt:
      // A gray worker computes at full speed; the executors draw result
      // wrongness at completion time. No availability decorator.
      break;
    case SimConfig::FailureKind::kDegrade:
      worker.availability = std::make_unique<sysmodel::FailingAvailability>(
          std::move(worker.availability), failure.time, failure.residual_availability);
      break;
    case SimConfig::FailureKind::kCrash:
    case SimConfig::FailureKind::kCrashRecover:
      worker.weight_at_zero = worker.availability->availability_at(0.0);
      worker.crash_time = failure.time;
      worker.recovery_time = failure.kind == SimConfig::FailureKind::kCrashRecover
                                 ? failure.recovery_time
                                 : std::numeric_limits<double>::infinity();
      worker.availability = std::make_unique<sysmodel::CrashingAvailability>(
          std::move(worker.availability), failure.time, worker.recovery_time);
      break;
  }
}

double sample_work(std::int64_t count, double mean, double stddev, util::RngStream& rng) {
  constexpr std::int64_t kExactThreshold = 32;
  const double floor = 1e-6 * mean * static_cast<double>(count);
  if (stddev == 0.0) return mean * static_cast<double>(count);
  if (count <= kExactThreshold) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < count; ++i) {
      sum += std::max(rng.normal(mean, stddev), 0.0);
    }
    return std::max(sum, floor);
  }
  const double n = static_cast<double>(count);
  return std::max(rng.normal(n * mean, std::sqrt(n) * stddev), floor);
}

double chunk_work(const workload::Application& application, std::size_t processor_type,
                  double mean_iter, double stddev_iter, double iteration_cov,
                  std::int64_t first_index, std::int64_t count, util::RngStream& rng) {
  if (application.profile() == workload::IterationProfile::kFlat) {
    return sample_work(count, mean_iter, stddev_iter, rng);
  }
  double work = application.parallel_work_in_range(processor_type, first_index, count);
  if (iteration_cov > 0.0 && count > 0) {
    const double cov = iteration_cov / std::sqrt(static_cast<double>(count));
    work *= std::max(rng.normal(1.0, cov), 1e-6);
  }
  return std::max(work, 1e-9 * mean_iter);
}

namespace {

std::unique_ptr<sysmodel::AvailabilityProcess> make_process(const pmf::Pmf& law,
                                                            const SimConfig& config,
                                                            util::RngStream& run_rng,
                                                            std::uint64_t seed) {
  switch (config.availability_mode) {
    case AvailabilityMode::kIidEpoch:
      return std::make_unique<sysmodel::IidEpochAvailability>(law, config.epoch_length, seed);
    case AvailabilityMode::kMarkovEpoch:
      return std::make_unique<sysmodel::MarkovEpochAvailability>(
          law, config.epoch_length, config.markov_persistence, seed);
    case AvailabilityMode::kConstantMean:
      return std::make_unique<sysmodel::ConstantAvailability>(law.expectation());
    case AvailabilityMode::kSampleOnce:
      return std::make_unique<sysmodel::ConstantAvailability>(
          law.sample_with(run_rng.uniform01()));
    case AvailabilityMode::kDiurnal: {
      const double mean = law.expectation();
      // Clamp the amplitude so the cycle stays strictly inside (0, 1].
      const double amplitude =
          std::min({config.diurnal_amplitude, mean - 1e-6, 1.0 - mean});
      // Per-worker phase from the seed: spreads the group around the cycle.
      const double phase =
          static_cast<double>(seed % 1024) / 1024.0 * config.diurnal_period;
      return std::make_unique<sysmodel::DiurnalAvailability>(
          mean, std::max(amplitude, 0.0), config.diurnal_period, phase);
    }
  }
  throw std::logic_error("make_process: unknown availability mode");
}

}  // namespace

PreparedRun prepare_run(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors,
                        const sysmodel::AvailabilitySpec& availability, const SimConfig& config,
                        std::uint64_t seed) {
  if (processors == 0) throw std::invalid_argument("simulate_loop: processors must be >= 1");
  if (processor_type >= availability.type_count() ||
      processor_type >= application.type_count()) {
    throw std::invalid_argument("simulate_loop: unknown processor type");
  }
  validate_config(config);

  const util::SeedSequence seeds(seed);
  PreparedRun run;
  run.run_rng = seeds.stream(0);

  // Per-run input-data factor (uncertainty in input data, Section III).
  if (config.input_factor_cov > 0.0) {
    run.input_factor = std::max(run.run_rng.normal(1.0, config.input_factor_cov), 0.1);
  }

  run.mean_iter = application.mean_iteration_time(processor_type);
  run.stddev_iter = run.mean_iter * config.iteration_cov;
  const pmf::Pmf& law = availability.of_type(processor_type);

  run.workers.resize(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    run.workers[w].rng = std::make_unique<util::RngStream>(seeds.child(100 + 2 * w));
    // Shared-group mode reuses worker 0's seed (and, for kSampleOnce, a
    // single run_rng draw) so every worker sees the same availability path.
    const std::uint64_t avail_seed =
        config.shared_group_availability ? seeds.child(101) : seeds.child(101 + 2 * w);
    if (config.shared_group_availability && w > 0 &&
        config.availability_mode == AvailabilityMode::kSampleOnce) {
      run.workers[w].availability = std::make_unique<sysmodel::ConstantAvailability>(
          run.workers[0].availability->availability_at(0.0));
    } else {
      run.workers[w].availability = make_process(law, config, run.run_rng, avail_seed);
    }
  }
  validate_failures(config.failures, processors);
  for (const SimConfig::Failure& failure : config.failures) {
    apply_failure(run.workers[failure.worker], failure);
  }

  // Problem facts for the technique, including observed t=0 availabilities
  // as WF/AWF weight seeds. For a worker that crashes at t = 0 the
  // pre-crash value is used — the master seeds weights before it can know
  // the worker is gone, and normalized_weights rejects a 0.
  run.params.workers = processors;
  run.params.total_iterations = std::max<std::int64_t>(1, application.parallel_iterations());
  run.params.mean_iteration_time = run.mean_iter;
  run.params.stddev_iteration_time = run.stddev_iter;
  run.params.scheduling_overhead = config.scheduling_overhead;
  run.params.weights.reserve(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const Worker& worker = run.workers[w];
    run.params.weights.push_back(worker.crashes() && worker.crash_time <= 0.0
                                     ? worker.weight_at_zero
                                     : worker.availability->availability_at(0.0));
  }
  return run;
}

void summarize_makespans(ReplicationSummary& summary, std::vector<double> samples,
                         double deadline) {
  stats::OnlineSummary makespans;
  std::size_t hits = 0;
  for (double makespan : samples) {
    makespans.add(makespan);
    if (makespan <= deadline) ++hits;
  }
  summary.replications = samples.size();
  summary.mean_makespan = makespans.mean();
  summary.stddev_makespan = makespans.stddev();
  summary.min_makespan = makespans.min();
  summary.max_makespan = makespans.max();
  summary.deadline_hit_rate =
      static_cast<double>(hits) / static_cast<double>(samples.size());
  summary.mean_ci =
      stats::mean_interval(summary.mean_makespan, summary.stddev_makespan, samples.size());
  summary.hit_rate_ci = stats::wilson_interval(hits, samples.size());
  summary.median_makespan = stats::percentile(std::move(samples), 0.5);
}

void finalize_run(RunResult& result, const SimConfig& config,
                  const obs::FlightRecorder& recorder) {
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const LifecycleEvent& a, const LifecycleEvent& b) {
                     return a.time < b.time;
                   });
  // Postmortem triggers, most severe first: a run can both restart its
  // master and trip quarantine, but one dump explains it.
  obs::FlightAnomaly anomaly;
  if (config.flight.deadline > 0.0 && result.makespan > config.flight.deadline) {
    anomaly.kind = "deadline_miss";
    anomaly.detail = "makespan " + std::to_string(result.makespan) +
                     " exceeded deadline " + std::to_string(config.flight.deadline);
    anomaly.time = result.makespan;
  } else if (result.checkpoint.master_restarts > 0) {
    anomaly.kind = "master_restart";
    anomaly.detail = "master restarted " +
                     std::to_string(result.checkpoint.master_restarts) +
                     " time(s) from checkpoint + WAL";
    anomaly.time = result.makespan;
  } else if (result.quarantine.quarantines > 0) {
    anomaly.kind = "quarantine_trip";
    anomaly.detail =
        std::to_string(result.quarantine.quarantines) + " quarantine trip(s): " +
        std::to_string(result.quarantine.fail_slow_trips) + " fail-slow, " +
        std::to_string(result.quarantine.audit_trips) + " audit";
    anomaly.time = result.makespan;
  }
  // The merged, time-sorted event tail is only ever read by a postmortem
  // dump — this run's (anomalous) or a later chaos-invariant dump (armed
  // sink). Clean runs under an unarmed sink take the summary-only path,
  // which skips the merge sort entirely (the recorder's overhead budget).
  if (!anomaly.kind.empty() || obs::FlightSink::global().armed()) {
    result.flight = recorder.finish();
  } else {
    result.flight = recorder.finish_summary();
  }
  if (!anomaly.kind.empty()) {
    obs::FlightSink::global().maybe_dump(result.flight, anomaly);
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (!metrics.enabled()) return;
  metrics.add("sim.runs");
  metrics.add("sim.chunks", static_cast<std::int64_t>(result.total_chunks));
  std::int64_t iterations = 0;
  for (const WorkerStats& w : result.workers) iterations += w.iterations;
  metrics.add("sim.iterations", iterations);
  metrics.observe("sim.makespan", result.makespan);
  const FaultStats& faults = result.faults;
  if (faults.workers_crashed > 0) {
    metrics.add("sim.workers_crashed", static_cast<std::int64_t>(faults.workers_crashed));
    metrics.add("sim.workers_recovered",
                static_cast<std::int64_t>(faults.workers_recovered));
    metrics.add("sim.chunks_lost", static_cast<std::int64_t>(faults.chunks_lost));
    metrics.add("sim.iterations_reexecuted", faults.iterations_reexecuted);
    metrics.add("sim.false_suspicions", static_cast<std::int64_t>(faults.false_suspicions));
  }
  const QuarantineStats& quar = result.quarantine;
  if (quar.active()) {
    metrics.add("sim.quarantined", static_cast<std::int64_t>(quar.quarantines));
    metrics.add("sim.reinstatements", static_cast<std::int64_t>(quar.reinstatements));
    metrics.add("sim.canary_probes", static_cast<std::int64_t>(quar.probes_launched));
    metrics.add("sim.audits", static_cast<std::int64_t>(quar.audits_launched));
    metrics.add("sim.audit_mismatches", static_cast<std::int64_t>(quar.audit_mismatches));
  }
  const ChannelStats& channel = result.channel;
  if (channel.active() && channel.corrupt_discarded > 0) {
    metrics.add("sim.corrupt_discarded",
                static_cast<std::int64_t>(channel.corrupt_discarded));
  }
  const SpeculationStats& spec = result.speculation;
  if (spec.stragglers_flagged > 0 || spec.risk_escalations > 0) {
    metrics.add("sim.stragglers_flagged",
                static_cast<std::int64_t>(spec.stragglers_flagged));
    metrics.add("sim.backups_launched", static_cast<std::int64_t>(spec.backups_launched));
    metrics.add("sim.backups_won", static_cast<std::int64_t>(spec.backups_won));
    metrics.add("sim.backups_cancelled",
                static_cast<std::int64_t>(spec.backups_cancelled));
    metrics.add("sim.risk_escalations", static_cast<std::int64_t>(spec.risk_escalations));
  }
}

}  // namespace cdsf::sim::detail
