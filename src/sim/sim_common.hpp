// Internal helpers shared by the loop executors (the idealized one in
// loop_executor.cpp and the message-passing one in master_worker.cpp).
// Not part of the public API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "dls/technique.hpp"
#include "obs/flight.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "util/rng.hpp"
#include "workload/application.hpp"

namespace cdsf::sim::detail {

/// Throws std::invalid_argument on out-of-domain config values.
void validate_config(const SimConfig& config);

/// Validates the failure list against a worker count: every target must be
/// a known worker, at most ONE failure per worker (duplicates would stack
/// decorators with order-dependent semantics), kDegrade residuals in
/// (0, 1], kCrashRecover recoveries strictly after the crash. Throws
/// std::invalid_argument.
void validate_failures(const std::vector<SimConfig::Failure>& failures,
                       std::size_t processors);

/// True if any configured failure is kCrash / kCrashRecover — the switch
/// that arms the fault-tolerance machinery (and, in the MPI model, the
/// timeout timers). Master failures (kMasterCrashRestart) do NOT count:
/// they crash the coordinator, not a worker's availability process.
[[nodiscard]] bool has_crash_failures(const SimConfig& config);

/// The configured master crash-restart failure, or nullptr. At most one
/// exists (validate_failures rejects duplicates).
[[nodiscard]] const SimConfig::Failure* master_restart_failure(const SimConfig& config);

/// True if any configured failure is kSilentCorrupt — the switch that arms
/// the silent-wrongness draw stream (and ground-truth accounting) in both
/// executors.
[[nodiscard]] bool has_silent_corrupt(const SimConfig& config);

/// Worker `worker`'s kSilentCorrupt failure, or nullptr (at most one
/// failure per worker exists after validate_failures).
[[nodiscard]] const SimConfig::Failure* silent_corrupt_failure(const SimConfig& config,
                                                               std::size_t worker);

/// Fills the makespan-distribution fields of `summary` (mean / median /
/// stddev / min / max / CIs / deadline hit rate) from per-replication
/// samples. Shared by simulate_replicated and simulate_replicated_mpi.
void summarize_makespans(ReplicationSummary& summary, std::vector<double> samples,
                         double deadline);

struct Worker;

/// Applies one (already validated) failure to its worker: wraps the
/// availability process in the kind's decorator and, for crash kinds,
/// mirrors crash metadata and captures the pre-crash weight seed.
void apply_failure(Worker& worker, const SimConfig::Failure& failure);

/// Sum of `count` iid iteration times (exact draws for small chunks, CLT
/// normal approximation for large ones); always > 0.
[[nodiscard]] double sample_work(std::int64_t count, double mean, double stddev,
                                 util::RngStream& rng);

/// Dedicated-processor work of the chunk covering parallel iterations
/// [first_index, first_index + count). For flat profiles this is the iid
/// draw of sample_work (bit-identical to the historical behavior); for
/// index-dependent profiles the profile-weighted mean over the range is
/// taken with one multiplicative noise draw of c.o.v. iteration_cov /
/// sqrt(count).
[[nodiscard]] double chunk_work(const workload::Application& application,
                                std::size_t processor_type, double mean_iter,
                                double stddev_iter, double iteration_cov,
                                std::int64_t first_index, std::int64_t count,
                                util::RngStream& rng);

/// One worker's simulation state.
struct Worker {
  std::unique_ptr<sysmodel::AvailabilityProcess> availability;
  std::unique_ptr<util::RngStream> rng;
  /// Crash metadata mirrored out of the configured failure (both
  /// +infinity when the worker has no crash-kind failure). The executors
  /// read these instead of down-casting the decorated process.
  double crash_time = std::numeric_limits<double>::infinity();
  double recovery_time = std::numeric_limits<double>::infinity();
  /// availability_at(0) of the process BEFORE any crash decorator was
  /// applied — the a-priori weight seed. A crash at t = 0 would otherwise
  /// seed weight 0, which normalized_weights rejects (and the master has
  /// no way to know at dispatch time that the worker is already gone).
  double weight_at_zero = 1.0;

  [[nodiscard]] bool crashes() const noexcept {
    return crash_time != std::numeric_limits<double>::infinity();
  }
};

/// The undispatched parallel iterations. Normally a plain front counter
/// (contiguous ranges handed out in index order — bit-identical to the
/// historical `first_index = total - remaining` arithmetic); when a crash
/// strands a chunk its range is given back and re-dispatched FIFO before
/// any fresh work. take() always returns ONE contiguous range (chunk work
/// of index-dependent profiles needs contiguity), so a grant may come back
/// smaller than requested when the front returned range is short.
class IterationPool {
 public:
  struct Range {
    std::int64_t first = 0;
    std::int64_t count = 0;
  };

  explicit IterationPool(std::int64_t total) : total_(total) {}

  /// Iterations not yet completed-or-in-flight.
  [[nodiscard]] std::int64_t pending() const noexcept {
    std::int64_t p = total_ - next_;
    for (const Range& r : returned_) p += r.count;
    return p;
  }

  [[nodiscard]] bool empty() const noexcept { return next_ >= total_ && returned_.empty(); }

  /// Hands out up to `max_count` iterations as one contiguous range
  /// (count == 0 when the pool is empty or max_count <= 0).
  [[nodiscard]] Range take(std::int64_t max_count) {
    if (max_count <= 0) return {};
    if (!returned_.empty()) {
      Range& front = returned_.front();
      Range out{front.first, std::min(front.count, max_count)};
      front.first += out.count;
      front.count -= out.count;
      if (front.count == 0) returned_.pop_front();
      return out;
    }
    Range out{next_, std::min(total_ - next_, max_count)};
    if (out.count <= 0) return {};
    next_ += out.count;
    return out;
  }

  /// Returns a lost chunk's range for re-dispatch.
  void give_back(Range range) {
    if (range.count > 0) returned_.push_back(range);
  }

 private:
  std::int64_t total_ = 0;
  std::int64_t next_ = 0;
  std::deque<Range> returned_;
};

/// Fail-slow health tracking + quarantine state machine shared by both
/// executors. Pure bookkeeping with NO randomness: every decision derives
/// from observations the caller feeds in deterministic event order, so
/// the tracker never perturbs the executors' RNG streams. The executors
/// own dispatch policy (benching quarantined workers, firing canary
/// probes); the tracker owns the thresholds, streaks, and counters.
///
/// State machine per worker:
///   Healthy --(EWMA slowdown > threshold after min_observations,
///              or audit mismatches reach audit_mismatch_limit)-->
///   Quarantined (drained; canary probes only) --(probe_successes
///              consecutive healthy canaries)--> Healthy (state reset).
///
/// The fail-slow EWMA trips only with Quarantine::enabled; audit
/// mismatches trip whenever audits run (audit_rate > 0) — both feed the
/// same quarantine machinery.
class HealthTracker {
 public:
  HealthTracker(const SimConfig::Quarantine& config, std::size_t workers)
      : config_(config), state_(workers) {}

  /// Aggregated counters; the executor merges this into
  /// RunResult::quarantine after finish().
  QuarantineStats stats;

  /// Expected dedicated wall-clock of a chunk for the slowdown ratio:
  /// dispatch overhead plus a-priori work scaled by the worker's t = 0
  /// weight, floored like the MPI failure detector's round-trip estimate.
  /// Deliberately NOT the technique's runtime mu estimate: adaptive
  /// estimators normalize themselves to a slow worker's observed rate and
  /// would never flag it.
  [[nodiscard]] static double expected_elapsed(double overhead, double work,
                                               double weight) noexcept {
    return overhead + work / std::max(weight, 0.05);
  }

  /// Feeds one accepted non-canary chunk observation. Returns true when
  /// this observation trips the fail-slow threshold (caller quarantines).
  [[nodiscard]] bool observe(std::size_t worker, double slowdown) {
    State& s = state_[worker];
    s.ewma = s.observations == 0
                 ? slowdown
                 : config_.ewma_alpha * slowdown + (1.0 - config_.ewma_alpha) * s.ewma;
    ++s.observations;
    return config_.enabled && !s.quarantined &&
           s.observations >= config_.min_observations &&
           s.ewma > config_.slowdown_threshold;
  }

  /// Feeds one canary-probe result. Returns true when the healthy streak
  /// reaches probe_successes (caller reinstates).
  [[nodiscard]] bool observe_probe(std::size_t worker, double slowdown) {
    State& s = state_[worker];
    if (slowdown <= config_.slowdown_threshold) {
      ++stats.probes_healthy;
      ++s.healthy_streak;
    } else {
      s.healthy_streak = 0;
    }
    return s.quarantined && s.healthy_streak >= config_.probe_successes;
  }

  /// Feeds one audit mismatch against `worker`. Returns true when the
  /// mismatch limit is reached (caller quarantines).
  [[nodiscard]] bool observe_mismatch(std::size_t worker) {
    State& s = state_[worker];
    ++s.mismatches;
    return !s.quarantined && s.mismatches >= config_.audit_mismatch_limit;
  }

  void quarantine(std::size_t worker, double now, bool audit_trip) {
    State& s = state_[worker];
    s.quarantined = true;
    s.since = now;
    s.healthy_streak = 0;
    ++stats.quarantines;
    if (audit_trip) {
      ++stats.audit_trips;
    } else {
      ++stats.fail_slow_trips;
    }
  }

  /// Reinstates with a clean slate: the EWMA, observation count, and
  /// mismatch tally restart so stale history cannot instantly re-trip.
  void reinstate(std::size_t worker, double now) {
    State& s = state_[worker];
    stats.quarantined_time += now - s.since;
    s = State{};
    ++stats.reinstatements;
  }

  [[nodiscard]] bool quarantined(std::size_t worker) const {
    return state_[worker].quarantined;
  }

  [[nodiscard]] bool any_quarantined() const {
    for (const State& s : state_) {
      if (s.quarantined) return true;
    }
    return false;
  }

  /// Closes still-open quarantine windows into quarantined_time.
  void finish(double now) {
    for (State& s : state_) {
      if (s.quarantined) {
        stats.quarantined_time += now - s.since;
        s.quarantined = false;
      }
    }
  }

 private:
  struct State {
    double ewma = 0.0;
    std::uint64_t observations = 0;
    std::size_t healthy_streak = 0;
    std::size_t mismatches = 0;
    bool quarantined = false;
    double since = 0.0;
  };
  SimConfig::Quarantine config_;
  std::vector<State> state_;
};

/// Everything both executors need set up identically: validated inputs,
/// per-run input factor, per-worker availability processes and noise
/// streams (failure decorators applied), and executor-populated
/// TechniqueParams (weights = availabilities observed at t = 0).
struct PreparedRun {
  double input_factor = 1.0;
  double mean_iter = 0.0;
  double stddev_iter = 0.0;
  std::vector<Worker> workers;
  dls::TechniqueParams params;
  util::RngStream run_rng{0};
};

/// Builds the shared state. Throws std::invalid_argument for zero
/// processors, unknown processor types, or invalid config.
[[nodiscard]] PreparedRun prepare_run(const workload::Application& application,
                                      std::size_t processor_type, std::size_t processors,
                                      const sysmodel::AvailabilitySpec& availability,
                                      const SimConfig& config, std::uint64_t seed);

/// Shared run epilogue: sorts the lifecycle events by time, merges the
/// flight recorder into RunResult::flight, dumps a postmortem through
/// obs::FlightSink when the run ended badly (deadline miss, master
/// restart, quarantine trip — strands and chaos violations dump at their
/// own detection sites), and, when the global obs::MetricsRegistry is
/// enabled, records the run's aggregate counters and makespan histogram
/// (one registry touch per run — nothing on the per-chunk path).
void finalize_run(RunResult& result, const SimConfig& config,
                  const obs::FlightRecorder& recorder);

}  // namespace cdsf::sim::detail
