// Internal helpers shared by the loop executors (the idealized one in
// loop_executor.cpp and the message-passing one in master_worker.cpp).
// Not part of the public API.
#pragma once

#include <memory>
#include <vector>

#include "dls/technique.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "util/rng.hpp"
#include "workload/application.hpp"

namespace cdsf::sim::detail {

/// Throws std::invalid_argument on out-of-domain config values.
void validate_config(const SimConfig& config);

/// Sum of `count` iid iteration times (exact draws for small chunks, CLT
/// normal approximation for large ones); always > 0.
[[nodiscard]] double sample_work(std::int64_t count, double mean, double stddev,
                                 util::RngStream& rng);

/// Dedicated-processor work of the chunk covering parallel iterations
/// [first_index, first_index + count). For flat profiles this is the iid
/// draw of sample_work (bit-identical to the historical behavior); for
/// index-dependent profiles the profile-weighted mean over the range is
/// taken with one multiplicative noise draw of c.o.v. iteration_cov /
/// sqrt(count).
[[nodiscard]] double chunk_work(const workload::Application& application,
                                std::size_t processor_type, double mean_iter,
                                double stddev_iter, double iteration_cov,
                                std::int64_t first_index, std::int64_t count,
                                util::RngStream& rng);

/// One worker's simulation state.
struct Worker {
  std::unique_ptr<sysmodel::AvailabilityProcess> availability;
  std::unique_ptr<util::RngStream> rng;
};

/// Everything both executors need set up identically: validated inputs,
/// per-run input factor, per-worker availability processes and noise
/// streams (failure decorators applied), and executor-populated
/// TechniqueParams (weights = availabilities observed at t = 0).
struct PreparedRun {
  double input_factor = 1.0;
  double mean_iter = 0.0;
  double stddev_iter = 0.0;
  std::vector<Worker> workers;
  dls::TechniqueParams params;
  util::RngStream run_rng{0};
};

/// Builds the shared state. Throws std::invalid_argument for zero
/// processors, unknown processor types, or invalid config.
[[nodiscard]] PreparedRun prepare_run(const workload::Application& application,
                                      std::size_t processor_type, std::size_t processors,
                                      const sysmodel::AvailabilitySpec& availability,
                                      const SimConfig& config, std::uint64_t seed);

}  // namespace cdsf::sim::detail
