#include "sim/timestep_runner.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

void validate(const TimestepConfig& config) {
  if (config.timesteps == 0) {
    throw std::invalid_argument("timestep runner: timesteps must be >= 1");
  }
}

std::uint64_t sweep_seed(const util::SeedSequence& seeds, const TimestepConfig& config,
                         std::size_t step) {
  // Re-drawing availability each sweep means a fresh child seed per sweep;
  // a persistent environment reuses the first sweep's seed (identical
  // availability realization; iteration noise also repeats, which is the
  // controlled-comparison point of the study).
  return config.redraw_availability_each_step ? seeds.child(step) : seeds.child(0);
}

}  // namespace

TimestepRunResult run_timesteps_awf(const workload::Application& application,
                                    std::size_t processor_type, std::size_t processors,
                                    const sysmodel::AvailabilitySpec& availability,
                                    const TimestepConfig& config, std::uint64_t seed) {
  validate(config);
  const util::SeedSequence seeds(seed);

  dls::TechniqueParams params;
  params.workers = processors;
  params.total_iterations = std::max<std::int64_t>(1, application.parallel_iterations());
  params.mean_iteration_time = application.mean_iteration_time(processor_type);
  params.stddev_iteration_time =
      params.mean_iteration_time * config.sim.iteration_cov;
  params.scheduling_overhead = config.sim.scheduling_overhead;
  dls::AdaptiveWeightedFactoring awf(params, dls::AwfVariant::kTimestep);

  TimestepRunResult result;
  result.sweep_makespans.reserve(config.timesteps);
  for (std::size_t step = 0; step < config.timesteps; ++step) {
    const RunResult run = simulate_loop(application, processor_type, processors, availability,
                                        awf, config.sim, sweep_seed(seeds, config, step));
    result.sweep_makespans.push_back(run.makespan);
    result.total_time += run.makespan;
    awf.advance_timestep();
  }
  return result;
}

TimestepRunResult run_timesteps_baseline(const workload::Application& application,
                                         std::size_t processor_type, std::size_t processors,
                                         const sysmodel::AvailabilitySpec& availability,
                                         dls::TechniqueId technique,
                                         const TimestepConfig& config, std::uint64_t seed) {
  validate(config);
  const util::SeedSequence seeds(seed);
  TimestepRunResult result;
  result.sweep_makespans.reserve(config.timesteps);
  for (std::size_t step = 0; step < config.timesteps; ++step) {
    const RunResult run =
        simulate_loop(application, processor_type, processors, availability, technique,
                      config.sim, sweep_seed(seeds, config, step));
    result.sweep_makespans.push_back(run.makespan);
    result.total_time += run.makespan;
  }
  return result;
}

}  // namespace cdsf::sim
