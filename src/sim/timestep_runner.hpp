// Time-stepping application support.
//
// Many of the scientific codes the DLS literature targets (N-body, CFD,
// wave propagation) execute the same parallel loop once per *timestep*.
// The plain AWF technique is designed exactly for them: it freezes its
// weights during one sweep and refreshes them between sweeps from the
// measurements of the previous one. This runner executes T consecutive
// sweeps of one application, carrying adaptive state across them.
#pragma once

#include <cstdint>
#include <vector>

#include "dls/adaptive.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "workload/application.hpp"

namespace cdsf::sim {

/// Result of one multi-timestep execution.
struct TimestepRunResult {
  /// Makespan of each sweep, in order.
  std::vector<double> sweep_makespans;
  /// Sum of sweep makespans (sweeps are dependent: t+1 starts after t).
  double total_time = 0.0;
};

/// Configuration for the timestep study.
struct TimestepConfig {
  std::size_t timesteps = 10;
  SimConfig sim;
  /// When true, every sweep re-draws availability (fresh perturbations per
  /// timestep); when false, one availability realization persists across
  /// sweeps (e.g. a co-scheduled job outliving several timesteps), which is
  /// where cross-timestep weight learning pays off most.
  bool redraw_availability_each_step = true;
};

/// Runs `config.timesteps` sweeps of `application`'s parallel loop with the
/// plain AWF technique, calling advance_timestep() between sweeps.
/// Throws std::invalid_argument if timesteps == 0.
[[nodiscard]] TimestepRunResult run_timesteps_awf(const workload::Application& application,
                                                  std::size_t processor_type,
                                                  std::size_t processors,
                                                  const sysmodel::AvailabilitySpec& availability,
                                                  const TimestepConfig& config,
                                                  std::uint64_t seed);

/// Baseline: the same sweeps with a non-adaptive technique built fresh per
/// sweep (no cross-timestep learning).
[[nodiscard]] TimestepRunResult run_timesteps_baseline(
    const workload::Application& application, std::size_t processor_type,
    std::size_t processors, const sysmodel::AvailabilitySpec& availability,
    dls::TechniqueId technique, const TimestepConfig& config, std::uint64_t seed);

}  // namespace cdsf::sim
