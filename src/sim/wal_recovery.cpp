#include "sim/wal_recovery.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace cdsf::sim {

namespace {

constexpr std::string_view kSchema = "cdsf.master_checkpoint/1";

WalRecord record_from_json(const obs::Json& json) {
  WalRecord record;
  record.kind = wal_kind_from_name(json.at("kind").as_string());
  record.time = json.at("time").as_double();
  record.worker = static_cast<std::size_t>(json.at("worker").as_int());
  record.seq = static_cast<std::uint64_t>(json.at("seq").as_int());
  record.first = json.at("first").as_int();
  record.count = json.at("count").as_int();
  return record;
}

/// Salvages a scalar number field from a torn document: the value after
/// `"key":` is trusted only when its digits are TERMINATED inside the text
/// (a tear mid-number would otherwise silently shorten the value). Returns
/// false when the field (or its terminator) did not survive.
bool salvage_number(std::string_view text, std::string_view key, double& out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t pos = at + needle.size();
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  const std::size_t start = pos;
  while (pos < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 || text[pos] == '-' ||
          text[pos] == '+' || text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')) {
    ++pos;
  }
  if (pos == start || pos == text.size()) return false;  // absent or torn mid-number
  const std::string digits(text.substr(start, pos - start));
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = value;
  return true;
}

bool salvage_counter(std::string_view text, std::string_view key, std::uint64_t& out) {
  double value = 0.0;
  if (!salvage_number(text, key, value) || value < 0.0) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

/// Walks the `"wal": [...]` array of a torn document and appends every
/// record whose braces closed before the tear (salvage_object_stream does
/// the balanced-object scan); each balanced {...} substring was emitted
/// whole by the writer, so it parses — the salvaged log is a prefix by
/// construction.
void salvage_wal_prefix(std::string_view text, std::vector<WalRecord>& wal) {
  std::size_t pos = text.find("\"wal\":");
  if (pos == std::string_view::npos) return;
  pos = text.find('[', pos);
  if (pos == std::string_view::npos) return;
  for (const std::string_view object : salvage_object_stream(text, pos + 1)) {
    try {
      wal.push_back(record_from_json(obs::Json::parse(object)));
    } catch (const std::exception&) {
      return;  // malformed record: everything after it is untrusted
    }
  }
}

}  // namespace

std::vector<std::string_view> salvage_object_stream(std::string_view text, std::size_t from) {
  std::vector<std::string_view> objects;
  std::size_t pos = from;
  while (true) {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r' ||
            text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '{') return objects;  // ']' or tear: done
    const std::size_t open = pos;
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t close = std::string_view::npos;
    for (std::size_t scan = open; scan < text.size(); ++scan) {
      const char c = text[scan];
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          close = scan;
          break;
        }
      }
    }
    if (close == std::string_view::npos) return objects;  // object torn mid-write
    objects.push_back(text.substr(open, close - open + 1));
    pos = close + 1;
  }
}

const char* wal_kind_name(WalRecord::Kind kind) {
  switch (kind) {
    case WalRecord::Kind::kAssign:
      return "assign";
    case WalRecord::Kind::kAck:
      return "ack";
    case WalRecord::Kind::kComplete:
      return "complete";
    case WalRecord::Kind::kSnapshot:
      return "snapshot";
    case WalRecord::Kind::kRestart:
      return "restart";
  }
  return "record";
}

WalRecord::Kind wal_kind_from_name(const std::string& name) {
  if (name == "assign") return WalRecord::Kind::kAssign;
  if (name == "ack") return WalRecord::Kind::kAck;
  if (name == "complete") return WalRecord::Kind::kComplete;
  if (name == "snapshot") return WalRecord::Kind::kSnapshot;
  if (name == "restart") return WalRecord::Kind::kRestart;
  throw std::invalid_argument("wal_kind_from_name: unknown WAL record kind '" + name + "'");
}

RecoveredCheckpoint recover_checkpoint_json(std::string_view text) {
  RecoveredCheckpoint recovered;
  try {
    const obs::Json doc = obs::Json::parse(text);
    if (doc.at("schema").as_string() != kSchema) {
      throw std::runtime_error("recover_checkpoint_json: not a master checkpoint (schema '" +
                               doc.at("schema").as_string() + "')");
    }
    recovered.complete = true;
    recovered.makespan = doc.at("makespan").as_double();
    recovered.wal_records = static_cast<std::uint64_t>(doc.at("wal_records").as_int());
    recovered.snapshots = static_cast<std::uint64_t>(doc.at("snapshots").as_int());
    recovered.master_restarts = static_cast<std::uint64_t>(doc.at("master_restarts").as_int());
    for (const obs::Json& item : doc.at("wal").items()) {
      recovered.wal.push_back(record_from_json(item));
    }
    return recovered;
  } catch (const std::invalid_argument&) {
    // Malformed document: fall through to prefix salvage.
  }
  recovered.torn = true;
  // The header precedes the WAL array, so restrict scalar salvage to the
  // bytes before it — "time"/"count" inside records must never shadow a
  // torn-away header field.
  const std::size_t wal_at = text.find("\"wal\":");
  const std::string_view header =
      wal_at == std::string_view::npos ? text : text.substr(0, wal_at);
  salvage_number(header, "makespan", recovered.makespan);
  salvage_counter(header, "wal_records", recovered.wal_records);
  salvage_counter(header, "snapshots", recovered.snapshots);
  salvage_counter(header, "master_restarts", recovered.master_restarts);
  salvage_wal_prefix(text, recovered.wal);
  return recovered;
}

RecoveredCheckpoint load_checkpoint_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_json: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return recover_checkpoint_json(buffer.str());
}

}  // namespace cdsf::sim
