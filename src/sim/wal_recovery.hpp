// Crash-consistent recovery of the master checkpoint JSON.
//
// write_checkpoint_json (master_worker.cpp) serializes the master's final
// durable state — snapshot counters plus the full write-ahead log — as a
// cdsf.master_checkpoint/1 document. A real crash can TEAR that write: the
// process dies mid-flush and the file on disk is an arbitrary byte prefix
// of the intended document. A recovery tool that chokes on its own torn
// checkpoint defeats the point of having one, so this module implements
// prefix salvage: a complete document parses exactly; a torn one yields
// every header field and every WAL record that survived intact, and
// nothing else. The guarantee (checked by a byte-level truncation sweep in
// tests/test_wal_recovery.cpp) is that recovery NEVER throws on a
// truncated checkpoint and the salvaged WAL is always a prefix of the
// original log — the same contract the master's own restart
// reconciliation relies on (an unacked tail is re-dispatched, never
// half-applied).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/loop_executor.hpp"

namespace cdsf::sim {

/// The torn-write salvage primitive shared by checkpoint recovery and the
/// scheduling service's request journal (svc/journal.*): starting at
/// `from`, skips whitespace and commas, then collects every balanced
/// top-level `{...}` object in sequence. Brace matching tracks JSON string
/// and escape state, so a tear inside a quoted value can never fake an
/// object boundary. Stops (returning what it has) at the first non-object
/// byte (e.g. a closing ']'), at a tear that leaves an object unbalanced,
/// or at end of text — so the returned views are always a PREFIX of the
/// objects the writer emitted whole. Never throws; the views alias `text`.
[[nodiscard]] std::vector<std::string_view> salvage_object_stream(std::string_view text,
                                                                  std::size_t from = 0);

/// Stable identifier of a WAL record kind ("assign", "ack", "complete",
/// "snapshot", "restart") — the serialization used by the checkpoint JSON.
[[nodiscard]] const char* wal_kind_name(WalRecord::Kind kind);

/// Inverse of wal_kind_name. Throws std::invalid_argument on an unknown
/// name.
[[nodiscard]] WalRecord::Kind wal_kind_from_name(const std::string& name);

/// What recovery salvaged from a (possibly torn) checkpoint document.
struct RecoveredCheckpoint {
  /// The document parsed whole and carried the expected schema.
  bool complete = false;
  /// Prefix salvage engaged: the text was not a complete document, so the
  /// fields below hold whatever could be recovered (possibly nothing).
  bool torn = false;
  double makespan = 0.0;
  std::uint64_t wal_records = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t master_restarts = 0;
  /// The salvaged log — the full WAL when `complete`, otherwise the
  /// longest prefix whose records all survived the tear intact.
  std::vector<WalRecord> wal;
};

/// Recovers a checkpoint from raw text. A complete, schema-correct
/// document yields complete == true and exact fields; anything else
/// (truncation at any byte, arbitrary garbage) yields torn == true and a
/// best-effort salvage. Never throws on torn input; throws
/// std::runtime_error only when a COMPLETE document carries the wrong
/// schema — that is corruption of a different kind, not a torn write.
[[nodiscard]] RecoveredCheckpoint recover_checkpoint_json(std::string_view text);

/// Reads `path` and delegates to recover_checkpoint_json. Throws
/// std::runtime_error when the file cannot be read.
[[nodiscard]] RecoveredCheckpoint load_checkpoint_json(const std::string& path);

}  // namespace cdsf::sim
