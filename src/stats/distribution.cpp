#include "stats/distribution.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cdsf::stats {

namespace {

constexpr double kPi = 3.14159265358979323846;

void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

void require_probability(double p) {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("quantile: p must be in [0, 1]");
}

std::string param_string(const char* name, double a, double b) {
  std::ostringstream out;
  out << name << "(" << a << ", " << b << ")";
  return out.str();
}

/// Generic bracketed bisection quantile for distributions without a closed
/// form inverse. `cdf` must be nondecreasing.
template <typename Cdf>
double bisect_quantile(Cdf cdf, double p, double lo, double hi) {
  // Expand the bracket until it contains the quantile.
  for (int i = 0; i < 128 && cdf(hi) < p; ++i) hi = lo + (hi - lo) * 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double standard_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double standard_normal_quantile(double p) {
  require_probability(p);
  if (p == 0.0) return -std::numeric_limits<double>::infinity();
  if (p == 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;

  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step against the true CDF.
  const double e = standard_normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double regularized_gamma_p(double a, double x) {
  require(a > 0.0, "regularized_gamma_p: a must be > 0");
  if (x <= 0.0) return 0.0;
  constexpr int kMaxIterations = 500;
  constexpr double kEpsilon = 1e-15;
  const double log_gamma_a = std::lgamma(a);

  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < kMaxIterations; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a, x) = 1 - P(a, x) (modified Lentz).
  constexpr double kFloor = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFloor;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFloor) d = kFloor;
    c = b + an / c;
    if (std::fabs(c) < kFloor) c = kFloor;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

// ---------------------------------------------------------------- Normal --

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  require(stddev > 0.0, "Normal: stddev must be > 0");
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * kPi));
}

double Normal::cdf(double x) const { return standard_normal_cdf((x - mean_) / stddev_); }

double Normal::quantile(double p) const {
  return mean_ + stddev_ * standard_normal_quantile(p);
}

double Normal::sample(util::RngStream& rng) const { return rng.normal(mean_, stddev_); }

std::string Normal::name() const { return param_string("Normal", mean_, stddev_); }

std::unique_ptr<Distribution> Normal::clone() const { return std::make_unique<Normal>(*this); }

// ------------------------------------------------------------- LogNormal --

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma > 0.0, "LogNormal: sigma must be > 0");
}

LogNormal LogNormal::from_mean_stddev(double mean, double stddev) {
  require(mean > 0.0, "LogNormal::from_mean_stddev: mean must be > 0");
  require(stddev > 0.0, "LogNormal::from_mean_stddev: stddev must be > 0");
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * kPi));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return standard_normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  require_probability(p);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * standard_normal_quantile(p));
}

double LogNormal::sample(util::RngStream& rng) const {
  return std::exp(mu_ + sigma_ * rng.normal());
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormal::name() const { return param_string("LogNormal", mu_, sigma_); }

std::unique_ptr<Distribution> LogNormal::clone() const {
  return std::make_unique<LogNormal>(*this);
}

// ----------------------------------------------------------------- Gamma --

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0, "Gamma: shape must be > 0");
  require(scale > 0.0, "Gamma: scale must be > 0");
}

Gamma Gamma::from_mean_stddev(double mean, double stddev) {
  require(mean > 0.0, "Gamma::from_mean_stddev: mean must be > 0");
  require(stddev > 0.0, "Gamma::from_mean_stddev: stddev must be > 0");
  const double shape = (mean / stddev) * (mean / stddev);
  return Gamma(shape, mean / shape);
}

double Gamma::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  return std::exp((shape_ - 1.0) * std::log(x) - x / scale_ - std::lgamma(shape_) -
                  shape_ * std::log(scale_));
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  require_probability(p);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return bisect_quantile([this](double x) { return cdf(x); }, p, 0.0,
                         mean() + 10.0 * std::sqrt(variance()));
}

double Gamma::sample(util::RngStream& rng) const {
  return std::gamma_distribution<double>(shape_, scale_)(rng.engine());
}

std::string Gamma::name() const { return param_string("Gamma", shape_, scale_); }

std::unique_ptr<Distribution> Gamma::clone() const { return std::make_unique<Gamma>(*this); }

// ----------------------------------------------------------- Exponential --

Exponential::Exponential(double rate) : rate_(rate) {
  require(rate > 0.0, "Exponential: rate must be > 0");
}

double Exponential::pdf(double x) const { return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x); }

double Exponential::cdf(double x) const { return x < 0.0 ? 0.0 : -std::expm1(-rate_ * x); }

double Exponential::quantile(double p) const {
  require_probability(p);
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(util::RngStream& rng) const {
  return std::exponential_distribution<double>(rate_)(rng.engine());
}

std::string Exponential::name() const {
  std::ostringstream out;
  out << "Exponential(" << rate_ << ")";
  return out.str();
}

std::unique_ptr<Distribution> Exponential::clone() const {
  return std::make_unique<Exponential>(*this);
}

// --------------------------------------------------------------- Uniform --

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(hi > lo, "Uniform: hi must be > lo");
}

double Uniform::pdf(double x) const {
  return (x < lo_ || x > hi_) ? 0.0 : 1.0 / (hi_ - lo_);
}

double Uniform::cdf(double x) const {
  if (x < lo_) return 0.0;
  if (x > hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  require_probability(p);
  return lo_ + p * (hi_ - lo_);
}

double Uniform::sample(util::RngStream& rng) const { return rng.uniform(lo_, hi_); }

std::string Uniform::name() const { return param_string("Uniform", lo_, hi_); }

std::unique_ptr<Distribution> Uniform::clone() const { return std::make_unique<Uniform>(*this); }

// --------------------------------------------------------------- Weibull --

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  require(shape > 0.0, "Weibull: shape must be > 0");
  require(scale > 0.0, "Weibull: scale must be > 0");
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return shape_ < 1.0 ? std::numeric_limits<double>::infinity()
                                    : (shape_ == 1.0 ? 1.0 / scale_ : 0.0);
  const double z = x / scale_;
  return (shape_ / scale_) * std::pow(z, shape_ - 1.0) * std::exp(-std::pow(z, shape_));
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return -std::expm1(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  require_probability(p);
  if (p == 1.0) return std::numeric_limits<double>::infinity();
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

double Weibull::sample(util::RngStream& rng) const {
  return std::weibull_distribution<double>(shape_, scale_)(rng.engine());
}

double Weibull::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape_);
  const double g2 = std::tgamma(1.0 + 2.0 / shape_);
  return scale_ * scale_ * (g2 - g1 * g1);
}

std::string Weibull::name() const { return param_string("Weibull", shape_, scale_); }

std::unique_ptr<Distribution> Weibull::clone() const { return std::make_unique<Weibull>(*this); }

}  // namespace cdsf::stats
