// Continuous probability distributions with density, CDF, quantile and
// sampling, behind one polymorphic interface.
//
// Stage I discretizes these into PMFs (src/pmf/discretize.hpp); Stage II's
// simulator samples per-iteration execution times from them directly.
#pragma once

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace cdsf::stats {

/// Abstract continuous distribution over the reals.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Probability density at x.
  [[nodiscard]] virtual double pdf(double x) const = 0;
  /// P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Inverse CDF: smallest x with cdf(x) >= p. Requires p in [0, 1].
  [[nodiscard]] virtual double quantile(double p) const = 0;
  /// One random draw.
  [[nodiscard]] virtual double sample(util::RngStream& rng) const = 0;

  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double variance() const = 0;
  /// Human-readable name including parameters, e.g. "Normal(1800, 180)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy (distributions are immutable, but callers may need owning
  /// copies with independent lifetime).
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;
};

/// Gaussian N(mean, stddev^2).
class Normal final : public Distribution {
 public:
  /// Throws std::invalid_argument if stddev <= 0.
  Normal(double mean, double stddev);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double variance() const override { return stddev_ * stddev_; }
  [[nodiscard]] double stddev() const { return stddev_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mean_;
  double stddev_;
};

/// log X ~ N(mu, sigma^2); support (0, inf).
class LogNormal final : public Distribution {
 public:
  /// Parameters are of the underlying normal. Throws if sigma <= 0.
  LogNormal(double mu, double sigma);
  /// Builds the LogNormal whose *own* mean and stddev match the arguments.
  static LogNormal from_mean_stddev(double mean, double stddev);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double mu_;
  double sigma_;
};

/// Gamma(shape k, scale theta); support (0, inf).
class Gamma final : public Distribution {
 public:
  /// Throws if shape <= 0 or scale <= 0.
  Gamma(double shape, double scale);
  /// Builds the Gamma whose mean and stddev match the arguments.
  static Gamma from_mean_stddev(double mean, double stddev);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return shape_ * scale_; }
  [[nodiscard]] double variance() const override { return shape_ * scale_ * scale_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

/// Exponential with given rate lambda; support [0, inf).
class Exponential final : public Distribution {
 public:
  /// Throws if rate <= 0.
  explicit Exponential(double rate);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override { return 1.0 / (rate_ * rate_); }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double rate_;
};

/// Uniform on [lo, hi].
class Uniform final : public Distribution {
 public:
  /// Throws if hi <= lo.
  Uniform(double lo, double hi);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] double variance() const override { return (hi_ - lo_) * (hi_ - lo_) / 12.0; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double lo_;
  double hi_;
};

/// Weibull(shape k, scale lambda); support [0, inf).
class Weibull final : public Distribution {
 public:
  /// Throws if shape <= 0 or scale <= 0.
  Weibull(double shape, double scale);

  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double sample(util::RngStream& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Distribution> clone() const override;

 private:
  double shape_;
  double scale_;
};

/// Standard normal CDF Phi(x) (exposed for reuse by tests and the PMF layer).
[[nodiscard]] double standard_normal_cdf(double x);
/// Standard normal quantile Phi^{-1}(p): Acklam's rational approximation
/// refined with one Halley step; |error| < 1e-12 over (0, 1).
[[nodiscard]] double standard_normal_quantile(double p);
/// Regularized lower incomplete gamma P(a, x), via series / continued fraction.
[[nodiscard]] double regularized_gamma_p(double a, double x);

}  // namespace cdsf::stats
