#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdsf::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double ks_distance(std::vector<double> sample, const std::function<double(double)>& cdf) {
  if (sample.empty()) throw std::invalid_argument("ks_distance: empty sample");
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max({worst, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return worst;
}

}  // namespace cdsf::stats
