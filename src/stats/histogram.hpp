// Fixed-width histogram plus empirical-CDF utilities (KS distance).
//
// Used by tests to validate that (a) samples from a Distribution follow its
// CDF and (b) PMF discretizations track the continuous law they came from.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace cdsf::stats {

/// Equal-width histogram over [lo, hi) with an explicit bin count.
/// Out-of-range observations are counted in underflow/overflow.
class Histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or hi <= lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Center value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Fraction of all observations (including under/overflow) in a bin.
  [[nodiscard]] double fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Kolmogorov–Smirnov distance between a sample and a reference CDF:
/// sup_x |F_n(x) - F(x)|. Throws std::invalid_argument on empty sample.
[[nodiscard]] double ks_distance(std::vector<double> sample,
                                 const std::function<double(double)>& cdf);

}  // namespace cdsf::stats
