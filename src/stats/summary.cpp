#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cdsf::stats {

void OnlineSummary::add(double x) noexcept { add(x, 1.0); }

void OnlineSummary::add(double x, double weight) noexcept {
  if (weight <= 0.0) return;
  if (weight_ <= 0.0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  weight_ += weight;
  const double delta = x - mean_;
  mean_ += delta * (weight / weight_);
  m2_ += weight * delta * (x - mean_);
}

void OnlineSummary::merge(const OnlineSummary& other) noexcept {
  if (other.weight_ <= 0.0) return;
  if (weight_ <= 0.0) {
    *this = other;
    return;
  }
  const double total = weight_ + other.weight_;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * weight_ * other.weight_ / total;
  mean_ += delta * (other.weight_ / total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  weight_ = total;
}

double OnlineSummary::variance() const noexcept {
  return weight_ > 0.0 ? m2_ / weight_ : 0.0;
}

double OnlineSummary::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineSummary::cov() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("percentile: empty sample");
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("percentile: p must be in [0, 1]");
  std::sort(sample.begin(), sample.end());
  const double rank = p * (static_cast<double>(sample.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sample.size()) return sample.back();
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

double mean_of(const std::vector<double>& sample) {
  if (sample.empty()) throw std::invalid_argument("mean_of: empty sample");
  double sum = 0.0;
  for (double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

double stddev_of(const std::vector<double>& sample) {
  if (sample.empty()) throw std::invalid_argument("stddev_of: empty sample");
  if (sample.size() < 2) return 0.0;
  const double m = mean_of(sample);
  double sum_sq = 0.0;
  for (double x : sample) sum_sq += (x - m) * (x - m);
  return std::sqrt(sum_sq / (static_cast<double>(sample.size()) - 1.0));
}

namespace {
double z_for_level(double level) {
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("confidence level must be in (0, 1)");
  }
  // Inverse normal CDF of (1 + level) / 2 via the distribution module would
  // add a dependency cycle; the usual levels are tabulated and the rest
  // fall back to a rational approximation good to ~1e-4 (ample for CIs).
  if (level == 0.90) return 1.6448536269514722;
  if (level == 0.95) return 1.959963984540054;
  if (level == 0.99) return 2.5758293035489004;
  const double p = (1.0 + level) / 2.0;
  const double t = std::sqrt(-2.0 * std::log(1.0 - p));
  return t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t);
}
}  // namespace

ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                   double level) {
  if (trials == 0) throw std::invalid_argument("wilson_interval: trials must be > 0");
  if (successes > trials) {
    throw std::invalid_argument("wilson_interval: successes exceed trials");
  }
  const double z = z_for_level(level);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  // At the boundaries center == margin analytically; clamp the residual
  // floating-point noise so the interval always contains p.
  const double lower = successes == 0 ? 0.0 : std::max(0.0, center - margin);
  const double upper = successes == trials ? 1.0 : std::min(1.0, center + margin);
  return {lower, upper};
}

ConfidenceInterval mean_interval(double mean, double stddev, std::uint64_t n, double level) {
  if (n == 0) throw std::invalid_argument("mean_interval: n must be > 0");
  if (stddev < 0.0) throw std::invalid_argument("mean_interval: stddev must be >= 0");
  const double margin = z_for_level(level) * stddev / std::sqrt(static_cast<double>(n));
  return {mean - margin, mean + margin};
}

ConfidenceInterval bootstrap_median_interval(const std::vector<double>& sample, double level,
                                             std::size_t resamples, std::uint64_t seed) {
  if (sample.empty()) throw std::invalid_argument("bootstrap_median_interval: empty sample");
  if (resamples == 0) {
    throw std::invalid_argument("bootstrap_median_interval: resamples must be > 0");
  }
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("bootstrap_median_interval: level must be in (0, 1)");
  }
  util::RngStream rng(seed);
  const auto n = static_cast<std::int64_t>(sample.size());
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> draw(sample.size());
  for (std::size_t b = 0; b < resamples; ++b) {
    for (double& x : draw) x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    medians.push_back(percentile(draw, 0.5));
  }
  const double tail = (1.0 - level) / 2.0;
  return {percentile(medians, tail), percentile(medians, 1.0 - tail)};
}

PairedComparison paired_median_comparison(const std::vector<double>& a,
                                          const std::vector<double>& b, double level,
                                          std::size_t resamples, std::uint64_t seed) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_median_comparison: size mismatch");
  }
  if (a.empty()) throw std::invalid_argument("paired_median_comparison: empty samples");
  std::vector<double> differences(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) differences[i] = a[i] - b[i];
  PairedComparison result;
  result.median_difference = percentile(differences, 0.5);
  result.ci = bootstrap_median_interval(differences, level, resamples, seed);
  result.significant = result.ci.lower > 0.0 || result.ci.upper < 0.0;
  return result;
}

}  // namespace cdsf::stats
