// Online and batch descriptive statistics.
//
// OnlineSummary (Welford) is the feedback channel of the adaptive DLS
// techniques: each worker accumulates per-iteration times into one, and
// AWF*/AF read mean/stddev from it between chunks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdsf::stats {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class OnlineSummary {
 public:
  /// Adds one observation.
  void add(double x) noexcept;
  /// Adds `weight` identical observations in one step (used when a chunk of
  /// w iterations completes in total time t: add(t / w, w)).
  void add(double x, double weight) noexcept;
  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const OnlineSummary& other) noexcept;

  [[nodiscard]] double count() const noexcept { return weight_; }
  [[nodiscard]] bool empty() const noexcept { return weight_ <= 0.0; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cov() const noexcept;

 private:
  double weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile of a sample (linear interpolation between order
/// statistics). `p` in [0, 1]. Throws std::invalid_argument on empty input.
[[nodiscard]] double percentile(std::vector<double> sample, double p);

/// Sample mean. Throws std::invalid_argument on empty input.
[[nodiscard]] double mean_of(const std::vector<double>& sample);

/// Unbiased sample standard deviation (n-1); 0 for n < 2.
[[nodiscard]] double stddev_of(const std::vector<double>& sample);

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] bool contains(double x) const noexcept { return x >= lower && x <= upper; }
  [[nodiscard]] double width() const noexcept { return upper - lower; }
};

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at confidence `level` (e.g. 0.95). Better behaved than the
/// normal approximation near 0/1 — which is where deadline hit rates live.
/// Throws std::invalid_argument if trials == 0, successes > trials, or
/// level outside (0, 1).
[[nodiscard]] ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                                 double level = 0.95);

/// Normal-approximation confidence interval for a mean from n observations
/// with sample stddev s: mean +/- z * s / sqrt(n). (A z- rather than
/// t-interval; the replication counts used here are large enough that the
/// difference is below simulation noise.) Throws std::invalid_argument if
/// n == 0 or level outside (0, 1).
[[nodiscard]] ConfidenceInterval mean_interval(double mean, double stddev, std::uint64_t n,
                                               double level = 0.95);

/// Percentile-bootstrap confidence interval for the MEDIAN of a sample:
/// `resamples` draws with replacement, each contributing its median; the
/// CI is the [(1-level)/2, (1+level)/2] percentile band. Deterministic
/// given the seed. Throws std::invalid_argument on empty input,
/// resamples == 0, or level outside (0, 1).
[[nodiscard]] ConfidenceInterval bootstrap_median_interval(const std::vector<double>& sample,
                                                           double level,
                                                           std::size_t resamples,
                                                           std::uint64_t seed);

/// Paired comparison of two equal-length samples (common-random-number
/// replications): bootstrap CI of the median of the pairwise differences
/// a[i] - b[i]. `significant` is true when the CI excludes zero.
struct PairedComparison {
  double median_difference = 0.0;
  ConfidenceInterval ci;
  bool significant = false;
};

/// Throws std::invalid_argument on size mismatch or empty input.
[[nodiscard]] PairedComparison paired_median_comparison(const std::vector<double>& a,
                                                        const std::vector<double>& b,
                                                        double level = 0.95,
                                                        std::size_t resamples = 2000,
                                                        std::uint64_t seed = 0xB007);

}  // namespace cdsf::stats
