#include "svc/chaos.hpp"

#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "svc/journal.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace cdsf::svc {

namespace {

/// id -> terminal record for one run.
std::unordered_map<std::uint64_t, const RequestRecord*> by_id(const ServiceRunResult& result) {
  std::unordered_map<std::uint64_t, const RequestRecord*> map;
  map.reserve(result.requests.size());
  for (const RequestRecord& record : result.requests) map.emplace(record.id, &record);
  return map;
}

/// Ordered so violation messages come out in id order across platforms.
std::set<std::uint64_t> delivered_ids(const ServiceRunResult& result) {
  std::set<std::uint64_t> ids;
  for (const RequestRecord& record : result.requests) {
    if (outcome_delivered(record.outcome)) ids.insert(record.id);
  }
  return ids;
}

}  // namespace

ServiceChaosReport run_service_chaos_campaign(const ServiceChaosConfig& config) {
  if (config.schedules == 0) {
    throw std::invalid_argument("run_service_chaos_campaign: schedules must be >= 1");
  }
  if (config.requests < 2) {
    throw std::invalid_argument("run_service_chaos_campaign: requests must be >= 2");
  }
  ServiceChaosReport report;
  const util::SeedSequence seeds(config.seed);
  const std::string dir = config.journal_dir.empty() ? "." : config.journal_dir;

  for (std::size_t schedule = 0; schedule < config.schedules; ++schedule) {
    const std::uint64_t seed = seeds.child(schedule);
    const auto violate = [&](const char* invariant, std::string detail) {
      report.violations.push_back(
          ServiceChaosViolation{schedule, seed, invariant, std::move(detail)});
    };

    StreamConfig stream_config;
    stream_config.requests = config.requests;
    stream_config.mean_interarrival = 3.0;
    stream_config.seed = seed;
    stream_config.poison_fraction = config.poison_fraction;
    const std::vector<ScenarioRequest> stream = make_scripted_stream(stream_config);

    ServiceConfig base;
    base.shards = config.shards;
    base.replications = config.replications;
    base.watchdog_timeout = 25.0;
    base.mean_solve_time = 10.0;
    base.solve_time_cov = 0.6;
    base.hang_fraction = config.hang_fraction;
    base.seed = seed;

    // --- Determinism axis: same stream, two Phase B thread counts. ---
    ServiceConfig config_a = base;
    config_a.solve_threads = config.threads_a;
    config_a.journal_path = dir + "/svc_chaos_det_" + std::to_string(schedule) + ".jsonl";
    const ServiceRunResult run_a = SchedulingService(config_a).run(stream);

    ServiceConfig config_b = base;
    config_b.solve_threads = config.threads_b;  // no journal: bytes must not care
    const ServiceRunResult run_b = SchedulingService(config_b).run(stream);

    if (run_a.report.dump(2) != run_b.report.dump(2)) {
      violate("determinism", "service report differs between solve_threads " +
                                 std::to_string(config.threads_a) + " and " +
                                 std::to_string(config.threads_b));
    }
    if (!run_a.drained) violate("drain", "no-crash run did not drain");
    if (!run_a.admission.identity_holds()) {
      violate("admission_identity", "arrivals != admitted + rejected + shed");
    }
    for (const RequestRecord& record : run_a.requests) {
      if (record.outcome == RequestOutcome::kUnfinished ||
          record.outcome == RequestOutcome::kNotArrived) {
        violate("drain", "request " + std::to_string(record.id) +
                             " stranded as " + request_outcome_name(record.outcome) +
                             " after drain");
      }
    }

    // --- Crash/restart axis: daemon dies mid-stream, replays exactly once. ---
    const std::string crash_path =
        dir + "/svc_chaos_crash_" + std::to_string(schedule) + ".jsonl";
    ServiceConfig config_crash = base;
    config_crash.solve_threads = config.threads_a;
    config_crash.journal_path = crash_path;
    // Crash at a mid-stream arrival: later arrivals are strictly after it
    // (arrival times strictly increase), so the cutoff always fires.
    config_crash.crash_at = stream[(stream.size() - 1) / 2].arrival;
    const ServiceRunResult run_crash = SchedulingService(config_crash).run(stream);
    if (!run_crash.crashed) {
      violate("crash_injection", "crash_at did not interrupt the run");
    }

    const RecoveredJournal recovered = load_journal(crash_path);
    if (!recovered.header_ok) violate("journal", "journal header did not survive");
    const std::set<std::uint64_t> delivered_first = delivered_ids(run_crash);
    std::unordered_set<std::uint64_t> completed_in_journal;
    for (const JournalCompletion& completion : recovered.completed) {
      completed_in_journal.insert(completion.id);
    }
    const auto crash_records = by_id(run_crash);
    for (const std::uint64_t id : delivered_first) {
      if (completed_in_journal.count(id) == 0) {
        violate("journal", "delivered request " + std::to_string(id) +
                               " has no completed record");
      }
    }
    for (const JournalCompletion& completion : recovered.completed) {
      const auto it = crash_records.find(completion.id);
      if (it != crash_records.end() && it->second->digest != completion.digest) {
        violate("journal", "digest mismatch for request " + std::to_string(completion.id));
      }
    }

    // Restart: replay the journal's unfinished set plus the tail the dead
    // daemon never saw.
    std::vector<ScenarioRequest> restart_stream = recovered.unfinished();
    for (const ScenarioRequest& request : stream) {
      const auto it = crash_records.find(request.id);
      if (it != crash_records.end() && it->second->outcome == RequestOutcome::kNotArrived) {
        restart_stream.push_back(request);
      }
    }
    for (const ScenarioRequest& request : restart_stream) {
      if (delivered_first.count(request.id) != 0) {
        violate("exactly_once", "request " + std::to_string(request.id) +
                                    " would be re-delivered after restart");
      }
    }
    ServiceConfig config_restart = base;
    config_restart.solve_threads = config.threads_b;
    config_restart.journal_path = crash_path;
    config_restart.journal_truncate = false;
    const ServiceRunResult run_restart = SchedulingService(config_restart).run(restart_stream);
    if (!run_restart.drained) violate("drain", "restarted run did not drain");

    const std::set<std::uint64_t> delivered_second = delivered_ids(run_restart);
    for (const std::uint64_t id : delivered_second) {
      if (delivered_first.count(id) != 0) {
        violate("exactly_once",
                "request " + std::to_string(id) + " delivered in both runs");
      }
    }
    // Zero lost requests: every acked id reaches a delivered outcome.
    for (const std::vector<std::uint64_t>* acked :
         {&run_crash.acked, &run_restart.acked}) {
      for (const std::uint64_t id : *acked) {
        if (delivered_first.count(id) == 0 && delivered_second.count(id) == 0) {
          violate("lost_request",
                  "acked request " + std::to_string(id) + " never delivered");
        }
      }
    }
    // Every stream id is terminal somewhere (delivered, or rejected by
    // admission in exactly one of the runs).
    const auto restart_records = by_id(run_restart);
    for (const ScenarioRequest& request : stream) {
      std::size_t terminals = 0;
      for (const auto* records : {&crash_records, &restart_records}) {
        const auto it = records->find(request.id);
        if (it != records->end() && it->second->outcome != RequestOutcome::kNotArrived &&
            it->second->outcome != RequestOutcome::kUnfinished) {
          ++terminals;
        }
      }
      if (terminals != 1) {
        violate("exactly_once", "request " + std::to_string(request.id) + " has " +
                                    std::to_string(terminals) + " terminal outcomes");
      }
    }
    // After the drained restart, the journal replays nothing.
    const RecoveredJournal final_state = load_journal(crash_path);
    if (!final_state.unfinished().empty()) {
      violate("journal", std::to_string(final_state.unfinished().size()) +
                             " request(s) still unfinished after drained restart");
    }

    ++report.schedules_run;
    report.delivered += run_a.delivered;
    report.hedges += run_a.hedges;
    report.timeouts += run_a.timeouts;
    report.poisoned += run_a.poisoned;
    report.crashes += run_crash.crashed ? 1 : 0;
    report.replayed += run_restart.replayed;
  }
  return report;
}

obs::Json service_chaos_json(const ServiceChaosReport& report) {
  obs::Json doc = obs::Json::object();
  doc.set("schedules_run", report.schedules_run);
  doc.set("delivered", report.delivered);
  doc.set("hedges", report.hedges);
  doc.set("timeouts", report.timeouts);
  doc.set("poisoned", report.poisoned);
  doc.set("crashes", report.crashes);
  doc.set("replayed", report.replayed);
  doc.set("passed", report.passed());
  obs::Json violations = obs::Json::array();
  for (const ServiceChaosViolation& violation : report.violations) {
    obs::Json entry = obs::Json::object();
    entry.set("schedule", violation.schedule);
    entry.set("seed", violation.seed);
    entry.set("invariant", violation.invariant);
    entry.set("detail", violation.detail);
    violations.push_back(std::move(entry));
  }
  doc.set("violations", std::move(violations));
  return doc;
}

}  // namespace cdsf::svc
