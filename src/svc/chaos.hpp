// Service chaos axis: randomized campaigns against the scheduling
// service, with the crash-safety and determinism contracts checked on
// every schedule. Lives in svc/ (not sim/chaos.* or cdsf/admission.*)
// because the service sits above both; the `cdsf chaos` subcommand runs
// it alongside the executor and arrival-storm campaigns and folds the
// verdict into the cdsf.chaos_report/4 document.
//
// Each schedule draws a request stream (seeded arrivals, a poison
// fraction) and a fault mix (injected solver hangs, a mid-stream daemon
// crash), then checks:
//
//   * exactly-once reports — every admitted request reaches exactly one
//     terminal outcome across the crash/restart pair; a report delivered
//     before the crash is never re-delivered after it;
//   * zero lost requests — every acked id (journal flushed) is terminal
//     by the end of the restarted run;
//   * repeat determinism — the service report is byte-identical when the
//     same schedule re-runs with a different Phase B thread count;
//   * drain termination — the no-crash run always drains (no stranded
//     queue entries), and the admission identity holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cdsf::svc {

struct ServiceChaosConfig {
  /// Randomized schedules (each runs the service three times: two
  /// thread-count variants plus a crash/restart pair).
  std::size_t schedules = 4;
  std::uint64_t seed = 2026;
  std::size_t requests = 8;
  std::size_t shards = 2;
  double poison_fraction = 0.15;
  double hang_fraction = 0.15;
  /// Phase B thread counts compared for byte-identity.
  std::size_t threads_a = 1;
  std::size_t threads_b = 4;
  /// Stage II replications per real solve (kept small: every schedule
  /// solves every delivered request multiple times).
  std::size_t replications = 3;
  /// Directory for the per-schedule journal files ("" = current dir).
  std::string journal_dir;
};

struct ServiceChaosViolation {
  std::size_t schedule = 0;
  std::uint64_t seed = 0;
  std::string invariant;  // "exactly_once" | "lost_request" | ...
  std::string detail;
};

struct ServiceChaosReport {
  std::size_t schedules_run = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hedges = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t poisoned = 0;
  std::uint64_t crashes = 0;
  std::uint64_t replayed = 0;
  std::vector<ServiceChaosViolation> violations;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Runs the campaign (see file comment). Throws std::invalid_argument
/// when schedules == 0 or requests == 0.
[[nodiscard]] ServiceChaosReport run_service_chaos_campaign(const ServiceChaosConfig& config);

/// The `service` block `cdsf chaos --report-json` embeds in the
/// cdsf.chaos_report/4 document (the /3 -> /4 schema bump).
[[nodiscard]] obs::Json service_chaos_json(const ServiceChaosReport& report);

}  // namespace cdsf::svc
