#include "svc/journal.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "obs/json.hpp"
#include "sim/wal_recovery.hpp"

namespace cdsf::svc {

namespace {

std::string digest_hex(std::uint64_t digest) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

/// Inverse of digest_hex; false on anything that is not 0x + 16 hex
/// digits (a torn digest must not salvage as a different value).
bool parse_digest_hex(const std::string& text, std::uint64_t& out) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') return false;
  std::uint64_t value = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = value;
  return true;
}

}  // namespace

std::vector<ScenarioRequest> RecoveredJournal::unfinished() const {
  std::unordered_set<std::uint64_t> done;
  done.reserve(completed.size());
  for (const JournalCompletion& completion : completed) done.insert(completion.id);
  std::vector<ScenarioRequest> replay;
  for (const ScenarioRequest& request : accepted) {
    if (done.count(request.id) != 0) continue;
    ScenarioRequest copy = request;
    copy.replayed = true;
    replay.push_back(std::move(copy));
  }
  return replay;
}

RecoveredJournal recover_journal_text(std::string_view text) {
  RecoveredJournal recovered;
  const std::vector<std::string_view> objects = sim::salvage_object_stream(text);
  std::unordered_set<std::uint64_t> seen_accepted;
  std::unordered_set<std::uint64_t> seen_completed;
  std::size_t salvaged_end = 0;
  for (const std::string_view object : objects) {
    try {
      const obs::Json record = obs::Json::parse(object);
      if (const obs::Json* schema = record.find("schema")) {
        // Header line. A wrong schema means this is some other JSONL
        // file, not a torn journal — salvage nothing past it either way.
        if (schema->as_string() != kServiceJournalSchema) break;
        recovered.header_ok = true;
      } else {
        const std::string& kind = record.at("kind").as_string();
        if (kind == "accepted") {
          ScenarioRequest request;
          request.id = static_cast<std::uint64_t>(record.at("id").as_int());
          request.arrival = record.at("arrival").as_double();
          request.seed = static_cast<std::uint64_t>(record.at("seed").as_int());
          request.scenario_text = record.at("scenario").as_string();
          if (seen_accepted.insert(request.id).second) {
            recovered.accepted.push_back(std::move(request));
          }
        } else if (kind == "completed") {
          JournalCompletion completion;
          completion.id = static_cast<std::uint64_t>(record.at("id").as_int());
          completion.outcome = request_outcome_from_name(record.at("outcome").as_string());
          if (!parse_digest_hex(record.at("digest").as_string(), completion.digest)) break;
          if (seen_completed.insert(completion.id).second) {
            recovered.completed.push_back(completion);
          }
        } else {
          break;  // unknown record kind: everything after it is untrusted
        }
      }
    } catch (const std::exception&) {
      break;  // malformed record: stop at the tear
    }
    salvaged_end =
        static_cast<std::size_t>(object.data() + object.size() - text.data());
  }
  for (std::size_t pos = salvaged_end; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      recovered.torn = true;
      break;
    }
  }
  return recovered;
}

RecoveredJournal load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return RecoveredJournal{};  // fresh journal: nothing to replay
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("load_journal: cannot read " + path);
  }
  return recover_journal_text(buffer.str());
}

void RequestJournal::open(const std::string& path, bool truncate) {
  bool write_header = truncate;
  if (!truncate) {
    std::ifstream existing(path, std::ios::binary | std::ios::ate);
    write_header = !existing || existing.tellg() <= 0;
  }
  out_.open(path, truncate ? std::ios::binary | std::ios::trunc
                           : std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("RequestJournal: cannot open " + path);
  }
  if (write_header) {
    obs::Json header = obs::Json::object();
    header.set("schema", kServiceJournalSchema);
    append_line(header.dump());
  }
}

void RequestJournal::append_accepted(const ScenarioRequest& request) {
  if (!active()) return;
  obs::Json record = obs::Json::object();
  record.set("kind", "accepted");
  record.set("id", request.id);
  record.set("arrival", request.arrival);
  record.set("seed", request.seed);
  record.set("scenario", request.scenario_text);
  append_line(record.dump());
}

void RequestJournal::append_completed(std::uint64_t id, RequestOutcome outcome,
                                      std::uint64_t digest) {
  if (!active()) return;
  obs::Json record = obs::Json::object();
  record.set("kind", "completed");
  record.set("id", id);
  record.set("outcome", request_outcome_name(outcome));
  record.set("digest", digest_hex(digest));
  append_line(record.dump());
}

void RequestJournal::append_line(const std::string& line) {
  out_ << line << '\n';
  out_.flush();  // the ack barrier: acked means on its way to disk
}

}  // namespace cdsf::svc
