// The crash-safe request journal (schema cdsf.service_journal/1).
//
// The service's durability contract is ack-after-append: a request is
// ACCEPTED only after its record is written AND flushed, and a report is
// final only after its completed record is. The file is JSONL — one
// compact JSON object per line, a header object first:
//
//   {"schema":"cdsf.service_journal/1"}
//   {"kind":"accepted","id":3,"arrival":7.25,"seed":123,"scenario":"..."}
//   {"kind":"completed","id":3,"outcome":"completed","digest":"0x1a2b..."}
//
// A crash can tear the final append; recovery reuses the WAL salvage
// primitive (sim::salvage_object_stream) so a torn tail costs exactly the
// record being written — which, under ack-after-append, was never acked.
// Replay is then a set subtraction: accepted records without a matching
// completed record are the exactly-once replay set. Records are
// deduplicated by id (first wins), so recovery is idempotent across
// repeated crash/restart cycles. A byte-level truncation sweep
// (tests/test_service_journal.cpp) checks that recovery never throws and
// always yields a record-for-record prefix.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "svc/request.hpp"

namespace cdsf::svc {

/// `schema` of the journal header line.
inline constexpr const char* kServiceJournalSchema = "cdsf.service_journal/1";

/// FNV-1a 64-bit digest — the report fingerprint stored in completed
/// records, so replay tooling can detect a re-delivered report that does
/// not match the journaled one.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// One salvaged completed record.
struct JournalCompletion {
  std::uint64_t id = 0;
  RequestOutcome outcome = RequestOutcome::kCompleted;
  std::uint64_t digest = 0;
};

/// What recovery salvaged from a (possibly torn) journal.
struct RecoveredJournal {
  /// The header line survived and carried the expected schema. False on
  /// an empty or headerless file — salvage still proceeds.
  bool header_ok = false;
  /// Non-whitespace bytes remained after the last salvaged record — the
  /// tail was torn mid-append (and therefore never acked).
  bool torn = false;
  /// Accepted records in append order, deduplicated by id (first wins).
  std::vector<ScenarioRequest> accepted;
  /// Completed records, deduplicated by id (first wins).
  std::vector<JournalCompletion> completed;

  /// The exactly-once replay set: accepted requests with no completed
  /// record, in append order, with `replayed` set so the restarted
  /// service does not journal them again.
  [[nodiscard]] std::vector<ScenarioRequest> unfinished() const;
};

/// Salvages a journal from raw text. Never throws: any byte prefix of a
/// valid journal yields the records that survived whole, and nothing
/// else.
[[nodiscard]] RecoveredJournal recover_journal_text(std::string_view text);

/// Reads `path` and delegates to recover_journal_text. A missing file is
/// a fresh journal (empty recovery, header_ok == false), not an error;
/// any other read failure throws std::runtime_error.
[[nodiscard]] RecoveredJournal load_journal(const std::string& path);

/// The append side. Default-constructed inert (no journal configured);
/// open() arms it.
class RequestJournal {
 public:
  RequestJournal() = default;

  /// Opens `path` for appending. `truncate` starts a fresh journal
  /// (header rewritten); otherwise appends after the existing content,
  /// writing the header only when the file is new or empty. Throws
  /// std::runtime_error when the file cannot be opened.
  void open(const std::string& path, bool truncate);

  [[nodiscard]] bool active() const noexcept { return out_.is_open(); }

  /// Appends (and flushes — the ack barrier) an accepted record. No-op
  /// when inert.
  void append_accepted(const ScenarioRequest& request);

  /// Appends (and flushes) a completed record. No-op when inert.
  void append_completed(std::uint64_t id, RequestOutcome outcome, std::uint64_t digest);

 private:
  void append_line(const std::string& line);
  std::ofstream out_;
};

}  // namespace cdsf::svc
