#include "svc/request.hpp"

#include <cmath>
#include <stdexcept>

#include "cdsf/scenario_io.hpp"
#include "util/rng.hpp"

namespace cdsf::svc {

const char* request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kNotArrived:
      return "not_arrived";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kUnfinished:
      return "unfinished";
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kPoisoned:
      return "poisoned";
  }
  return "unknown";
}

RequestOutcome request_outcome_from_name(const std::string& name) {
  if (name == "not_arrived") return RequestOutcome::kNotArrived;
  if (name == "rejected") return RequestOutcome::kRejected;
  if (name == "unfinished") return RequestOutcome::kUnfinished;
  if (name == "completed") return RequestOutcome::kCompleted;
  if (name == "failed") return RequestOutcome::kFailed;
  if (name == "poisoned") return RequestOutcome::kPoisoned;
  throw std::invalid_argument("request_outcome_from_name: unknown outcome '" + name + "'");
}

std::vector<ScenarioRequest> make_scripted_stream(const StreamConfig& config) {
  if (config.requests == 0) {
    throw std::invalid_argument("make_scripted_stream: requests must be >= 1");
  }
  if (!(config.mean_interarrival > 0.0)) {
    throw std::invalid_argument("make_scripted_stream: mean_interarrival must be > 0");
  }
  if (config.poison_fraction < 0.0 || config.poison_fraction > 1.0 ||
      config.deadline_jitter < 0.0 || config.deadline_jitter > 1.0) {
    throw std::invalid_argument("make_scripted_stream: fractions must be in [0, 1]");
  }
  const core::Scenario base = core::parse_scenario_text(core::paper_scenario_text());
  const util::SeedSequence seeds(config.seed);
  std::vector<ScenarioRequest> stream;
  stream.reserve(config.requests);
  double arrival = 0.0;
  for (std::size_t i = 0; i < config.requests; ++i) {
    util::RngStream rng = seeds.stream(i);
    arrival += -config.mean_interarrival * std::log1p(-rng.uniform01());
    ScenarioRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.arrival = arrival;
    request.seed = seeds.child(0x5EED0000ULL + i);
    if (rng.uniform01() < config.poison_fraction) {
      // Poison: a request body no parser accepts — the service only finds
      // out when it tries, which is the point of the quarantine machinery.
      request.scenario_text = "!! poison request " + std::to_string(request.id) + " !!";
    } else {
      core::Scenario scenario = base;
      scenario.deadline *= 1.0 + config.deadline_jitter * (2.0 * rng.uniform01() - 1.0);
      request.scenario_text = core::scenario_to_text(scenario);
    }
    stream.push_back(std::move(request));
  }
  return stream;
}

}  // namespace cdsf::svc
