// Scenario requests: the unit of work the scheduling service accepts.
//
// A request carries a scenario file (the same INI dialect `cdsf scenario
// --file` reads) plus a solve seed and a virtual arrival time. The
// scripted stream generator below replaces a network frontend: it derives
// a deterministic request sequence (seeded exponential arrivals, per-
// request deadline jitter, an optional fraction of poison requests whose
// scenario text does not parse) from one master seed, so every service
// run — tests, chaos campaigns, the `cdsf serve` subcommand — is
// reproducible from a single 64-bit value and never touches a wall clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cdsf::svc {

/// One scenario request. `id` is the client-assigned identity the
/// journal, replay, and exactly-once accounting key on.
struct ScenarioRequest {
  std::uint64_t id = 0;
  /// Virtual arrival time (service seconds).
  double arrival = 0.0;
  /// Scenario file text (core::parse_scenario_text dialect). A request
  /// whose text does not parse is a POISON request: it is admitted (the
  /// service cannot know before trying), strikes out, and is quarantined.
  std::string scenario_text;
  /// Solve seed (Stage II replications).
  std::uint64_t seed = 1;
  /// True when this request was recovered from the journal and re-entered
  /// on restart — it is NOT re-journaled (its accepted record survives).
  bool replayed = false;
};

/// Terminal disposition of a request, as reported by one service run.
enum class RequestOutcome : std::uint8_t {
  /// The run ended (crash) before this request's arrival was processed.
  kNotArrived,
  /// Refused at arrival by the admission policy (or the drain gate).
  kRejected,
  /// Accepted and journaled, but the run crashed before a terminal
  /// outcome — recovery replays it exactly once.
  kUnfinished,
  /// Solved; the report was delivered.
  kCompleted,
  /// The solve threw (invalid scenario, cancellation); an error report
  /// was delivered.
  kFailed,
  /// Struck out (threw or timed out `poison_strikes` times) and was
  /// quarantined; an error report was delivered.
  kPoisoned,
};

/// Stable lowercase identifier ("not_arrived", "rejected", "unfinished",
/// "completed", "failed", "poisoned") — used by the journal's completed
/// records and the service report.
[[nodiscard]] const char* request_outcome_name(RequestOutcome outcome);

/// Inverse of request_outcome_name. Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] RequestOutcome request_outcome_from_name(const std::string& name);

/// True for outcomes that delivered a report (completed/failed/poisoned)
/// — the exactly-once set.
[[nodiscard]] constexpr bool outcome_delivered(RequestOutcome outcome) noexcept {
  return outcome == RequestOutcome::kCompleted || outcome == RequestOutcome::kFailed ||
         outcome == RequestOutcome::kPoisoned;
}

/// Scripted deterministic request stream.
struct StreamConfig {
  std::size_t requests = 12;
  /// Mean of the exponential interarrival draw (virtual seconds).
  double mean_interarrival = 4.0;
  std::uint64_t seed = 1;
  /// Fraction of requests whose scenario text is deliberately malformed
  /// (drawn per request from the stream RNG).
  double poison_fraction = 0.0;
  /// Relative deadline perturbation: each healthy request's deadline is
  /// scaled by a factor in [1 - jitter, 1 + jitter].
  double deadline_jitter = 0.2;
};

/// Generates the stream: ids 1..requests in arrival order, seeded
/// exponential arrivals, scenario texts derived from the paper example
/// with per-request deadline jitter, per-request solve seeds fanned out
/// from `seed`. Throws std::invalid_argument on requests == 0, a
/// non-positive mean, or fractions outside [0, 1].
[[nodiscard]] std::vector<ScenarioRequest> make_scripted_stream(const StreamConfig& config);

}  // namespace cdsf::svc
