#include "svc/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "cdsf/scenario_io.hpp"
#include "cdsf/solve.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "svc/virtual_time.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cdsf::svc {

namespace {

std::string digest_hex(std::uint64_t digest) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

enum class EventKind : std::uint8_t { kArrival, kAttemptEnd, kHedgeTimer };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // push order: the deterministic tiebreak
  EventKind kind = EventKind::kArrival;
  std::uint64_t payload = 0;  // request index (arrival/hedge) or token (end)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct QueuedAttempt {
  std::size_t request = 0;
  std::size_t attempt = 0;
};

struct Shard {
  bool busy = false;
  std::deque<QueuedAttempt> queue;
};

struct RunningAttempt {
  std::size_t request = 0;
  std::size_t attempt = 0;
  std::size_t shard = 0;
  double started = 0.0;
  bool will_timeout = false;
  bool cancelled = false;
  bool finished = false;
};

/// Per-request Phase A state (index-aligned with the input stream).
struct Live {
  bool poison_parse = false;
  std::string parse_error;
  std::size_t strikes = 0;
  std::size_t attempts_enqueued = 0;
  std::size_t hedge_attempt = 0;  // attempt index of the hedge, 0 = none
  bool hedge_launched = false;
  bool done = false;
  std::vector<std::uint64_t> active_tokens;  // running attempts
};

/// Phase A: the serial virtual-time event loop (see service.hpp).
class EventLoop {
 public:
  EventLoop(const ServiceConfig& config, std::vector<ScenarioRequest>& inputs,
            ServiceRunResult& result, RequestJournal& journal, obs::FlightRecorder& flight)
      : config_(config),
        inputs_(inputs),
        result_(result),
        journal_(journal),
        flight_(flight),
        seeds_(config.seed),
        lives_(inputs.size()),
        shards_(config.shards) {}

  /// Runs to drain or crash; returns the delivery order (request indices).
  std::vector<std::size_t> run() {
    std::vector<std::size_t> order(inputs_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (inputs_[a].arrival != inputs_[b].arrival) {
        return inputs_[a].arrival < inputs_[b].arrival;
      }
      return inputs_[a].id < inputs_[b].id;
    });
    for (const std::size_t index : order) {
      push_event(inputs_[index].arrival, EventKind::kArrival, index);
    }
    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      if (config_.crash_at >= 0.0 && event.time > config_.crash_at) {
        result_.crashed = true;
        result_.crash_time = config_.crash_at;
        break;
      }
      clock_.advance_to(event.time);
      switch (event.kind) {
        case EventKind::kArrival:
          on_arrival(static_cast<std::size_t>(event.payload), event.time);
          break;
        case EventKind::kAttemptEnd:
          on_attempt_end(event.payload, event.time);
          break;
        case EventKind::kHedgeTimer:
          on_hedge_timer(static_cast<std::size_t>(event.payload), event.time);
          break;
      }
    }
    if (!result_.crashed) {
      result_.drained = true;
      result_.drain_time = clock_.now();
      flight_.record(obs::FlightEventKind::kDrainComplete, clock_.now(),
                     obs::kFlightMasterTrack, static_cast<std::int64_t>(delivery_.size()), 0);
    }
    return delivery_;
  }

 private:
  void push_event(double time, EventKind kind, std::uint64_t payload) {
    events_.push(Event{time, next_seq_++, kind, payload});
  }

  void on_arrival(std::size_t index, double t) {
    const ScenarioRequest& request = inputs_[index];
    RequestRecord& record = result_.requests[index];
    ++result_.admission.arrivals;
    if (config_.admission.policy == core::AdmissionPolicy::kBoundedQueue &&
        total_queued_ >= config_.admission.queue_capacity) {
      ++result_.admission.rejected;
      record.outcome = RequestOutcome::kRejected;
      record.delivered_at = t;
      flight_.record(obs::FlightEventKind::kAdmissionRejected, t, obs::kFlightMasterTrack,
                     static_cast<std::int64_t>(request.id), 0);
      return;
    }
    ++result_.admission.admitted;
    record.outcome = RequestOutcome::kUnfinished;
    Live& live = lives_[index];
    try {
      (void)core::parse_scenario_text(request.scenario_text);
    } catch (const std::exception& error) {
      // Poison screening: classify serially here so the strike/quarantine
      // dynamics stay inside the deterministic loop.
      live.poison_parse = true;
      live.parse_error = error.what();
    }
    if (request.replayed) {
      ++result_.replayed;
      record.replayed = true;
    } else {
      // Ack-after-append: the accepted record is flushed before the id
      // enters the acked list — a crash between the two re-runs the
      // request (exactly once), never loses it.
      journal_.append_accepted(request);
      result_.acked.push_back(request.id);
    }
    flight_.record(obs::FlightEventKind::kRequestAdmitted, t, obs::kFlightMasterTrack,
                   static_cast<std::int64_t>(request.id), 0);
    const std::size_t target = pick_shard(shards_.size());  // no exclusion
    if (shards_[target].busy || !shards_[target].queue.empty()) ++result_.admission.queued;
    enqueue_attempt(index, target, t);
  }

  /// Least-loaded shard (queue + running), excluding `exclude` when it is
  /// a valid index; ties resolve to the lowest index.
  std::size_t pick_shard(std::size_t exclude) const {
    std::size_t best = shards_.size();
    std::size_t best_load = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (s == exclude) continue;
      const std::size_t load = shards_[s].queue.size() + (shards_[s].busy ? 1 : 0);
      if (best == shards_.size() || load < best_load) {
        best = s;
        best_load = load;
      }
    }
    return best;
  }

  void enqueue_attempt(std::size_t index, std::size_t shard, double t) {
    Live& live = lives_[index];
    shards_[shard].queue.push_back(QueuedAttempt{index, live.attempts_enqueued++});
    ++total_queued_;
    result_.admission.peak_queue_depth =
        std::max<std::uint64_t>(result_.admission.peak_queue_depth, total_queued_);
    dispatch(shard, t);
  }

  void dispatch(std::size_t s, double t) {
    Shard& shard = shards_[s];
    while (!shard.busy && !shard.queue.empty()) {
      const QueuedAttempt next = shard.queue.front();
      shard.queue.pop_front();
      --total_queued_;
      Live& live = lives_[next.request];
      if (live.done) continue;  // hedge loser or quarantined while queued
      RequestRecord& record = result_.requests[next.request];
      ++record.attempts;
      if (live.poison_parse) {
        // The "solve" throws at the first boundary: a zero-duration
        // strike; the shard stays free for the next queued attempt.
        strike(next.request, t, s, "scenario parse error: " + live.parse_error);
        continue;
      }
      const double duration = draw_duration(inputs_[next.request], next.attempt);
      const bool will_timeout = !(duration <= config_.watchdog_timeout);
      const double end = t + (will_timeout ? config_.watchdog_timeout : duration);
      const std::uint64_t token = static_cast<std::uint64_t>(running_.size()) + 1;
      running_.push_back(RunningAttempt{next.request, next.attempt, s, t, will_timeout});
      live.active_tokens.push_back(token);
      shard.busy = true;
      push_event(end, EventKind::kAttemptEnd, token);
      if (next.attempt == 0 && shards_.size() > 1) {
        push_event(t + hedge_delay(), EventKind::kHedgeTimer, next.request);
      }
    }
  }

  /// Virtual solve duration for (service seed, request id, attempt):
  /// lognormal around mean_solve_time, or +inf when the hang fault fires.
  double draw_duration(const ScenarioRequest& request, std::size_t attempt) {
    const util::SeedSequence per_request(seeds_.child(request.id));
    util::RngStream rng(per_request.child(attempt));
    const bool hang = rng.uniform01() < config_.hang_fraction;
    const double duration =
        config_.mean_solve_time * std::exp(config_.solve_time_cov * rng.normal());
    if (hang) return std::numeric_limits<double>::infinity();
    return duration;
  }

  /// p99-derived hedge delay (see ServiceConfig).
  double hedge_delay() const {
    double p99 = config_.mean_solve_time;
    if (durations_.size() >= config_.hedge_warmup) {
      std::vector<double> sorted = durations_;
      std::sort(sorted.begin(), sorted.end());
      p99 = sorted[static_cast<std::size_t>(
          static_cast<double>(sorted.size() - 1) * 0.99)];
    }
    return std::max(config_.hedge_min_delay, config_.hedge_multiplier * p99);
  }

  void on_attempt_end(std::uint64_t token, double t) {
    RunningAttempt& attempt = running_[token - 1];
    if (attempt.cancelled) return;  // its shard was freed at cancel time
    attempt.finished = true;
    shards_[attempt.shard].busy = false;
    Live& live = lives_[attempt.request];
    live.active_tokens.erase(
        std::remove(live.active_tokens.begin(), live.active_tokens.end(), token),
        live.active_tokens.end());
    if (!live.done) {
      if (attempt.will_timeout) {
        ++result_.timeouts;
        flight_.record(obs::FlightEventKind::kSolveTimeout, t,
                       static_cast<std::uint32_t>(attempt.shard),
                       static_cast<std::int64_t>(inputs_[attempt.request].id),
                       static_cast<std::int64_t>(attempt.attempt));
        strike(attempt.request, t, attempt.shard, "watchdog timeout");
      } else {
        deliver_success(attempt, t);
      }
    }
    dispatch(attempt.shard, t);
  }

  void strike(std::size_t index, double t, std::size_t shard, const std::string& reason) {
    Live& live = lives_[index];
    ++live.strikes;
    if (live.strikes >= config_.poison_strikes) {
      ++result_.poisoned;
      finish_request(index, t, shard, RequestOutcome::kPoisoned,
                     "quarantined after " + std::to_string(live.strikes) +
                         " strikes (last: " + reason + ")");
    } else {
      // Second chance on a DIFFERENT shard: a fail-slow or wedged shard
      // must not get to strike the same request out by itself.
      const std::size_t retry =
          shards_.size() > 1 ? pick_shard(shard) : shard;
      enqueue_attempt(index, retry, t);
    }
  }

  void deliver_success(const RunningAttempt& attempt, double t) {
    Live& live = lives_[attempt.request];
    RequestRecord& record = result_.requests[attempt.request];
    durations_.push_back(t - attempt.started);
    if (record.hedged && attempt.attempt == live.hedge_attempt) {
      record.hedge_won = true;
      ++result_.hedge_wins;
    }
    finish_request(attempt.request, t, attempt.shard, RequestOutcome::kCompleted, "");
  }

  void finish_request(std::size_t index, double t, std::size_t shard, RequestOutcome outcome,
                      std::string error) {
    Live& live = lives_[index];
    RequestRecord& record = result_.requests[index];
    live.done = true;
    record.outcome = outcome;
    record.delivered_at = t;
    record.shard = shard;
    record.error = std::move(error);
    delivery_.push_back(index);
    // First-finisher-wins: cancel every other in-flight attempt of this
    // request; cooperative cancellation frees the loser's shard at this
    // boundary (the token poll in the real solve).
    for (const std::uint64_t token : live.active_tokens) {
      RunningAttempt& other = running_[token - 1];
      if (other.finished || other.cancelled) continue;
      other.cancelled = true;
      shards_[other.shard].busy = false;
      dispatch(other.shard, t);
    }
    live.active_tokens.clear();
  }

  void on_hedge_timer(std::size_t index, double t) {
    Live& live = lives_[index];
    // Hedge only the clean path: the primary attempt still running, no
    // strikes (the retry path owns struck requests), not already hedged.
    if (live.done || live.hedge_launched || live.strikes > 0 ||
        live.active_tokens.size() != 1) {
      return;
    }
    const RunningAttempt& primary = running_[live.active_tokens.front() - 1];
    const std::size_t target = pick_shard(primary.shard);
    if (target >= shards_.size()) return;
    live.hedge_launched = true;
    live.hedge_attempt = live.attempts_enqueued;  // the index enqueue assigns
    result_.requests[index].hedged = true;
    ++result_.hedges;
    flight_.record(obs::FlightEventKind::kSolveHedged, t, static_cast<std::uint32_t>(target),
                   static_cast<std::int64_t>(inputs_[index].id),
                   static_cast<std::int64_t>(live.hedge_attempt));
    enqueue_attempt(index, target, t);
  }

  const ServiceConfig& config_;
  std::vector<ScenarioRequest>& inputs_;
  ServiceRunResult& result_;
  RequestJournal& journal_;
  obs::FlightRecorder& flight_;
  util::SeedSequence seeds_;
  VirtualClock clock_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<Live> lives_;
  std::vector<Shard> shards_;
  std::vector<RunningAttempt> running_;
  std::size_t total_queued_ = 0;
  std::vector<double> durations_;        // completed solve durations (p99 input)
  std::vector<std::size_t> delivery_;    // request indices in delivery order
};

/// The per-request report document delivered to the client (its bytes are
/// what the journal digest covers).
obs::Json request_report_json(const RequestRecord& record) {
  obs::Json doc = obs::Json::object();
  doc.set("id", record.id);
  doc.set("outcome", request_outcome_name(record.outcome));
  doc.set("attempts", record.attempts);
  doc.set("hedged", record.hedged);
  doc.set("delivered_at", record.delivered_at);
  if (record.outcome == RequestOutcome::kCompleted) {
    doc.set("rho1", record.rho1);
    doc.set("rho2", record.rho2);
    doc.set("feasible_space", record.feasible_space);
    doc.set("all_meet_deadline", record.all_meet_deadline);
  } else {
    doc.set("error", record.error);
  }
  return doc;
}

}  // namespace

void ServiceConfig::validate() const {
  if (shards == 0) throw std::invalid_argument("ServiceConfig: shards must be >= 1");
  if (solve_threads == 0) {
    throw std::invalid_argument("ServiceConfig: solve_threads must be >= 1");
  }
  if (replications == 0) {
    throw std::invalid_argument("ServiceConfig: replications must be >= 1");
  }
  if (!(watchdog_timeout > 0.0)) {
    throw std::invalid_argument("ServiceConfig: watchdog_timeout must be > 0");
  }
  if (!(hedge_multiplier > 0.0) || hedge_min_delay < 0.0) {
    throw std::invalid_argument("ServiceConfig: hedge knobs must be positive");
  }
  if (poison_strikes == 0) {
    throw std::invalid_argument("ServiceConfig: poison_strikes must be >= 1");
  }
  if (!(mean_solve_time > 0.0) || solve_time_cov < 0.0) {
    throw std::invalid_argument("ServiceConfig: solve-time model must be positive");
  }
  if (hang_fraction < 0.0 || hang_fraction > 1.0) {
    throw std::invalid_argument("ServiceConfig: hang_fraction must be in [0, 1]");
  }
  core::validate_admission(admission);
  if (admission.policy == core::AdmissionPolicy::kRho2Aware) {
    throw std::invalid_argument(
        "ServiceConfig: the service supports accept-all and bounded admission; "
        "rho2-aware admission needs the dynamic manager's probability machinery");
  }
  if (admission.shed_floor != 0.0 || admission.ladder) {
    throw std::invalid_argument(
        "ServiceConfig: queue shedding and the degradation ladder are dynamic-manager "
        "features; the service's bounded queue rejects at arrival only");
  }
}

SchedulingService::SchedulingService(ServiceConfig config) : config_(std::move(config)) {
  config_.validate();
}

ServiceRunResult SchedulingService::run(std::vector<ScenarioRequest> requests) {
  ServiceRunResult result;
  result.requests.resize(requests.size());
  {
    std::unordered_set<std::uint64_t> ids;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!ids.insert(requests[i].id).second) {
        throw std::invalid_argument("SchedulingService: duplicate request id " +
                                    std::to_string(requests[i].id));
      }
      result.requests[i].id = requests[i].id;
      result.requests[i].arrival = requests[i].arrival;
    }
  }
  RequestJournal journal;
  if (!config_.journal_path.empty()) {
    journal.open(config_.journal_path, config_.journal_truncate);
  }
  obs::FlightRecorder flight(config_.shards, 64, obs::flight_recording_enabled());

  // Phase A: the serial deterministic event loop.
  EventLoop loop(config_, requests, result, journal, flight);
  const std::vector<std::size_t> delivery = loop.run();

  // Phase B: real solves, delivered requests only, keyed by delivery
  // index — byte-identical across solve_threads (each index independent,
  // own Framework, fixed seed).
  std::vector<obs::Json> documents(delivery.size());
  util::parallel_for_index(delivery.size(), config_.solve_threads, [&](std::size_t i) {
    const std::size_t index = delivery[i];
    RequestRecord& record = result.requests[index];
    if (record.outcome == RequestOutcome::kCompleted) {
      try {
        const core::Scenario scenario = core::parse_scenario_text(requests[index].scenario_text);
        core::SolveOptions options;
        options.replications = config_.replications;
        options.seed = requests[index].seed;
        options.threads = 1;
        options.cancel = cancel_.flag();
        const core::SolveOutcome solved = core::solve_scenario(scenario, options);
        record.rho1 = solved.report.rho1;
        record.rho2 = solved.report.rho2;
        record.feasible_space = solved.feasible_space;
        record.all_meet_deadline =
            std::all_of(solved.scenario.per_case.begin(), solved.scenario.per_case.end(),
                        [](const core::StageTwoResult& c) { return c.all_meet_deadline; });
      } catch (const std::exception& error) {
        record.outcome = RequestOutcome::kFailed;
        record.error = error.what();
      }
    }
    obs::Json doc = request_report_json(record);
    record.digest = fnv1a64(doc.dump());
    documents[i] = std::move(doc);
  });

  // Deliver + journal the completions (ack order = delivery order).
  result.delivered_reports.reserve(delivery.size());
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    const RequestRecord& record = result.requests[delivery[i]];
    journal.append_completed(record.id, record.outcome, record.digest);
    result.delivered_reports.emplace_back(record.id, std::move(documents[i]));
  }
  result.delivered = delivery.size();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.add("cdsf.service.arrivals", static_cast<std::int64_t>(result.admission.arrivals));
  metrics.add("cdsf.service.admitted", static_cast<std::int64_t>(result.admission.admitted));
  metrics.add("cdsf.service.rejected", static_cast<std::int64_t>(result.admission.rejected));
  metrics.add("cdsf.service.delivered", static_cast<std::int64_t>(result.delivered));
  metrics.add("cdsf.service.hedges", static_cast<std::int64_t>(result.hedges));
  metrics.add("cdsf.service.timeouts", static_cast<std::int64_t>(result.timeouts));
  metrics.add("cdsf.service.poisoned", static_cast<std::int64_t>(result.poisoned));
  metrics.add("cdsf.service.replayed", static_cast<std::int64_t>(result.replayed));
  metrics.set_gauge("cdsf.service.peak_queue_depth",
                    static_cast<double>(result.admission.peak_queue_depth));

  result.report = service_report_json(result, config_);

  if (result.poisoned > 0 || result.crashed) {
    obs::FlightAnomaly anomaly;
    anomaly.kind = result.crashed ? "service_crash" : "quarantine_trip";
    anomaly.detail = result.crashed
                         ? "service crashed at t=" + std::to_string(result.crash_time)
                         : std::to_string(result.poisoned) + " request(s) quarantined";
    anomaly.time = result.crashed ? result.crash_time : result.drain_time;
    result.flight = obs::FlightSink::global().armed() ? flight.finish() : flight.finish_summary();
    (void)obs::FlightSink::global().maybe_dump(result.flight, anomaly);
  } else {
    result.flight = flight.finish_summary();
  }
  return result;
}

obs::Json service_report_json(const ServiceRunResult& result, const ServiceConfig& config) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", obs::kServiceReportSchema);
  obs::Json conf = obs::Json::object();
  conf.set("shards", config.shards);
  conf.set("replications", config.replications);
  conf.set("watchdog_timeout", config.watchdog_timeout);
  conf.set("hedge_multiplier", config.hedge_multiplier);
  conf.set("hedge_min_delay", config.hedge_min_delay);
  conf.set("hedge_warmup", config.hedge_warmup);
  conf.set("poison_strikes", config.poison_strikes);
  conf.set("seed", config.seed);
  conf.set("mean_solve_time", config.mean_solve_time);
  conf.set("solve_time_cov", config.solve_time_cov);
  conf.set("hang_fraction", config.hang_fraction);
  conf.set("crash_at", config.crash_at);
  conf.set("admission", core::admission_policy_name(config.admission.policy));
  conf.set("queue_capacity", config.admission.queue_capacity);
  doc.set("config", std::move(conf));

  obs::Json totals = obs::Json::object();
  totals.set("arrivals", result.admission.arrivals);
  totals.set("admitted", result.admission.admitted);
  totals.set("queued", result.admission.queued);
  totals.set("rejected", result.admission.rejected);
  totals.set("peak_queue_depth", result.admission.peak_queue_depth);
  totals.set("identity_holds", result.admission.identity_holds());
  totals.set("delivered", result.delivered);
  totals.set("acked", result.acked.size());
  totals.set("hedges", result.hedges);
  totals.set("hedge_wins", result.hedge_wins);
  totals.set("timeouts", result.timeouts);
  totals.set("poisoned", result.poisoned);
  totals.set("replayed", result.replayed);
  doc.set("totals", std::move(totals));

  obs::Json lifecycle = obs::Json::object();
  lifecycle.set("crashed", result.crashed);
  lifecycle.set("crash_time", result.crash_time);
  lifecycle.set("drained", result.drained);
  lifecycle.set("drain_time", result.drain_time);
  doc.set("lifecycle", std::move(lifecycle));

  obs::Json requests = obs::Json::array();
  for (const RequestRecord& record : result.requests) {
    obs::Json entry = obs::Json::object();
    entry.set("id", record.id);
    entry.set("arrival", record.arrival);
    entry.set("outcome", request_outcome_name(record.outcome));
    entry.set("attempts", record.attempts);
    entry.set("hedged", record.hedged);
    entry.set("hedge_won", record.hedge_won);
    entry.set("replayed", record.replayed);
    if (outcome_delivered(record.outcome)) {
      entry.set("shard", record.shard);
      entry.set("delivered_at", record.delivered_at);
      entry.set("digest", digest_hex(record.digest));
    }
    if (record.outcome == RequestOutcome::kCompleted) {
      entry.set("rho1", record.rho1);
      entry.set("rho2", record.rho2);
      entry.set("feasible_space", record.feasible_space);
      entry.set("all_meet_deadline", record.all_meet_deadline);
    } else if (!record.error.empty()) {
      entry.set("error", record.error);
    }
    requests.push_back(std::move(entry));
  }
  doc.set("requests", std::move(requests));
  return doc;
}

}  // namespace cdsf::svc
