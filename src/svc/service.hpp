// The crash-safe scheduling service.
//
// A persistent, deterministic daemon shape around the CDSF solve path
// (core::solve_scenario): scenario requests arrive on a virtual-time
// stream, are screened by an admission policy (reusing the PR 9
// core::AdmissionConfig machinery), journaled for crash safety
// (svc/journal.hpp), executed on a sharded solver pool with watchdog
// timeouts, hedged re-issues, and poison quarantine, and their reports
// delivered exactly once — across daemon crashes and restarts.
//
// Determinism is the load-bearing design decision. A run is TWO phases:
//
//   Phase A — a serial event loop on virtual time (svc/virtual_time.hpp).
//   Arrivals, admission, shard queueing, solve durations (drawn from a
//   per-(seed, id, attempt) RNG — an injected hang is an infinite draw),
//   watchdog firings, hedge launches, first-finisher-wins races, poison
//   strikes, the crash cutoff, and the drain all play out here, serially,
//   so the set and order of delivered reports is a pure function of
//   (stream, config). Cancellation of a hedge loser or a timed-out solve
//   is cooperative in the real system (util::CancelToken polled at the
//   RA-enumeration and Monte-Carlo boundaries — see
//   ra::RobustnessConfig::cancel, sim::SimConfig::cancel); the virtual
//   loop models it as taking effect at the boundary event.
//
//   Phase B — the real Stage I/II solves, but ONLY for requests Phase A
//   delivered, keyed by delivery index and fanned out with
//   util::parallel_for_index over `solve_threads`. Each index is an
//   independent solve with its own Framework (the Stage I evaluator is
//   not thread-safe) and a fixed seed, so reports are byte-identical
//   across ANY solve_threads value — the property the chaos axis checks.
//
// Crash safety: `crash_at` stops the event loop at a virtual instant.
// Admitted-but-unterminated requests stay accepted-only in the journal;
// load_journal(...).unfinished() is the exactly-once replay set a
// restarted service re-enters via run(). Completed records carry an
// FNV-1a digest of the delivered report bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdsf/admission.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "svc/journal.hpp"
#include "svc/request.hpp"
#include "util/cancel.hpp"

namespace cdsf::svc {

/// Service knobs. The defaults are what `cdsf serve` runs with.
struct ServiceConfig {
  /// Solver-pool shards. Each shard runs one solve at a time off a FIFO
  /// queue; hedged re-issues need >= 2.
  std::size_t shards = 2;
  /// Phase B fan-out (reports are byte-identical across any value).
  std::size_t solve_threads = 1;
  /// Stage II replications per solve (core::SolveOptions::replications).
  std::size_t replications = 11;
  /// Watchdog: virtual seconds an attempt may run before it is cancelled
  /// and counted as a strike.
  double watchdog_timeout = 60.0;
  /// Hedge delay = max(hedge_min_delay, hedge_multiplier * p99 of
  /// completed solve durations observed so far); before `hedge_warmup`
  /// samples exist the mean_solve_time stands in for the p99.
  double hedge_multiplier = 2.0;
  double hedge_min_delay = 5.0;
  std::size_t hedge_warmup = 8;
  /// Strikes (throws or watchdog timeouts) before a request is
  /// quarantined as poison.
  std::size_t poison_strikes = 2;
  /// Admission policy (PR 9 machinery). The service supports kAcceptAll
  /// and kBoundedQueue (capacity counts queued-not-running requests);
  /// kRho2Aware needs the dynamic manager's probability machinery and is
  /// rejected by validate().
  core::AdmissionConfig admission;
  /// Journal path; empty = no journal (in-memory service, still
  /// deterministic, no crash safety).
  std::string journal_path;
  /// Start a fresh journal (true) or append to an existing one for
  /// restart/replay (false).
  bool journal_truncate = true;
  /// Service seed: virtual solve durations and hang draws.
  std::uint64_t seed = 1;
  /// Virtual solve-duration model: lognormal with this median and shape.
  double mean_solve_time = 10.0;
  double solve_time_cov = 0.5;
  /// Chaos: probability an attempt hangs (infinite virtual duration, so
  /// only the watchdog ends it). Drawn per attempt from the service RNG.
  double hang_fraction = 0.0;
  /// Chaos: virtual instant the daemon dies. Events strictly after it
  /// never run. Negative = never.
  double crash_at = -1.0;

  /// Throws std::invalid_argument on contradictory knobs.
  void validate() const;
};

/// Final accounting of one request (see RequestOutcome).
struct RequestRecord {
  std::uint64_t id = 0;
  double arrival = 0.0;
  RequestOutcome outcome = RequestOutcome::kNotArrived;
  /// Virtual time the terminal outcome was reached; -1 when none was.
  double delivered_at = -1.0;
  /// Winning shard (delivered outcomes).
  std::size_t shard = 0;
  /// Attempts dispatched (primary + hedges + retries).
  std::size_t attempts = 0;
  bool hedged = false;
  /// The hedge attempt, not the primary, delivered the result.
  bool hedge_won = false;
  bool replayed = false;
  /// FNV-1a digest of the delivered report bytes (delivered outcomes).
  std::uint64_t digest = 0;
  /// Error detail for kFailed / kPoisoned.
  std::string error;
  /// Solve results (kCompleted only).
  double rho1 = 0.0;
  double rho2 = 0.0;
  std::size_t feasible_space = 0;
  bool all_meet_deadline = false;
};

/// Everything one run produced.
struct ServiceRunResult {
  /// One record per input request, in input order.
  std::vector<RequestRecord> requests;
  core::AdmissionStats admission;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t poisoned = 0;
  std::uint64_t replayed = 0;
  std::uint64_t delivered = 0;
  /// Ids whose accepted record was journaled and acked, in ack order.
  std::vector<std::uint64_t> acked;
  bool crashed = false;
  double crash_time = -1.0;
  bool drained = false;
  double drain_time = -1.0;
  /// The cdsf.service_report/1 document (deterministic bytes; excludes
  /// solve_threads and journal_path so runs differing only in those
  /// compare byte-identical).
  obs::Json report;
  /// Per-request delivered report documents, keyed by id (delivered
  /// outcomes only), in delivery order.
  std::vector<std::pair<std::uint64_t, obs::Json>> delivered_reports;
  /// Flight recording of the run (shard tracks + master track).
  obs::FlightRecord flight;
};

/// The service. One instance runs one stream; restart = a new instance
/// over the same journal path (journal_truncate = false) fed
/// load_journal(...).unfinished() + the not-yet-arrived tail.
class SchedulingService {
 public:
  /// Validates the config (ServiceConfig::validate).
  explicit SchedulingService(ServiceConfig config);

  /// Runs the stream to drain (or to crash_at). `requests` need not be
  /// sorted; replayed requests (replayed == true) are not re-journaled.
  /// Throws std::invalid_argument on duplicate request ids.
  [[nodiscard]] ServiceRunResult run(std::vector<ScenarioRequest> requests);

  /// The Phase B cancellation token: cancelling it makes every real
  /// solve unwind (util::Cancelled) at its next RA or Monte-Carlo
  /// boundary and deliver an error report instead.
  [[nodiscard]] util::CancelToken& cancel_token() noexcept { return cancel_; }

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  ServiceConfig config_;
  util::CancelToken cancel_;
};

/// Builds the cdsf.service_report/1 document (what run() stores in
/// ServiceRunResult::report).
[[nodiscard]] obs::Json service_report_json(const ServiceRunResult& result,
                                            const ServiceConfig& config);

}  // namespace cdsf::svc
