// The service's ONLY time source.
//
// The scheduling service (svc/service.hpp) is a daemon-shaped component —
// arrivals, watchdog deadlines, hedge timers — but it must stay
// deterministic: the same scripted request stream and seed must produce
// byte-identical reports on every run, under any thread count, under
// sanitizers. Wall clocks destroy that, so svc/ runs entirely on VIRTUAL
// time: a monotone double of "service seconds" advanced by the event
// loop, never by the host. A cdsf_lint rule (SvcWallClockRule) enforces
// that no file under src/svc/ other than this one mentions a wall-clock
// primitive — if the service ever grows a real-time mode, the bridge
// lives here and nowhere else.
#pragma once

#include <stdexcept>

namespace cdsf::svc {

/// Monotone virtual clock. Starts at 0; only the event loop advances it.
class VirtualClock {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Advances to `t`. Throws std::logic_error on a backwards step — an
  /// out-of-order event is a bug in the loop, not a condition to absorb.
  void advance_to(double t) {
    if (t < now_) throw std::logic_error("VirtualClock: time moved backwards");
    now_ = t;
  }

 private:
  double now_ = 0.0;
};

}  // namespace cdsf::svc
