#include "sysmodel/availability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cdsf::sysmodel {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}

namespace detail {

double next_epoch_boundary(double t, double epoch_length) {
  const auto epoch = static_cast<std::size_t>(t / epoch_length);
  const double boundary = (static_cast<double>(epoch) + 1.0) * epoch_length;
  // When epoch_length is not exactly representable, t can land exactly on a
  // boundary whose division rounds back into the previous epoch; the naive
  // formula then returns t itself and finish_time()/work_delivered() — which
  // advance with `t = next_change_after(t)` — spin forever. Step one more
  // epoch so the result is always strictly past t.
  return boundary > t ? boundary : boundary + epoch_length;
}

}  // namespace detail

void validate_availability_pmf(const pmf::Pmf& law) {
  for (const pmf::Pulse& pulse : law.pulses()) {
    if (!(pulse.value > 0.0 && pulse.value <= 1.0)) {
      throw std::invalid_argument("availability PMF pulse must be in (0, 1], got " +
                                  std::to_string(pulse.value));
    }
  }
}

AvailabilitySpec::AvailabilitySpec(std::string name, std::vector<pmf::Pmf> per_type)
    : name_(std::move(name)), per_type_(std::move(per_type)) {
  if (per_type_.empty()) {
    throw std::invalid_argument("AvailabilitySpec: at least one processor type required");
  }
  for (const pmf::Pmf& law : per_type_) validate_availability_pmf(law);
}

double AvailabilitySpec::weighted_system_availability(const Platform& platform) const {
  if (platform.type_count() != type_count()) {
    throw std::invalid_argument(
        "weighted_system_availability: platform type count mismatch");
  }
  double weighted = 0.0;
  for (std::size_t j = 0; j < type_count(); ++j) {
    weighted += static_cast<double>(platform.processors_of_type(j)) * expected(j);
  }
  return weighted / static_cast<double>(platform.total_processors());
}

double availability_decrease(const AvailabilitySpec& reference, const AvailabilitySpec& actual,
                             const Platform& platform) {
  const double ref = reference.weighted_system_availability(platform);
  const double act = actual.weighted_system_availability(platform);
  return 1.0 - act / ref;
}

// ---------------------------------------------------------- processes ----

double AvailabilityProcess::finish_time(double start, double work) {
  if (work < 0.0) throw std::invalid_argument("finish_time: work must be >= 0");
  double t = start;
  double remaining = work;
  while (remaining > 0.0) {
    const double a = availability_at(t);
    const double boundary = next_change_after(t);
    if (a <= 0.0) {
      // Outage (CrashingAvailability): no progress. A permanent outage
      // never completes the work.
      if (!std::isfinite(boundary)) return kInfinity;
      t = boundary;
      continue;
    }
    const double needed = remaining / a;
    if (t + needed <= boundary) return t + needed;
    remaining -= a * (boundary - t);
    t = boundary;
  }
  return t;
}

double AvailabilityProcess::work_delivered(double start, double end) {
  if (end < start) throw std::invalid_argument("work_delivered: end must be >= start");
  double t = start;
  double work = 0.0;
  while (t < end) {
    const double a = availability_at(t);
    const double boundary = std::min(next_change_after(t), end);
    work += a * (boundary - t);
    t = boundary;
  }
  return work;
}

ConstantAvailability::ConstantAvailability(double availability) : availability_(availability) {
  if (!(availability > 0.0 && availability <= 1.0)) {
    throw std::invalid_argument("ConstantAvailability: availability must be in (0, 1]");
  }
}

double ConstantAvailability::next_change_after(double) { return kInfinity; }

IidEpochAvailability::IidEpochAvailability(pmf::Pmf law, double epoch_length, std::uint64_t seed)
    : law_(std::move(law)), epoch_length_(epoch_length), rng_(seed) {
  if (!(epoch_length > 0.0)) {
    throw std::invalid_argument("IidEpochAvailability: epoch_length must be > 0");
  }
  validate_availability_pmf(law_);
}

double IidEpochAvailability::value_for_epoch(std::size_t epoch) {
  while (cache_.size() <= epoch) cache_.push_back(law_.sample_with(rng_.uniform01()));
  return cache_[epoch];
}

double IidEpochAvailability::availability_at(double t) {
  if (t < 0.0) throw std::invalid_argument("availability_at: t must be >= 0");
  return value_for_epoch(static_cast<std::size_t>(t / epoch_length_));
}

double IidEpochAvailability::next_change_after(double t) {
  return detail::next_epoch_boundary(t, epoch_length_);
}

MarkovEpochAvailability::MarkovEpochAvailability(pmf::Pmf law, double epoch_length,
                                                 double persistence, std::uint64_t seed)
    : law_(std::move(law)),
      epoch_length_(epoch_length),
      persistence_(persistence),
      rng_(seed) {
  if (!(epoch_length > 0.0)) {
    throw std::invalid_argument("MarkovEpochAvailability: epoch_length must be > 0");
  }
  if (!(persistence >= 0.0 && persistence < 1.0)) {
    throw std::invalid_argument("MarkovEpochAvailability: persistence must be in [0, 1)");
  }
  validate_availability_pmf(law_);
}

void MarkovEpochAvailability::extend_cache(std::size_t epoch) {
  while (cache_.size() <= epoch) {
    if (cache_.empty() || rng_.uniform01() >= persistence_) {
      cache_.push_back(law_.sample_with(rng_.uniform01()));
    } else {
      cache_.push_back(cache_.back());
    }
  }
}

double MarkovEpochAvailability::availability_at(double t) {
  if (t < 0.0) throw std::invalid_argument("availability_at: t must be >= 0");
  const auto epoch = static_cast<std::size_t>(t / epoch_length_);
  extend_cache(epoch);
  return cache_[epoch];
}

double MarkovEpochAvailability::next_change_after(double t) {
  return detail::next_epoch_boundary(t, epoch_length_);
}

TraceAvailability::TraceAvailability(std::vector<double> time_points, std::vector<double> values)
    : time_points_(std::move(time_points)), values_(std::move(values)) {
  if (time_points_.empty() || time_points_.size() != values_.size()) {
    throw std::invalid_argument("TraceAvailability: time_points and values must match and be non-empty");
  }
  if (time_points_.front() != 0.0) {
    throw std::invalid_argument("TraceAvailability: trace must start at time 0");
  }
  for (std::size_t i = 1; i < time_points_.size(); ++i) {
    if (!(time_points_[i] > time_points_[i - 1])) {
      throw std::invalid_argument("TraceAvailability: times must be strictly increasing");
    }
  }
  for (double v : values_) {
    if (!(v > 0.0 && v <= 1.0)) {
      throw std::invalid_argument("TraceAvailability: values must be in (0, 1]");
    }
  }
}

double TraceAvailability::availability_at(double t) {
  if (t < 0.0) throw std::invalid_argument("availability_at: t must be >= 0");
  // Last step whose start time <= t.
  std::size_t lo = 0;
  std::size_t hi = time_points_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (time_points_[mid] <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return values_[lo];
}

double TraceAvailability::next_change_after(double t) {
  for (double tp : time_points_) {
    if (tp > t) return tp;
  }
  return kInfinity;
}

DiurnalAvailability::DiurnalAvailability(double mean, double amplitude, double period,
                                         double phase, std::size_t steps_per_period)
    : mean_(mean), amplitude_(amplitude), period_(period), phase_(phase),
      steps_(steps_per_period) {
  if (!(period > 0.0)) throw std::invalid_argument("DiurnalAvailability: period must be > 0");
  if (steps_per_period < 2) {
    throw std::invalid_argument("DiurnalAvailability: steps_per_period must be >= 2");
  }
  if (amplitude < 0.0) {
    throw std::invalid_argument("DiurnalAvailability: amplitude must be >= 0");
  }
  if (!(mean - amplitude > 0.0) || mean + amplitude > 1.0 + 1e-9) {
    throw std::invalid_argument(
        "DiurnalAvailability: mean +/- amplitude must stay within (0, 1]");
  }
}

double DiurnalAvailability::availability_at(double t) {
  if (t < 0.0) throw std::invalid_argument("availability_at: t must be >= 0");
  // Quantize to the containing step's midpoint so the function is piecewise
  // constant (finish_time integrates it exactly).
  const double step_length = period_ / static_cast<double>(steps_);
  const double step_mid =
      (std::floor(t / step_length) + 0.5) * step_length;
  constexpr double kTwoPi = 6.283185307179586;
  const double value =
      mean_ - amplitude_ * std::sin(kTwoPi * (step_mid + phase_) / period_);
  return std::clamp(value, 1e-9, 1.0);
}

double DiurnalAvailability::next_change_after(double t) {
  const double step_length = period_ / static_cast<double>(steps_);
  return detail::next_epoch_boundary(t, step_length);
}

FailingAvailability::FailingAvailability(std::unique_ptr<AvailabilityProcess> inner,
                                         double failure_time, double residual)
    : inner_(std::move(inner)), failure_time_(failure_time), residual_(residual) {
  if (inner_ == nullptr) throw std::invalid_argument("FailingAvailability: inner is null");
  if (failure_time < 0.0) {
    throw std::invalid_argument("FailingAvailability: failure_time must be >= 0");
  }
  if (!(residual > 0.0 && residual <= 1.0)) {
    throw std::invalid_argument("FailingAvailability: residual must be in (0, 1]");
  }
}

double FailingAvailability::availability_at(double t) {
  if (t >= failure_time_) return residual_;
  return inner_->availability_at(t);
}

double FailingAvailability::next_change_after(double t) {
  if (t >= failure_time_) return kInfinity;
  return std::min(inner_->next_change_after(t), failure_time_);
}

CrashingAvailability::CrashingAvailability(std::unique_ptr<AvailabilityProcess> inner,
                                           double crash_time, double recovery_time)
    : inner_(std::move(inner)), crash_time_(crash_time), recovery_time_(recovery_time) {
  if (inner_ == nullptr) throw std::invalid_argument("CrashingAvailability: inner is null");
  if (crash_time < 0.0) {
    throw std::invalid_argument("CrashingAvailability: crash_time must be >= 0");
  }
  if (!(recovery_time > crash_time)) {
    throw std::invalid_argument("CrashingAvailability: recovery_time must be > crash_time");
  }
}

double CrashingAvailability::availability_at(double t) {
  if (is_down(t)) return 0.0;
  return inner_->availability_at(t);
}

double CrashingAvailability::next_change_after(double t) {
  if (t < crash_time_) return std::min(inner_->next_change_after(t), crash_time_);
  if (is_down(t)) return recovery_time_;
  return inner_->next_change_after(t);
}

BurstWindows::BurstWindows(double mean_gap, double duration, std::uint64_t seed)
    : mean_gap_(mean_gap), duration_(duration), start_(0.0), rng_(seed) {
  if (!(mean_gap > 0.0) || !(duration > 0.0)) {
    throw std::invalid_argument("BurstWindows: mean_gap and duration must be > 0");
  }
  start_ = -mean_gap_ * std::log1p(-rng_.uniform01());
}

bool BurstWindows::covers(double t) {
  while (t >= start_ + duration_) {
    start_ += duration_ - mean_gap_ * std::log1p(-rng_.uniform01());
  }
  return t >= start_;
}

}  // namespace cdsf::sysmodel
