// System availability modeling.
//
// Stage I consumes availability as a PMF per processor type (Â in the
// paper). Stage II's simulator consumes availability as a *process* — a
// piecewise-constant function of time per processor, whose marginal law is
// that PMF. Both views live here.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "pmf/pmf.hpp"
#include "sysmodel/platform.hpp"
#include "util/rng.hpp"

namespace cdsf::sysmodel {

/// Availability PMFs for every processor type of a platform (one case of
/// Table I). Pulse values are fractions in (0, 1].
class AvailabilitySpec {
 public:
  /// Throws std::invalid_argument if `per_type` is empty or any pulse lies
  /// outside (0, 1].
  AvailabilitySpec(std::string name, std::vector<pmf::Pmf> per_type);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t type_count() const noexcept { return per_type_.size(); }
  [[nodiscard]] const pmf::Pmf& of_type(std::size_t j) const { return per_type_.at(j); }

  /// E[a_j] — expected availability of processor type j.
  [[nodiscard]] double expected(std::size_t j) const { return per_type_.at(j).expectation(); }

  /// Eq. (1): weighted system availability
  ///     sum_j count_j * E[a_j] / total_processors.
  /// Throws std::invalid_argument if the platform's type count disagrees.
  [[nodiscard]] double weighted_system_availability(const Platform& platform) const;

  friend bool operator==(const AvailabilitySpec&, const AvailabilitySpec&) = default;

 private:
  std::string name_;
  std::vector<pmf::Pmf> per_type_;
};

/// Percentage decrease in weighted availability of `actual` relative to
/// `reference` (the bracketed values of Table I):
///     1 - E[A_actual] / E[A_reference].
[[nodiscard]] double availability_decrease(const AvailabilitySpec& reference,
                                           const AvailabilitySpec& actual,
                                           const Platform& platform);

// ---------------------------------------------------------------------------
// Availability processes (Stage II runtime view)
// ---------------------------------------------------------------------------

namespace detail {
/// First epoch boundary strictly after t for epochs of length `epoch_length`.
/// Robust to t landing exactly on a boundary whose division rounds back into
/// the previous epoch — the naive (floor(t/e) + 1) * e then returns t itself
/// and AvailabilityProcess::finish_time(), which advances with
/// `t = next_change_after(t)`, never terminates.
[[nodiscard]] double next_epoch_boundary(double t, double epoch_length);
}  // namespace detail

/// A piecewise-constant availability-vs-time function for ONE processor.
/// Implementations must guarantee availability_at(t) in (0, 1] — with one
/// deliberate exception: CrashingAvailability returns 0 during an outage,
/// which only the fault-tolerant executors opt into — and strictly
/// increasing change points.
class AvailabilityProcess {
 public:
  virtual ~AvailabilityProcess() = default;

  /// Availability at time t (t >= 0).
  [[nodiscard]] virtual double availability_at(double t) = 0;

  /// Time of the next change point strictly after t; +infinity if the
  /// process is constant from t on.
  [[nodiscard]] virtual double next_change_after(double t) = 0;

  /// Wall-clock completion time of `work` dedicated-processor time units
  /// started at `start`: the t solving the work integral
  ///     integral_start^t availability(tau) dtau = work.
  /// Exact for the piecewise-constant processes here. Zero-availability
  /// stretches deliver no work; if the process never resumes (a permanent
  /// crash), the result is +infinity — the chunk never completes.
  [[nodiscard]] double finish_time(double start, double work);

  /// Dedicated-processor work delivered in [start, end].
  [[nodiscard]] double work_delivered(double start, double end);
};

/// Always-constant availability.
class ConstantAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument unless availability in (0, 1].
  explicit ConstantAvailability(double availability);

  [[nodiscard]] double availability_at(double) override { return availability_; }
  [[nodiscard]] double next_change_after(double) override;

 private:
  double availability_;
};

/// IID epoch model (paper-faithful default): availability is redrawn from
/// the case PMF every `epoch_length` time units, independently per epoch.
/// Deterministic given the seed; epochs are generated lazily and cached so
/// queries may move forward and backward in time.
class IidEpochAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument if epoch_length <= 0 or the PMF has a
  /// pulse outside (0, 1].
  IidEpochAvailability(pmf::Pmf law, double epoch_length, std::uint64_t seed);

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

 private:
  double value_for_epoch(std::size_t epoch);

  pmf::Pmf law_;
  double epoch_length_;
  util::RngStream rng_;
  std::vector<double> cache_;
};

/// Two-parameter Markov epoch model: with probability `persistence` the
/// availability of the previous epoch carries over; otherwise it is redrawn
/// from the PMF. persistence = 0 reduces to the IID model. Captures the
/// temporal correlation of real machine load.
class MarkovEpochAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument if epoch_length <= 0, persistence not in
  /// [0, 1), or the PMF has a pulse outside (0, 1].
  MarkovEpochAvailability(pmf::Pmf law, double epoch_length, double persistence,
                          std::uint64_t seed);

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

 private:
  void extend_cache(std::size_t epoch);

  pmf::Pmf law_;
  double epoch_length_;
  double persistence_;
  util::RngStream rng_;
  std::vector<double> cache_;
};

/// Explicit trace: availability steps at given times. Step i holds from
/// time_points[i] (inclusive) to time_points[i+1]; the last value holds
/// forever. time_points[0] must be 0 and times strictly increasing.
class TraceAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument on malformed traces or values outside (0, 1].
  TraceAvailability(std::vector<double> time_points, std::vector<double> values);

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

 private:
  std::vector<double> time_points_;
  std::vector<double> values_;
};

/// Diurnal availability: a deterministic load cycle
///     a(t) = mean - amplitude * sin(2 pi (t + phase) / period),
/// quantized into `steps_per_period` piecewise-constant steps (so the work
/// integral stays exact) and clamped into (0, 1]. Models the day/night load
/// pattern of shared clusters: the drift is PREDICTABLE but WF's frozen
/// t = 0 weights still go stale against it — the adaptive techniques'
/// showcase regime.
class DiurnalAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument unless period > 0, steps_per_period >= 2,
  /// amplitude >= 0, and the clamped range stays within (0, 1] (i.e.
  /// mean - amplitude > 0 and mean + amplitude <= 1 + 1e-9).
  DiurnalAvailability(double mean, double amplitude, double period, double phase = 0.0,
                      std::size_t steps_per_period = 32);

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double period() const noexcept { return period_; }

 private:
  double mean_;
  double amplitude_;
  double period_;
  double phase_;
  std::size_t steps_;
};

/// Decorator that injects a (partial) processor failure: the inner process
/// applies until `failure_time`, after which availability drops to
/// `residual` forever. A residual of ~1e-3 models a machine that is
/// effectively lost but whose already-dispatched chunk still (very slowly)
/// completes — the paper's non-preemptive execution model has no chunk
/// reassignment, so a zero residual would deadlock any schedule, exactly
/// the hazard the failure-injection tests probe.
class FailingAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument if inner is null, failure_time < 0, or
  /// residual outside (0, 1].
  FailingAvailability(std::unique_ptr<AvailabilityProcess> inner, double failure_time,
                      double residual);

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

 private:
  std::unique_ptr<AvailabilityProcess> inner_;
  double failure_time_;
  double residual_;
};

/// Decorator modeling a processor CRASH: the inner process applies until
/// `crash_time`; during the outage the availability is 0 — the processor is
/// gone, not merely loaded — and, if a finite `recovery_time` is given, the
/// inner process resumes from there. Unlike FailingAvailability's residual
/// trickle, a crashed worker delivers NO progress, so an in-flight chunk is
/// lost and must be detected and re-dispatched by a fault-tolerant executor
/// (sim::FailureKind::kCrash / kCrashRecover); feeding this process to the
/// legacy non-preemptive protocol would deadlock, which is exactly what the
/// fault-tolerance layer exists to prevent.
class CrashingAvailability final : public AvailabilityProcess {
 public:
  /// Throws std::invalid_argument if inner is null, crash_time < 0, or
  /// recovery_time <= crash_time. recovery_time = +infinity (the default)
  /// means the crash is permanent.
  CrashingAvailability(std::unique_ptr<AvailabilityProcess> inner, double crash_time,
                       double recovery_time = std::numeric_limits<double>::infinity());

  [[nodiscard]] double availability_at(double t) override;
  [[nodiscard]] double next_change_after(double t) override;

  [[nodiscard]] double crash_time() const noexcept { return crash_time_; }
  /// +infinity when the crash is permanent.
  [[nodiscard]] double recovery_time() const noexcept { return recovery_time_; }
  /// True while the processor is in its outage window [crash, recovery).
  [[nodiscard]] bool is_down(double t) const noexcept {
    return t >= crash_time_ && t < recovery_time_;
  }

 private:
  std::unique_ptr<AvailabilityProcess> inner_;
  double crash_time_;
  double recovery_time_;
};

/// Validates that every pulse of an availability PMF lies in (0, 1].
void validate_availability_pmf(const pmf::Pmf& law);

/// Seeded generator of burst-outage windows: episode start gaps are
/// exponential with mean `mean_gap` (measured from the previous episode's
/// end; the first gap from t = 0), each episode lasts `duration`. Used by
/// the simulator's ChannelModel for burst-loss episodes — availability of
/// the NETWORK rather than of a processor. Windows are drawn lazily, so
/// covers() queries must be made with nondecreasing t (the discrete-event
/// engine's clock guarantees this).
class BurstWindows {
 public:
  /// Throws std::invalid_argument unless mean_gap > 0 and duration > 0.
  BurstWindows(double mean_gap, double duration, std::uint64_t seed);

  /// True when t falls inside a burst episode [start, start + duration).
  [[nodiscard]] bool covers(double t);

 private:
  double mean_gap_;
  double duration_;
  double start_;  // current (or next) episode start
  util::RngStream rng_;
};

}  // namespace cdsf::sysmodel
