#include "sysmodel/cases.hpp"

#include <stdexcept>

namespace cdsf::sysmodel {

Platform paper_platform() {
  return Platform({ProcessorType{"type1", 4}, ProcessorType{"type2", 8}});
}

AvailabilitySpec paper_case(int k) {
  using pmf::Pmf;
  switch (k) {
    case 1:
      // Â — the historical reference availability.
      return AvailabilitySpec(
          "case1", {Pmf::from_pulses({{0.75, 0.50}, {1.00, 0.50}}),
                    Pmf::from_pulses({{0.25, 0.25}, {0.50, 0.25}, {1.00, 0.50}})});
    case 2:
      return AvailabilitySpec(
          "case2", {Pmf::from_pulses({{0.50, 0.90}, {0.75, 0.10}}),
                    Pmf::from_pulses({{0.33, 0.45}, {0.66, 0.45}, {1.00, 0.10}})});
    case 3:
      return AvailabilitySpec(
          "case3", {Pmf::from_pulses({{0.52, 0.50}, {0.69, 0.50}}),
                    Pmf::from_pulses({{0.17, 0.25}, {0.35, 0.25}, {0.69, 0.50}})});
    case 4:
      return AvailabilitySpec(
          "case4", {Pmf::from_pulses({{0.33, 0.75}, {0.66, 0.25}}),
                    Pmf::from_pulses({{0.20, 0.50}, {0.80, 0.25}, {1.00, 0.25}})});
    default:
      throw std::invalid_argument("paper_case: k must be in [1, 4]");
  }
}

std::vector<AvailabilitySpec> paper_cases() {
  return {paper_case(1), paper_case(2), paper_case(3), paper_case(4)};
}

}  // namespace cdsf::sysmodel
