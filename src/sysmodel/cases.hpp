// Table I of the paper: the reference availability case Â (case 1) and the
// three degraded runtime cases A_2..A_4, plus the twelve-processor
// two-type platform of Section IV.
#pragma once

#include <vector>

#include "sysmodel/availability.hpp"
#include "sysmodel/platform.hpp"

namespace cdsf::sysmodel {

/// The paper's system: 4 processors of type 1 and 8 of type 2.
[[nodiscard]] Platform paper_platform();

/// Availability case k of Table I (1-based, k in [1, 4]). Case 1 is Â.
/// Throws std::invalid_argument for k outside [1, 4].
[[nodiscard]] AvailabilitySpec paper_case(int k);

/// All four cases in order (index 0 == case 1 == Â).
[[nodiscard]] std::vector<AvailabilitySpec> paper_cases();

}  // namespace cdsf::sysmodel
