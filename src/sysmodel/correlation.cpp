#include "sysmodel/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distribution.hpp"

namespace cdsf::sysmodel {

CorrelatedAvailabilitySampler::CorrelatedAvailabilitySampler(const AvailabilitySpec& spec,
                                                             double rho)
    : spec_(&spec), rho_(rho) {
  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("CorrelatedAvailabilitySampler: rho must be in [0, 1]");
  }
}

std::vector<double> CorrelatedAvailabilitySampler::sample(util::RngStream& rng) const {
  const double common = rng.normal();
  const double load_common = std::sqrt(rho_);
  const double load_own = std::sqrt(1.0 - rho_);
  std::vector<double> out;
  out.reserve(spec_->type_count());
  for (std::size_t j = 0; j < spec_->type_count(); ++j) {
    const double z = load_common * common + load_own * rng.normal();
    // Map through the copula to the marginal PMF's quantile. Clamp u away
    // from 1 so sample_with's [0, 1) contract holds.
    const double u = std::min(stats::standard_normal_cdf(z), 1.0 - 1e-15);
    out.push_back(spec_->of_type(j).sample_with(u));
  }
  return out;
}

}  // namespace cdsf::sysmodel
