// Correlated cross-type availability — the paper's named future work
// ("exploring the possible correlation between the availabilities for
// different processor types on the overall robustness of the system").
//
// The marginal law of each processor type stays its Table-I-style PMF; the
// JOINT law couples the types through a Gaussian one-factor copula:
//
//     z_j = sqrt(rho) * z_common + sqrt(1 - rho) * e_j,   z_common, e_j ~ N(0,1)
//     u_j = Phi(z_j),   a_j = marginal quantile of u_j.
//
// rho = 0 recovers independent types; rho -> 1 makes every type draw the
// same quantile of its own marginal (a system-wide load spike hits all
// processor generations at once — the realistic failure mode for a shared
// cluster). The robustness metric under correlation lives in
// src/ra/correlation.hpp (it needs allocations).
#pragma once

#include <vector>

#include "sysmodel/availability.hpp"
#include "util/rng.hpp"

namespace cdsf::sysmodel {

/// Joint availability sampler with one-factor Gaussian copula coupling.
class CorrelatedAvailabilitySampler {
 public:
  /// `rho` is the common-factor loading in [0, 1]. Throws
  /// std::invalid_argument outside that range.
  CorrelatedAvailabilitySampler(const AvailabilitySpec& spec, double rho);

  /// One joint draw: availability per processor type.
  [[nodiscard]] std::vector<double> sample(util::RngStream& rng) const;

  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] std::size_t type_count() const noexcept { return spec_->type_count(); }

 private:
  const AvailabilitySpec* spec_;
  double rho_;
};

}  // namespace cdsf::sysmodel
