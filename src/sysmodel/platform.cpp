#include "sysmodel/platform.hpp"

#include <stdexcept>

namespace cdsf::sysmodel {

Platform::Platform(std::vector<ProcessorType> types) : types_(std::move(types)) {
  if (types_.empty()) throw std::invalid_argument("Platform: at least one processor type required");
  for (const ProcessorType& type : types_) {
    if (type.count == 0) {
      throw std::invalid_argument("Platform: processor type '" + type.name +
                                  "' must have at least one processor");
    }
  }
}

std::size_t Platform::total_processors() const noexcept {
  std::size_t total = 0;
  for (const ProcessorType& type : types_) total += type.count;
  return total;
}

}  // namespace cdsf::sysmodel
