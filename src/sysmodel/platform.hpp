// The heterogeneous computing system of the paper: a fixed inventory of
// processors partitioned into types. Processors of one type are identical;
// types differ in computational capacity (captured by the per-type
// execution-time laws in workload::Application) and in availability
// (captured by sysmodel::AvailabilitySpec).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cdsf::sysmodel {

/// One processor type: a display name and how many processors exist of it.
struct ProcessorType {
  std::string name;
  std::size_t count = 0;

  friend bool operator==(const ProcessorType&, const ProcessorType&) = default;
};

/// Immutable description of the machine inventory.
class Platform {
 public:
  /// Throws std::invalid_argument if there are no types or any type has
  /// zero processors.
  explicit Platform(std::vector<ProcessorType> types);

  [[nodiscard]] std::size_t type_count() const noexcept { return types_.size(); }
  [[nodiscard]] const ProcessorType& type(std::size_t j) const { return types_.at(j); }
  [[nodiscard]] std::size_t processors_of_type(std::size_t j) const { return types_.at(j).count; }
  [[nodiscard]] std::size_t total_processors() const noexcept;

  [[nodiscard]] const std::vector<ProcessorType>& types() const noexcept { return types_; }

  friend bool operator==(const Platform&, const Platform&) = default;

 private:
  std::vector<ProcessorType> types_;
};

}  // namespace cdsf::sysmodel
