#include "sysmodel/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cdsf::sysmodel {

std::unique_ptr<TraceAvailability> ParsedTrace::make_process() const {
  return std::make_unique<TraceAvailability>(time_points, values);
}

pmf::Pmf ParsedTrace::to_pmf(double horizon) const {
  if (time_points.empty()) throw std::invalid_argument("ParsedTrace::to_pmf: empty trace");
  if (!(horizon > time_points.back())) {
    throw std::invalid_argument("ParsedTrace::to_pmf: horizon must exceed the last time point");
  }
  std::vector<pmf::Pulse> pulses;
  pulses.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double end = i + 1 < time_points.size() ? time_points[i + 1] : horizon;
    pulses.push_back({values[i], end - time_points[i]});
  }
  return pmf::Pmf::from_pulses(std::move(pulses));
}

ParsedTrace parse_trace(std::istream& in) {
  ParsedTrace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    if (const auto hash = line.find('#'); hash != std::string::npos) line = line.substr(0, hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;

    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("trace parse error (line " + std::to_string(line_number) +
                               "): expected 'time,availability'");
    }
    const std::string time_text = line.substr(0, comma);
    const std::string value_text = line.substr(comma + 1);
    double time = 0.0;
    double value = 0.0;
    try {
      time = std::stod(time_text);
      value = std::stod(value_text);
    } catch (const std::exception&) {
      // A single non-numeric header line ("time,availability") is allowed.
      if (trace.time_points.empty() && line_number <= 2) continue;
      throw std::runtime_error("trace parse error (line " + std::to_string(line_number) +
                               "): non-numeric fields");
    }
    if (value > 1.0) value /= 100.0;  // percentage form
    trace.time_points.push_back(time);
    trace.values.push_back(value);
  }

  if (trace.time_points.empty()) {
    throw std::invalid_argument("trace: no samples");
  }
  if (trace.time_points.front() != 0.0) {
    throw std::invalid_argument("trace: must start at time 0");
  }
  for (std::size_t i = 1; i < trace.time_points.size(); ++i) {
    if (!(trace.time_points[i] > trace.time_points[i - 1])) {
      throw std::invalid_argument("trace: times must be strictly increasing");
    }
  }
  for (double value : trace.values) {
    if (!(value > 0.0 && value <= 1.0)) {
      throw std::invalid_argument("trace: availability values must be in (0, 1] (or (0, 100])");
    }
  }
  return trace;
}

ParsedTrace parse_trace_text(const std::string& text) {
  std::istringstream stream(text);
  return parse_trace(stream);
}

ParsedTrace load_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("trace: cannot open '" + path + "'");
  return parse_trace(file);
}

FittedMarkov fit_markov_model(const ParsedTrace& trace, double epoch_length, double horizon) {
  if (!(epoch_length > 0.0)) {
    throw std::invalid_argument("fit_markov_model: epoch_length must be > 0");
  }
  const auto epochs = static_cast<std::size_t>(horizon / epoch_length);
  if (epochs < 2) {
    throw std::invalid_argument("fit_markov_model: horizon must cover at least two epochs");
  }

  FittedMarkov fitted{trace.to_pmf(horizon), 0.0, epoch_length};

  // Sample the trace at epoch midpoints; clamp queries past the trace end
  // (the last step holds forever in TraceAvailability semantics).
  const auto process = trace.make_process();
  auto value_at = [&](std::size_t epoch) {
    const double t = (static_cast<double>(epoch) + 0.5) * epoch_length;
    return process->availability_at(t);
  };

  std::size_t repeats = 0;
  double previous = value_at(0);
  for (std::size_t e = 1; e < epochs; ++e) {
    const double value = value_at(e);
    if (std::fabs(value - previous) < 1e-12) ++repeats;
    previous = value;
  }
  fitted.persistence = static_cast<double>(repeats) / static_cast<double>(epochs - 1);
  // MarkovEpochAvailability requires persistence < 1; a constant trace fits
  // as "nearly always persists".
  fitted.persistence = std::min(fitted.persistence, 0.999);
  return fitted;
}

}  // namespace cdsf::sysmodel
