// Loading availability data from files.
//
// The paper's Â is "generated using historical usage data of the
// heterogeneous computing system". This module ingests such data:
//
//  * a trace file (CSV: "time,availability" per line, header optional)
//    becomes a TraceAvailability process for the simulator, and
//  * the same samples, time-weighted, become the availability PMF that
//    Stage I consumes — closing the loop from measured history to Â.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "pmf/pmf.hpp"
#include "sysmodel/availability.hpp"

namespace cdsf::sysmodel {

/// A parsed trace: strictly increasing times starting at 0, values in (0, 1].
struct ParsedTrace {
  std::vector<double> time_points;
  std::vector<double> values;

  /// Materializes the simulator process.
  [[nodiscard]] std::unique_ptr<TraceAvailability> make_process() const;

  /// Time-weighted availability PMF over [0, horizon]; the last step is
  /// weighted up to `horizon` (must be > the last time point). Pulses with
  /// equal values merge. This is the "historical PMF" of the paper.
  /// Throws std::invalid_argument if horizon <= the last time point.
  [[nodiscard]] pmf::Pmf to_pmf(double horizon) const;
};

/// Parses "time,availability" CSV from a stream. Lines starting with '#'
/// and a leading "time,availability"-style header are skipped. Values may
/// be fractions (0.75) or percentages (75 — anything > 1 is divided by
/// 100). Throws std::runtime_error with a line number on malformed input
/// and std::invalid_argument on semantic violations (empty, unsorted,
/// out-of-range).
[[nodiscard]] ParsedTrace parse_trace(std::istream& in);

/// Convenience wrappers.
[[nodiscard]] ParsedTrace parse_trace_text(const std::string& text);
[[nodiscard]] ParsedTrace load_trace(const std::string& path);

/// Markov-epoch model parameters fitted from a trace — closes the loop
/// from measured history to the simulator's default availability process:
///   * `law`: the time-weighted availability PMF over [0, horizon],
///   * `persistence`: the fraction of epoch boundaries at which the
///     (epoch-averaged, PMF-quantized) availability repeats — exactly the
///     parameter MarkovEpochAvailability consumes.
struct FittedMarkov {
  pmf::Pmf law;
  double persistence = 0.0;
  double epoch_length = 0.0;
};

/// Fits the Markov-epoch model at the given epoch length. The trace is
/// sampled at epoch midpoints over [0, horizon]; values are quantized to
/// the PMF support before the repeat statistic. Throws
/// std::invalid_argument if epoch_length <= 0 or horizon does not cover at
/// least two epochs past the trace start.
[[nodiscard]] FittedMarkov fit_markov_model(const ParsedTrace& trace, double epoch_length,
                                            double horizon);

}  // namespace cdsf::sysmodel
