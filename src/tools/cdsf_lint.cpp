// cdsf_lint — CDSF-specific concurrency & determinism lint.
//
// Usage:
//   cdsf_lint [--json] [--rule <id> ...] [--list-rules] <path> [<path> ...]
//
// Paths may be files or directories (directories are scanned recursively
// for .hpp/.h/.cpp/.cc, in sorted order, so output is stable). The rule
// set and suppression syntax are documented in docs/static_analysis.md.
//
// Exit codes: 0 clean, 1 violations, 2 usage/I-O error.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: cdsf_lint [--json] [--rule <id> ...] [--list-rules] <path> [<path> ...]\n"
         "\n"
         "CDSF concurrency & determinism lint. Scans C++ sources for rule\n"
         "violations (unseeded RNG, wall-clock reads in deterministic paths,\n"
         "unordered-container iteration, bare mutex lock/unlock, untagged\n"
         "report documents). See docs/static_analysis.md.\n"
         "\n"
         "  --json        machine-readable report on stdout (cdsf.lint_report/1)\n"
         "  --rule <id>   run only the named rule (repeatable)\n"
         "  --list-rules  print rule ids + summaries and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::vector<std::string> only_rules;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::cerr << "cdsf_lint: --rule needs an argument\n";
        return 2;
      }
      only_rules.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cdsf_lint: unknown flag " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  auto rules = cdsf::lint::default_rules();
  if (list_rules) {
    for (const auto& rule : rules) {
      std::cout << rule->id() << " — " << rule->summary() << "\n";
    }
    return 0;
  }
  if (!only_rules.empty()) {
    for (const std::string& id : only_rules) {
      bool known = false;
      for (const auto& rule : rules) known = known || rule->id() == id;
      if (!known) {
        std::cerr << "cdsf_lint: unknown rule '" << id << "' (see --list-rules)\n";
        return 2;
      }
    }
    std::erase_if(rules, [&](const auto& rule) {
      for (const std::string& id : only_rules) {
        if (rule->id() == id) return false;
      }
      return true;
    });
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  try {
    std::vector<cdsf::lint::SourceFile> files;
    for (const std::string& path : paths) {
      for (const std::string& source : cdsf::lint::collect_sources(path)) {
        files.push_back(cdsf::lint::SourceFile::load(source));
      }
    }
    const cdsf::lint::LintResult result = cdsf::lint::run_rules(files, rules);
    if (json) {
      std::cout << cdsf::lint::to_json(result).dump(1) << "\n";
    } else {
      std::cout << cdsf::lint::to_text(result);
    }
    return result.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "cdsf_lint: " << error.what() << "\n";
    return 2;
  }
}
