// cdsf_lint — CDSF-specific concurrency & determinism lint.
//
// Usage:
//   cdsf_lint [--json] [--rule <id> ...] [--pass <name> ...]
//             [--layering <manifest>] [--registry <json>]
//             [--metrics-doc <md>] [--graph-dot <file>]
//             [--list-rules] [--list-passes] <path> [<path> ...]
//
// Paths may be files or directories (directories are scanned recursively
// for .hpp/.h/.cpp/.cc, in sorted order, so output is stable). Beyond the
// per-file rules, project-wide passes analyze the whole scan set at once:
// include-layering (needs --layering), lock-order, determinism-taint, and
// registry-sync (needs --registry and/or --metrics-doc). The rule set,
// passes, and suppression syntax are documented in docs/static_analysis.md.
//
// Exit codes: 0 clean, 1 violations, 2 usage/I-O error.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: cdsf_lint [options] <path> [<path> ...]\n"
         "\n"
         "CDSF concurrency & determinism lint. Per-file rules (unseeded RNG,\n"
         "wall-clock reads in deterministic paths, unordered-container\n"
         "iteration, bare mutex lock/unlock, untagged report documents) plus\n"
         "project-wide passes (include-layering, lock-order, determinism-taint,\n"
         "registry-sync). See docs/static_analysis.md.\n"
         "\n"
         "  --json             machine-readable report on stdout (cdsf.lint_report/2)\n"
         "  --rule <id>        run only the named rule (repeatable)\n"
         "  --pass <name>      run only the named pass (repeatable; default:\n"
         "                     rules, lock-order, determinism-taint, plus\n"
         "                     include-layering/registry-sync when their\n"
         "                     inputs are given)\n"
         "  --layering <file>  layer manifest (tools/layering.json); enables\n"
         "                     the include-layering pass\n"
         "  --registry <file>  schema/metric registry (tools/obs_registry.json);\n"
         "                     enables the registry-sync pass\n"
         "  --metrics-doc <md> observability doc whose tables registry-sync\n"
         "                     cross-checks (docs/observability.md)\n"
         "  --graph-dot <file> write the layer include graph as Graphviz DOT\n"
         "                     (needs --layering)\n"
         "  --list-rules       print rule ids + summaries and exit\n"
         "  --list-passes      print pass names and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  bool list_passes = false;
  std::vector<std::string> only_rules;
  std::vector<std::string> paths;
  cdsf::lint::ProjectOptions options;
  std::string graph_dot_path;

  const auto need_value = [&](int& i, const std::string& flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "cdsf_lint: " << flag << " needs an argument\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--list-passes") {
      list_passes = true;
    } else if (arg == "--rule") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      only_rules.emplace_back(value);
    } else if (arg == "--pass") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      options.passes.emplace_back(value);
    } else if (arg == "--layering") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      options.layering_path = value;
    } else if (arg == "--registry") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      options.registry_path = value;
    } else if (arg == "--metrics-doc") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      options.metrics_doc_path = value;
    } else if (arg == "--graph-dot") {
      const char* value = need_value(i, arg);
      if (value == nullptr) return 2;
      graph_dot_path = value;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "cdsf_lint: unknown flag " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  options.want_dot = !graph_dot_path.empty();

  auto rules = cdsf::lint::default_rules();
  if (list_rules) {
    for (const auto& rule : rules) {
      std::cout << rule->id() << " — " << rule->summary() << "\n";
    }
    return 0;
  }
  if (list_passes) {
    for (const std::string& pass : cdsf::lint::all_pass_ids()) {
      std::cout << pass << "\n";
    }
    return 0;
  }
  if (!only_rules.empty()) {
    for (const std::string& id : only_rules) {
      bool known = false;
      for (const auto& rule : rules) known = known || rule->id() == id;
      if (!known) {
        std::cerr << "cdsf_lint: unknown rule '" << id << "' (see --list-rules)\n";
        return 2;
      }
    }
    std::erase_if(rules, [&](const auto& rule) {
      for (const std::string& id : only_rules) {
        if (rule->id() == id) return false;
      }
      return true;
    });
  }
  if (paths.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  try {
    std::vector<cdsf::lint::SourceFile> files;
    for (const std::string& path : paths) {
      for (const std::string& source : cdsf::lint::collect_sources(path)) {
        files.push_back(cdsf::lint::SourceFile::load(source));
      }
    }
    const cdsf::lint::LintResult result = cdsf::lint::run_project(files, rules, options);
    if (!graph_dot_path.empty()) {
      std::ofstream dot(graph_dot_path, std::ios::binary);
      if (!dot) {
        std::cerr << "cdsf_lint: cannot write " << graph_dot_path << "\n";
        return 2;
      }
      dot << result.layering_dot;
    }
    if (json) {
      std::cout << cdsf::lint::to_json(result).dump(1) << "\n";
    } else {
      std::cout << cdsf::lint::to_text(result);
    }
    return result.exit_code();
  } catch (const std::exception& error) {
    std::cerr << "cdsf_lint: " << error.what() << "\n";
    return 2;
  }
}
