// The `cdsf` command-line tool: one binary exposing the library's main
// entry points without writing any C++.
//
//   cdsf tables                          # reproduce the paper's tables
//   cdsf scenario --file sys.ini         # run the CDSF on a scenario file
//   cdsf template --out sys.ini          # emit the paper example as a file
//   cdsf preview --technique AF --iterations 1000 --workers 4
//                                        # chunk schedule of a technique
//   cdsf gantt --technique FAC --case 3  # chunk Gantt on the paper example
//   cdsf phi1 --deadline 3250            # phi_1 for both Table IV mappings
//
// Every subcommand supports --help.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "cdsf/scenario_io.hpp"
#include "dls/analysis.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cdsf;

int cmd_tables(int, char**) {
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  const core::StageOneResult naive = framework.run_stage_one(ra::NaiveLoadBalance());
  const core::StageOneResult robust = framework.run_stage_one(ra::ExhaustiveOptimal());

  util::Table table({"quantity", "naive IM", "robust IM", "paper"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Paper reproduction summary (Tables IV & V; run build/bench/* for all)");
  table.add_row({"allocation", naive.allocation.to_string(example.platform),
                 robust.allocation.to_string(example.platform), "Table IV"});
  table.add_row({"phi_1", util::format_percent(naive.phi1, 1),
                 util::format_percent(robust.phi1, 1), "26% / 74.5%"});
  for (std::size_t app = 0; app < 3; ++app) {
    table.add_row({"E[T] app" + std::to_string(app + 1),
                   util::format_fixed(naive.expected_times[app], 1),
                   util::format_fixed(robust.expected_times[app], 1), "Table V"});
  }
  std::puts(table.render().c_str());
  return 0;
}

int cmd_template(int argc, char** argv) {
  util::Cli cli("Write the paper example as a scenario-file template.");
  cli.add_string("out", "paper_scenario.ini", "output path");
  if (!cli.parse(argc, argv)) return 0;
  const std::string path = cli.get_string("out");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cdsf: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << core::paper_scenario_text();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int cmd_scenario(int argc, char** argv) {
  util::Cli cli("Run the CDSF on a scenario file (Stage I + Stage II).");
  cli.add_string("file", "", "scenario file (empty = built-in paper example)");
  cli.add_int("replications", 51, "stage II replications");
  cli.add_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::string file = cli.get_string("file");
  const core::Scenario scenario = file.empty()
                                      ? core::parse_scenario_text(core::paper_scenario_text())
                                      : core::load_scenario(file);
  const core::Framework framework(scenario.batch, scenario.platform, scenario.cases.front(),
                                  scenario.deadline);
  const std::size_t space = ra::count_feasible(scenario.batch.size(), scenario.platform,
                                               ra::CountRule::kPowerOfTwo);
  const ra::ExhaustiveOptimal exhaustive;
  const ra::BestOfPortfolio portfolio;
  const ra::Heuristic& heuristic =
      space <= 200000 ? static_cast<const ra::Heuristic&>(exhaustive)
                      : static_cast<const ra::Heuristic&>(portfolio);

  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.sim.failures = scenario.failures;  // [failure] sections from the file
  const core::ScenarioResult result = framework.run_scenario(
      "cdsf", heuristic, dls::paper_robust_set(), scenario.cases, config);

  std::printf("Stage I (%s): %s\nphi_1 = %s\n\n", result.stage_one.heuristic_name.c_str(),
              result.stage_one.allocation.to_string(scenario.platform).c_str(),
              util::format_percent(result.stage_one.phi1, 1).c_str());
  for (std::size_t k = 0; k < result.per_case.size(); ++k) {
    const core::StageTwoResult& per_case = result.per_case[k];
    std::printf("%-12s : %s\n", per_case.case_name.c_str(),
                per_case.all_meet_deadline ? "all applications meet the deadline"
                                           : "deadline VIOLATED");
  }
  const core::RobustnessReport report = framework.robustness_report(result, scenario.cases);
  std::printf("\n(rho_1, rho_2) = (%s, %s)\n", util::format_percent(report.rho1, 1).c_str(),
              report.rho2 >= 0.0 ? util::format_percent(report.rho2, 2).c_str() : "n/a");
  std::printf("\nExecution plan (reference case):\n%s\n",
              framework.describe_plan(framework.make_plan(result, 0)).c_str());
  return 0;
}

int cmd_preview(int argc, char** argv) {
  util::Cli cli("Preview a technique's chunk schedule (no simulation).");
  cli.add_string("technique", "FAC", "technique name (see docs/dls_techniques.md)");
  cli.add_int("iterations", 1000, "loop iterations");
  cli.add_int("workers", 4, "workers");
  if (!cli.parse(argc, argv)) return 0;

  const dls::TechniqueId id = dls::technique_from_name(cli.get_string("technique"));
  const dls::ScheduleAnalysis analysis =
      dls::analyze_schedule(id, cli.get_int("iterations"),
                            static_cast<std::size_t>(cli.get_int("workers")));
  std::printf("%s on %lld iterations / %lld workers: %zu chunks, sizes %lld..%lld "
              "(mean %.1f, %zu distinct)\n",
              dls::technique_name(id).c_str(), static_cast<long long>(cli.get_int("iterations")),
              static_cast<long long>(cli.get_int("workers")), analysis.chunk_count,
              static_cast<long long>(analysis.largest_chunk),
              static_cast<long long>(analysis.smallest_chunk), analysis.mean_chunk,
              analysis.distinct_sizes);
  std::printf("sequence:");
  for (const dls::ScheduledChunk& chunk : analysis.chunks) {
    std::printf(" %lld", static_cast<long long>(chunk.size));
  }
  std::printf("\n");
  return 0;
}

int cmd_gantt(int argc, char** argv) {
  util::Cli cli("Chunk Gantt chart on the paper's app3 group.");
  cli.add_string("technique", "AF", "technique name");
  cli.add_int("case", 1, "availability case (1-4)");
  cli.add_int("seed", 12, "seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  sim::SimConfig config;
  config.collect_trace = true;
  const sim::RunResult run = sim::simulate_loop(
      example.batch.at(2), 1, 8, sysmodel::paper_case(static_cast<int>(cli.get_int("case"))),
      dls::technique_from_name(cli.get_string("technique")), config,
      static_cast<std::uint64_t>(cli.get_int("seed")));
  sim::GanttOptions options;
  options.deadline = example.deadline;
  std::printf("makespan %.0f (deadline %.0f)\n", run.makespan, example.deadline);
  std::fputs(sim::render_gantt(run, options).c_str(), stdout);
  return 0;
}

int cmd_phi1(int argc, char** argv) {
  util::Cli cli("phi_1 and makespan statistics for both Table IV mappings.");
  cli.add_double("deadline", 3250.0, "deadline Delta");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          cli.get_double("deadline"));
  util::Table table({"mapping", "phi_1", "E[Psi]", "90% quantile", "CVaR(0.9)",
                     "E[tardiness]", "FePIA radius"});
  table.set_alignment({util::Align::kLeft});
  for (auto [name, allocation] : {std::pair{"naive IM", core::paper_naive_allocation()},
                                  std::pair{"robust IM", core::paper_robust_allocation()}}) {
    const pmf::Pmf psi = evaluator.system_makespan_pmf(allocation);
    table.add_row({name, util::format_percent(psi.cdf(cli.get_double("deadline")), 1),
                   util::format_fixed(psi.expectation(), 0),
                   util::format_fixed(psi.quantile(0.9), 0),
                   util::format_fixed(psi.conditional_value_at_risk(0.9), 0),
                   util::format_fixed(psi.expected_tardiness(cli.get_double("deadline")), 0),
                   util::format_fixed(evaluator.fepia_robustness_radius(allocation), 3)});
  }
  std::puts(table.render().c_str());
  std::puts("FePIA radius (reference [3]): the availability drop each mapping tolerates");
  std::puts("before its weakest application's MEAN time violates the deadline.");
  return 0;
}

void usage() {
  std::puts("cdsf <command> [flags]   (each command supports --help)");
  std::puts("  tables    reproduce the paper's Table IV/V summary");
  std::puts("  scenario  run the CDSF on a scenario file");
  std::puts("  template  write the paper example as a scenario file");
  std::puts("  preview   print a technique's chunk schedule");
  std::puts("  gantt     ASCII chunk Gantt chart");
  std::puts("  phi1      makespan-distribution statistics per mapping");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand's Cli sees its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "tables") return cmd_tables(sub_argc, sub_argv);
    if (command == "scenario") return cmd_scenario(sub_argc, sub_argv);
    if (command == "template") return cmd_template(sub_argc, sub_argv);
    if (command == "preview") return cmd_preview(sub_argc, sub_argv);
    if (command == "gantt") return cmd_gantt(sub_argc, sub_argv);
    if (command == "phi1") return cmd_phi1(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cdsf %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "cdsf: unknown command '%s'\n", command.c_str());
  usage();
  return 1;
}
