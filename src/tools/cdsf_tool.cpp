// The `cdsf` command-line tool: one binary exposing the library's main
// entry points without writing any C++.
//
//   cdsf tables                          # reproduce the paper's tables
//   cdsf scenario --file sys.ini         # run the CDSF on a scenario file
//   cdsf template --out sys.ini          # emit the paper example as a file
//   cdsf preview --technique AF --iterations 1000 --workers 4
//                                        # chunk schedule of a technique
//   cdsf gantt --technique FAC --case 3  # chunk Gantt on the paper example
//   cdsf phi1 --deadline 3250            # phi_1 for both Table IV mappings
//   cdsf dynamic --remap --case 3        # arrival-driven allocation stream
//   cdsf chaos --schedules 100           # randomized fault-schedule campaign
//   cdsf serve --requests 8              # crash-safe scheduling service
//   cdsf metrics                         # OpenMetrics text exposition
//
// Observability: every subcommand takes --log-level (the CDSF_LOG
// environment variable sets the initial threshold), --metrics-out (an
// OpenMetrics snapshot written after the command body), and --postmortem
// (flight-recorder dump prefix; anomalous runs leave cdsf.flight_record/1
// files behind). scenario/gantt/dynamic take --report-json (structured
// run report) and scenario/gantt take --trace-json (Chrome/Perfetto
// trace, open in https://ui.perfetto.dev). Requesting any of these
// switches the global metrics registry on, so reports embed a metrics
// snapshot. See docs/observability.md.
//
// Every subcommand supports --help.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cdsf/dynamic_manager.hpp"
#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "cdsf/scenario_io.hpp"
#include "cdsf/solve.hpp"
#include "dls/analysis.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"
#include "sim/gantt.hpp"
#include "svc/chaos.hpp"
#include "svc/service.hpp"
#include "sysmodel/cases.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace cdsf;

/// --log-level on every subcommand; applied before the command body runs.
void add_log_flag(util::Cli& cli) {
  cli.add_string("log-level", "",
                 "log threshold: trace|debug|info|warn|error|off (default: CDSF_LOG or info)");
}

void apply_log_flag(const util::Cli& cli) {
  const std::string level = cli.get_string("log-level");
  if (!level.empty()) util::set_log_level(util::parse_log_level(level));
}

/// Turns the global metrics registry (and the Stage I phase profiler,
/// whose breakdown rides in cdsf.scenario_report) on when any
/// observability output was requested, so the emitted report embeds a
/// metrics snapshot.
void enable_metrics_if(bool wanted) {
  if (wanted) {
    obs::MetricsRegistry::global().set_enabled(true);
    obs::PhaseProfiler::global().set_enabled(true);
  }
}

/// --metrics-out / --postmortem ride on every subcommand next to
/// --log-level (see add_log_flag).
void add_common_flags(util::Cli& cli) {
  cli.add_string("metrics-out", "",
                 "write an OpenMetrics text snapshot of the metrics registry here");
  cli.add_string("postmortem", "flight_postmortem",
                 "flight-recorder postmortem file prefix ('off' = never dump)");
  add_log_flag(cli);
}

void apply_common_flags(const util::Cli& cli) {
  apply_log_flag(cli);
  enable_metrics_if(!cli.get_string("metrics-out").empty());
  // The library ships with the postmortem sink unarmed; the CLI arms it so
  // anomalous runs (deadline miss, strand, master restart, quarantine
  // trip) leave a cdsf.flight_record/1 dump behind. Budget of 4 files per
  // invocation keeps a chaos campaign from papering the directory.
  const std::string prefix = cli.get_string("postmortem");
  if (prefix.empty() || prefix == "off") {
    obs::FlightSink::global().disarm();
  } else {
    obs::FlightSink::global().arm(prefix, 4);
  }
}

/// Writes the --metrics-out exposition (if requested) after the command
/// body ran, so the snapshot covers everything the command did.
int write_metrics_out(const util::Cli& cli) {
  const std::string path = cli.get_string("metrics-out");
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cdsf: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << obs::to_openmetrics(obs::MetricsRegistry::global().snapshot());
  std::printf("wrote metrics %s\n", path.c_str());
  return 0;
}

int cmd_tables(int argc, char** argv) {
  util::Cli cli("Reproduce the paper's Table IV/V summary.");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  const core::StageOneResult naive = framework.run_stage_one(ra::NaiveLoadBalance());
  const core::StageOneResult robust = framework.run_stage_one(ra::ExhaustiveOptimal());

  util::Table table({"quantity", "naive IM", "robust IM", "paper"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Paper reproduction summary (Tables IV & V; run build/bench/* for all)");
  table.add_row({"allocation", naive.allocation.to_string(example.platform),
                 robust.allocation.to_string(example.platform), "Table IV"});
  table.add_row({"phi_1", util::format_percent(naive.phi1, 1),
                 util::format_percent(robust.phi1, 1), "26% / 74.5%"});
  for (std::size_t app = 0; app < 3; ++app) {
    table.add_row({"E[T] app" + std::to_string(app + 1),
                   util::format_fixed(naive.expected_times[app], 1),
                   util::format_fixed(robust.expected_times[app], 1), "Table V"});
  }
  std::puts(table.render().c_str());
  return write_metrics_out(cli);
}

int cmd_template(int argc, char** argv) {
  util::Cli cli("Write the paper example as a scenario-file template.");
  cli.add_string("out", "paper_scenario.ini", "output path");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string path = cli.get_string("out");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cdsf: cannot write '%s'\n", path.c_str());
    return 1;
  }
  out << core::paper_scenario_text();
  std::printf("wrote %s\n", path.c_str());
  return write_metrics_out(cli);
}

int cmd_scenario(int argc, char** argv) {
  util::Cli cli("Run the CDSF on a scenario file (Stage I + Stage II).");
  cli.add_string("file", "", "scenario file (empty = built-in paper example)");
  cli.add_int("replications", 51, "stage II replications");
  cli.add_int("seed", 1, "seed");
  cli.add_string("report-json", "", "write a structured JSON scenario report here");
  cli.add_string("trace-json", "", "write a Perfetto trace of one locked-plan execution here");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string report_path = cli.get_string("report-json");
  const std::string trace_path = cli.get_string("trace-json");
  enable_metrics_if(!report_path.empty() || !trace_path.empty());

  const std::string file = cli.get_string("file");
  const core::Scenario scenario = file.empty()
                                      ? core::parse_scenario_text(core::paper_scenario_text())
                                      : core::load_scenario(file);
  const core::Framework framework = core::make_framework(scenario);
  core::SolveOptions options;
  options.replications = static_cast<std::size_t>(cli.get_int("replications"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // The scenario pipeline runs on the idealized executors, which have no
  // message channel / master process; say so instead of silently ignoring
  // the sections (the MPI executor — cdsf gantt --mpi, bench_failure_ablation
  // --channel — is where they take effect).
  if (scenario.channel.faulty() || scenario.checkpoint.enabled) {
    std::puts(scenario.channel.corrupting()
                  ? "note: [channel]/[integrity]/[checkpoint] apply to the MPI executor "
                    "only; ignored by the scenario pipeline"
                  : "note: [channel]/[checkpoint] apply to the MPI executor only; "
                    "ignored by the scenario pipeline");
  }
  const core::SolveOutcome outcome = core::solve_on(framework, scenario, options);
  const core::ScenarioResult& result = outcome.scenario;

  std::printf("Stage I (%s): %s\nphi_1 = %s\n\n", result.stage_one.heuristic_name.c_str(),
              result.stage_one.allocation.to_string(scenario.platform).c_str(),
              util::format_percent(result.stage_one.phi1, 1).c_str());
  for (std::size_t k = 0; k < result.per_case.size(); ++k) {
    const core::StageTwoResult& per_case = result.per_case[k];
    std::printf("%-12s : %s\n", per_case.case_name.c_str(),
                per_case.all_meet_deadline ? "all applications meet the deadline"
                                           : "deadline VIOLATED");
  }
  const core::RobustnessReport& report = outcome.report;
  std::printf("\n(rho_1, rho_2) = (%s, %s)\n", util::format_percent(report.rho1, 1).c_str(),
              report.rho2 >= 0.0 ? util::format_percent(report.rho2, 2).c_str() : "n/a");
  const core::Framework::ExecutionPlan plan = framework.make_plan(result, 0);
  std::printf("\nExecution plan (reference case):\n%s\n",
              framework.describe_plan(plan).c_str());

  if (!trace_path.empty()) {
    // One locked-plan execution under the reference case, traced: every
    // application becomes a trace process, every worker a track.
    obs::TraceSink sink;
    obs::Json stage1_args = obs::Json::object();
    stage1_args.set("heuristic", result.stage_one.heuristic_name);
    stage1_args.set("phi1", result.stage_one.phi1);
    sink.add_framework_event(0.0, "stage1_allocation", std::move(stage1_args));
    obs::Json rho_args = obs::Json::object();
    rho_args.set("rho1", report.rho1);
    rho_args.set("rho2", report.rho2);
    sink.add_framework_event(0.0, "robustness_certificate", std::move(rho_args));
    sim::SimConfig trace_config;
    trace_config.failures = scenario.failures;
    trace_config.quarantine = scenario.quarantine;
    trace_config.collect_trace = true;
    for (std::size_t app = 0; app < scenario.batch.size(); ++app) {
      const ra::GroupAssignment group = plan.allocation.at(app);
      const sim::RunResult run = sim::simulate_loop(
          scenario.batch.at(app), group.processor_type, group.processors,
          scenario.cases.front(), plan.techniques[app], trace_config,
          options.seed + app);
      obs::TraceSink::RunOptions run_options;
      run_options.pid = static_cast<int>(app);
      run_options.process_name = scenario.batch.at(app).name() + " [" +
                                 dls::technique_name(plan.techniques[app]) + "]";
      run_options.epoch_length = trace_config.epoch_length;
      sink.append_run(run, run_options);
    }
    sink.write(trace_path);
    std::printf("wrote trace %s (%zu events)\n", trace_path.c_str(), sink.event_count());
  }
  if (!report_path.empty()) {
    obs::write_json(obs::make_scenario_report(framework, result, scenario.cases), report_path);
    std::printf("wrote report %s\n", report_path.c_str());
  }
  return write_metrics_out(cli);
}

int cmd_preview(int argc, char** argv) {
  util::Cli cli("Preview a technique's chunk schedule (no simulation).");
  cli.add_string("technique", "FAC", "technique name (see docs/dls_techniques.md)");
  cli.add_int("iterations", 1000, "loop iterations");
  cli.add_int("workers", 4, "workers");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);

  const dls::TechniqueId id = dls::technique_from_name(cli.get_string("technique"));
  const dls::ScheduleAnalysis analysis =
      dls::analyze_schedule(id, cli.get_int("iterations"),
                            static_cast<std::size_t>(cli.get_int("workers")));
  std::printf("%s on %lld iterations / %lld workers: %zu chunks, sizes %lld..%lld "
              "(mean %.1f, %zu distinct)\n",
              dls::technique_name(id).c_str(), static_cast<long long>(cli.get_int("iterations")),
              static_cast<long long>(cli.get_int("workers")), analysis.chunk_count,
              static_cast<long long>(analysis.largest_chunk),
              static_cast<long long>(analysis.smallest_chunk), analysis.mean_chunk,
              analysis.distinct_sizes);
  std::printf("sequence:");
  for (const dls::ScheduledChunk& chunk : analysis.chunks) {
    std::printf(" %lld", static_cast<long long>(chunk.size));
  }
  std::printf("\n");
  return write_metrics_out(cli);
}

int cmd_gantt(int argc, char** argv) {
  util::Cli cli("Chunk Gantt chart on the paper's app3 group.");
  cli.add_string("technique", "AF", "technique name");
  cli.add_int("case", 1, "availability case (1-4)");
  cli.add_int("seed", 12, "seed");
  cli.add_int("crash-worker", -1, "inject a permanent crash on this worker (-1 = none)");
  cli.add_double("crash-time", 500.0, "crash instant for --crash-worker");
  cli.add_int("degrade-worker", -1, "degrade this worker's availability (-1 = none)");
  cli.add_double("degrade-time", 500.0, "degradation instant for --degrade-worker");
  cli.add_double("degrade-residual", 0.2, "residual availability for --degrade-worker");
  cli.add_flag("speculate", "enable speculative re-execution of straggler chunks");
  cli.add_double("quantile", 2.0, "straggler threshold in sigmas (with --speculate)");
  cli.add_flag("mpi", "use the message-passing executor");
  cli.add_double("drop", 0.0, "per-message drop probability, both directions (implies --mpi)");
  cli.add_double("dup", 0.0, "per-message duplication probability (implies --mpi)");
  cli.add_double("reorder", 0.0, "per-message reorder probability (implies --mpi)");
  cli.add_flag("checkpoint", "enable master checkpointing (implies --mpi)");
  cli.add_double("checkpoint-interval", 250.0, "snapshot period for --checkpoint");
  cli.add_flag("quarantine",
               "arm the fail-slow quarantine tracker (pairs with --degrade-worker)");
  cli.add_double("audit-rate", 0.0,
                 "fraction of accepted chunks re-executed on an independent worker");
  cli.add_double("corrupt", 0.0,
                 "per-message payload-corruption probability, both directions (implies --mpi)");
  cli.add_int("silent-corrupt-worker", -1,
              "worker whose results go silently wrong (-1 = none; pairs with --audit-rate)");
  cli.add_double("silent-corrupt-time", 0.0, "onset instant for --silent-corrupt-worker");
  cli.add_double("master-crash", -1.0,
                 "crash the master at this instant (implies --mpi + checkpointing; -1 = none)");
  cli.add_double("master-recover", -1.0,
                 "master restart instant for --master-crash (-1 = crash + 60)");
  cli.add_string("report-json", "", "write a structured JSON run report here");
  cli.add_string("trace-json", "", "write a Perfetto trace of the run here");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string report_path = cli.get_string("report-json");
  const std::string trace_path = cli.get_string("trace-json");
  enable_metrics_if(!report_path.empty() || !trace_path.empty());

  const core::PaperExample example = core::make_paper_example();
  const std::string technique = cli.get_string("technique");
  sim::SimConfig config;
  config.collect_trace = true;
  // A run past the paper deadline is the flight recorder's deadline-miss
  // anomaly; armed via apply_common_flags, it dumps a postmortem.
  config.flight.deadline = example.deadline;
  if (cli.get_int("crash-worker") >= 0) {
    sim::SimConfig::Failure failure;
    failure.worker = static_cast<std::size_t>(cli.get_int("crash-worker"));
    failure.time = cli.get_double("crash-time");
    failure.kind = sim::SimConfig::FailureKind::kCrash;
    config.failures.push_back(failure);
  }
  if (cli.get_int("degrade-worker") >= 0) {
    sim::SimConfig::Failure failure;
    failure.worker = static_cast<std::size_t>(cli.get_int("degrade-worker"));
    failure.time = cli.get_double("degrade-time");
    failure.residual_availability = cli.get_double("degrade-residual");
    failure.kind = sim::SimConfig::FailureKind::kDegrade;
    config.failures.push_back(failure);
  }
  if (cli.get_flag("speculate")) {
    config.speculation.enabled = true;
    config.speculation.quantile = cli.get_double("quantile");
  }
  config.channel.drop_to_worker = config.channel.drop_to_master = cli.get_double("drop");
  config.channel.duplicate_to_worker = config.channel.duplicate_to_master =
      cli.get_double("dup");
  config.channel.reorder_to_worker = config.channel.reorder_to_master =
      cli.get_double("reorder");
  if (cli.get_flag("checkpoint")) {
    config.checkpoint.enabled = true;
    config.checkpoint.interval = cli.get_double("checkpoint-interval");
  }
  config.quarantine.enabled = cli.get_flag("quarantine");
  config.quarantine.audit_rate = cli.get_double("audit-rate");
  config.channel.corrupt_to_worker = config.channel.corrupt_to_master =
      cli.get_double("corrupt");
  if (cli.get_int("silent-corrupt-worker") >= 0) {
    sim::SimConfig::Failure failure;
    failure.worker = static_cast<std::size_t>(cli.get_int("silent-corrupt-worker"));
    failure.time = cli.get_double("silent-corrupt-time");
    failure.kind = sim::SimConfig::FailureKind::kSilentCorrupt;
    config.failures.push_back(failure);
  }
  if (cli.get_double("master-crash") >= 0.0) {
    sim::SimConfig::Failure failure;
    failure.kind = sim::SimConfig::FailureKind::kMasterCrashRestart;
    failure.time = cli.get_double("master-crash");
    failure.recovery_time = cli.get_double("master-recover") >= 0.0
                                ? cli.get_double("master-recover")
                                : failure.time + 60.0;
    config.failures.push_back(failure);
  }
  // Channel faults (including --corrupt: corrupting() implies faulty()),
  // checkpointing, and master crashes only exist in the message-passing
  // model, so any of those knobs forces the MPI executor.
  const bool mpi = cli.get_flag("mpi") || config.channel.faulty() ||
                   config.checkpoint.enabled ||
                   cli.get_double("master-crash") >= 0.0;
  const workload::Application& app = example.batch.at(2);
  const sysmodel::AvailabilitySpec avail =
      sysmodel::paper_case(static_cast<int>(cli.get_int("case")));
  const dls::TechniqueId technique_id = dls::technique_from_name(technique);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const sim::RunResult run =
      mpi ? sim::simulate_loop_mpi(app, 1, 8, avail, technique_id, config,
                                   sim::MessageModel{}, seed)
                .run
          : sim::simulate_loop(app, 1, 8, avail, technique_id, config, seed);
  if (run.channel.active()) {
    std::printf("channel: %llu msgs, %llu dropped (%llu burst), %llu duplicated, "
                "%llu retransmits, %llu dedup hits\n",
                static_cast<unsigned long long>(run.channel.messages_sent),
                static_cast<unsigned long long>(run.channel.drops),
                static_cast<unsigned long long>(run.channel.burst_drops),
                static_cast<unsigned long long>(run.channel.duplicates),
                static_cast<unsigned long long>(run.channel.retransmits),
                static_cast<unsigned long long>(run.channel.dedup_hits));
  }
  if (run.checkpoint.active()) {
    std::printf("checkpoint: %llu WAL records, %llu snapshots, %llu master restarts\n",
                static_cast<unsigned long long>(run.checkpoint.wal_records),
                static_cast<unsigned long long>(run.checkpoint.snapshots),
                static_cast<unsigned long long>(run.checkpoint.master_restarts));
  }
  if (run.channel.corrupted > 0) {
    std::printf("integrity: %llu corrupted copies discarded by checksum\n",
                static_cast<unsigned long long>(run.channel.corrupted));
  }
  if (run.quarantine.active()) {
    std::printf("quarantine: %llu trips (%llu fail-slow, %llu audit), %llu reinstated, "
                "%llu probes, %llu audits (%llu mismatches)\n",
                static_cast<unsigned long long>(run.quarantine.quarantines),
                static_cast<unsigned long long>(run.quarantine.fail_slow_trips),
                static_cast<unsigned long long>(run.quarantine.audit_trips),
                static_cast<unsigned long long>(run.quarantine.reinstatements),
                static_cast<unsigned long long>(run.quarantine.probes_launched),
                static_cast<unsigned long long>(run.quarantine.audits_launched),
                static_cast<unsigned long long>(run.quarantine.audit_mismatches));
  }
  sim::GanttOptions options;
  options.deadline = example.deadline;
  std::printf("makespan %.0f (deadline %.0f)\n", run.makespan, example.deadline);
  std::fputs(sim::render_gantt(run, options).c_str(), stdout);

  if (!trace_path.empty()) {
    obs::TraceSink sink;
    obs::TraceSink::RunOptions run_options;
    run_options.process_name = "app3 [" + technique + "]";
    run_options.epoch_length = config.epoch_length;
    sink.append_run(run, run_options);
    sink.write(trace_path);
    std::printf("wrote trace %s (%zu events)\n", trace_path.c_str(), sink.event_count());
  }
  if (!report_path.empty()) {
    obs::write_json(obs::make_run_report("gantt app3 " + technique, run, example.deadline),
                    report_path);
    std::printf("wrote report %s\n", report_path.c_str());
  }
  return write_metrics_out(cli);
}

int cmd_dynamic(int argc, char** argv) {
  util::Cli cli("Dynamic per-application allocation stream (rho_2-aware re-mapping).");
  cli.add_int("applications", 16, "applications in the arrival stream");
  cli.add_double("interarrival", 800.0, "mean interarrival time");
  cli.add_double("slack", 7000.0, "per-application deadline slack");
  cli.add_string("technique", "AF", "Stage II technique");
  cli.add_int("case", 3, "runtime availability case (1-4); reference is case 1");
  cli.add_flag("remap", "plan against the realized availability when it degrades past rho2");
  cli.add_double("rho2", 0.1, "certified availability-decrease radius for --remap");
  cli.add_int("seed", 8, "master seed");
  cli.add_string("file", "",
                 "scenario file providing platform/availability (and an optional "
                 "[admission] section) instead of the paper example");
  cli.add_string("admission", "",
                 "admission policy: accept-all | bounded | rho2 (overrides [admission])");
  cli.add_int("queue-capacity", 0, "bounded waiting-queue capacity");
  cli.add_string("queue-order", "fifo", "bounded queue order: fifo | edf");
  cli.add_double("admit-floor", 0.0, "rho2 policy: reject arrivals below this probability");
  cli.add_double("shed-floor", 0.0, "evict queued jobs below this success probability");
  cli.add_flag("ladder", "arm the graceful-degradation ladder");
  cli.add_double("ladder-alpha", 0.3, "overload EWMA smoothing factor");
  cli.add_double("overload-threshold", 0.75, "EWMA level that steps the ladder up a tier");
  cli.add_double("recover-threshold", 0.25, "EWMA level that steps the ladder back down");
  cli.add_double("slack-spread", 0.0,
                 "per-application deadline-slack spread in [0, 1) (makes EDF meaningful)");
  cli.add_string("report-json", "", "write a structured JSON dynamic-run report here");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string report_path = cli.get_string("report-json");
  enable_metrics_if(!report_path.empty());

  core::DynamicConfig config;
  const std::string file = cli.get_string("file");
  sysmodel::Platform platform = sysmodel::paper_platform();
  sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);
  sysmodel::AvailabilitySpec runtime =
      sysmodel::paper_case(static_cast<int>(cli.get_int("case")));
  if (!file.empty()) {
    const core::Scenario scenario = core::load_scenario(file);
    platform = scenario.platform;
    reference = scenario.cases.front();
    // --case indexes the scenario's own availability cases (1-based,
    // clamped), mirroring the paper-case numbering.
    const std::size_t index = std::min<std::size_t>(
        scenario.cases.size(),
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("case"))));
    runtime = scenario.cases[index - 1];
    config.admission = scenario.admission;
  }
  config.applications = static_cast<std::size_t>(cli.get_int("applications"));
  config.mean_interarrival = cli.get_double("interarrival");
  config.deadline_slack = cli.get_double("slack");
  config.deadline_slack_spread = cli.get_double("slack-spread");
  config.technique = dls::technique_from_name(cli.get_string("technique"));
  config.remap_on_rho2 = cli.get_flag("remap");
  config.rho2 = cli.get_double("rho2");
  config.application_spec.processor_types = platform.type_count();
  config.application_spec.min_total_iterations = 800;
  config.application_spec.max_total_iterations = 3000;
  config.application_spec.min_mean_time = 2000.0;
  config.application_spec.max_mean_time = 8000.0;
  // CLI admission knobs override any [admission] section from --file; an
  // explicit --admission rebuilds the whole block from the flags.
  if (!cli.get_string("admission").empty() || file.empty()) {
    core::AdmissionConfig admission;
    if (!cli.get_string("admission").empty()) {
      admission.policy = core::admission_policy_from_name(cli.get_string("admission"));
    }
    admission.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity"));
    if (cli.get_string("queue-order") == "edf") {
      admission.queue_order = core::QueueOrder::kEdf;
    } else if (cli.get_string("queue-order") != "fifo") {
      throw std::invalid_argument("--queue-order must be fifo or edf");
    }
    admission.admit_floor = cli.get_double("admit-floor");
    admission.shed_floor = cli.get_double("shed-floor");
    admission.ladder = cli.get_flag("ladder");
    admission.ladder_alpha = cli.get_double("ladder-alpha");
    admission.overload_threshold = cli.get_double("overload-threshold");
    admission.recover_threshold = cli.get_double("recover-threshold");
    config.admission = admission;
  }

  const core::DynamicRunResult result = core::run_dynamic_manager(
      platform, reference, runtime, config, static_cast<std::uint64_t>(cli.get_int("seed")));
  std::printf("%zu applications, technique %s, runtime case %lld\n", config.applications,
              dls::technique_name(config.technique).c_str(),
              static_cast<long long>(cli.get_int("case")));
  std::printf("realized availability decrease %s; re-map %s\n",
              util::format_percent(result.realized_decrease, 1).c_str(),
              result.remap_triggered ? "TRIGGERED" : "not triggered");
  std::printf("hit rate %s, mean queueing delay %.0f, utilization %s, horizon %.0f\n",
              util::format_percent(result.deadline_hit_rate, 0).c_str(),
              result.mean_queueing_delay,
              util::format_percent(result.utilization, 0).c_str(), result.horizon);
  if (config.admission.active()) {
    const core::AdmissionStats& stats = result.admission;
    std::printf("admission [%s]: %llu arrivals = %llu admitted + %llu rejected + %llu "
                "shed (%llu queued, peak depth %llu)\n",
                core::admission_policy_name(config.admission.policy),
                static_cast<unsigned long long>(stats.arrivals),
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.queued),
                static_cast<unsigned long long>(stats.peak_queue_depth));
    std::printf("admitted hit rate %s; ladder: %llu steps, max tier %s\n",
                util::format_percent(result.admitted_hit_rate, 0).c_str(),
                static_cast<unsigned long long>(stats.ladder_steps),
                core::degradation_tier_name(static_cast<core::DegradationTier>(
                    std::min<std::uint64_t>(stats.max_tier, 4))));
  }

  if (!report_path.empty()) {
    obs::write_json(obs::make_dynamic_report(result, config, platform), report_path);
    std::printf("wrote report %s\n", report_path.c_str());
  }
  return write_metrics_out(cli);
}

int cmd_chaos(int argc, char** argv) {
  util::Cli cli(
      "Chaos campaign: randomized fault schedules against both Stage II "
      "executors, hard invariants checked on every run.");
  cli.add_int("schedules", 100, "randomized fault schedules to draw");
  cli.add_int("seed", 2026, "campaign master seed");
  cli.add_int("workers", 6, "workers per run");
  cli.add_int("iterations", 600, "parallel iterations per run");
  cli.add_int("max-failures", 3, "failures injected per schedule (upper bound)");
  cli.add_int("replications", 3, "replications per thread-determinism comparison");
  cli.add_string("threads", "1,8", "comma-separated thread counts the determinism check compares");
  cli.add_int("campaign-threads", 0, "campaign parallelism over schedules (0 = hardware)");
  cli.add_flag("no-mpi", "skip the message-passing executor");
  cli.add_flag("no-speculation", "never enable speculative re-execution");
  cli.add_flag("no-channel", "never draw unreliable-channel faults");
  cli.add_flag("no-master-restart", "never inject master crash-restart / checkpointing");
  cli.add_flag("no-fail-slow", "never arm the fail-slow quarantine axis");
  cli.add_flag("no-corruption", "never draw payload-corruption faults");
  cli.add_flag("no-arrival-storm", "skip the dynamic-manager arrival-storm axis");
  cli.add_int("storm-schedules", 12, "arrival-storm schedules to draw");
  cli.add_flag("no-service", "skip the scheduling-service crash/replay axis");
  cli.add_int("service-schedules", 2, "service chaos schedules to draw");
  cli.add_string("report-json", "", "write a structured JSON campaign report here");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string report_path = cli.get_string("report-json");
  enable_metrics_if(!report_path.empty());

  sim::ChaosConfig config;
  config.schedules = static_cast<std::size_t>(cli.get_int("schedules"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.processors = static_cast<std::size_t>(cli.get_int("workers"));
  config.parallel_iterations = cli.get_int("iterations");
  config.max_failures = static_cast<std::size_t>(cli.get_int("max-failures"));
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.threads = static_cast<std::size_t>(cli.get_int("campaign-threads"));
  config.include_mpi = !cli.get_flag("no-mpi");
  config.speculation = !cli.get_flag("no-speculation");
  config.channel_faults = !cli.get_flag("no-channel");
  config.master_restart = !cli.get_flag("no-master-restart");
  config.fail_slow = !cli.get_flag("no-fail-slow");
  config.corruption = !cli.get_flag("no-corruption");
  config.thread_counts.clear();
  std::string spec = cli.get_string("threads");
  for (std::size_t pos = 0; pos < spec.size();) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string token = spec.substr(pos, comma - pos);
    if (!token.empty()) config.thread_counts.push_back(std::stoul(token));
    pos = comma + 1;
  }

  const sim::ChaosReport report = sim::run_chaos_campaign(config);
  std::printf("%zu schedules (%zu failures injected, %zu with speculation, %zu with "
              "channel faults, %zu with master restart, %zu with quarantine, %zu with "
              "corruption), %zu runs\n",
              report.schedules_run, report.failures_injected,
              report.schedules_with_speculation, report.schedules_with_channel_faults,
              report.schedules_with_master_restart, report.schedules_with_quarantine,
              report.schedules_with_corruption, report.runs_executed);
  std::printf("faults: %zu crashes, %llu chunks lost, %lld iterations re-executed, "
              "%zu false suspicions\n",
              report.faults_total.workers_crashed,
              static_cast<unsigned long long>(report.faults_total.chunks_lost),
              static_cast<long long>(report.faults_total.iterations_reexecuted),
              report.faults_total.false_suspicions);
  std::printf("speculation: %llu stragglers flagged, %llu backups (%llu won, %llu "
              "cancelled, %llu lost)\n",
              static_cast<unsigned long long>(report.speculation_total.stragglers_flagged),
              static_cast<unsigned long long>(report.speculation_total.backups_launched),
              static_cast<unsigned long long>(report.speculation_total.backups_won),
              static_cast<unsigned long long>(report.speculation_total.backups_cancelled),
              static_cast<unsigned long long>(report.speculation_total.backups_lost));
  std::printf("channel: %llu msgs, %llu dropped (%llu burst), %llu duplicated, %llu "
              "retransmits, %llu dedup hits, %llu abandoned\n",
              static_cast<unsigned long long>(report.channel_total.messages_sent),
              static_cast<unsigned long long>(report.channel_total.drops),
              static_cast<unsigned long long>(report.channel_total.burst_drops),
              static_cast<unsigned long long>(report.channel_total.duplicates),
              static_cast<unsigned long long>(report.channel_total.retransmits),
              static_cast<unsigned long long>(report.channel_total.dedup_hits),
              static_cast<unsigned long long>(report.channel_total.retransmits_abandoned));
  std::printf("checkpoint: %llu WAL records, %llu snapshots, %llu master restarts, "
              "%llu ranges re-dispatched, %llu completions replayed\n",
              static_cast<unsigned long long>(report.checkpoint_total.wal_records),
              static_cast<unsigned long long>(report.checkpoint_total.snapshots),
              static_cast<unsigned long long>(report.checkpoint_total.master_restarts),
              static_cast<unsigned long long>(
                  report.checkpoint_total.restart_ranges_redispatched),
              static_cast<unsigned long long>(
                  report.checkpoint_total.restart_completions_replayed));
  std::printf("gray: %llu quarantines (%llu fail-slow, %llu audit trips, %llu "
              "reinstated), %llu probes, %llu audits (%llu mismatches, %llu abandoned), "
              "%llu corrupted msgs discarded\n",
              static_cast<unsigned long long>(report.quarantine_total.quarantines),
              static_cast<unsigned long long>(report.quarantine_total.fail_slow_trips),
              static_cast<unsigned long long>(report.quarantine_total.audit_trips),
              static_cast<unsigned long long>(report.quarantine_total.reinstatements),
              static_cast<unsigned long long>(report.quarantine_total.probes_launched),
              static_cast<unsigned long long>(report.quarantine_total.audits_launched),
              static_cast<unsigned long long>(report.quarantine_total.audit_mismatches),
              static_cast<unsigned long long>(report.quarantine_total.audits_abandoned),
              static_cast<unsigned long long>(report.channel_total.corrupted));
  for (const sim::ChaosViolation& violation : report.violations) {
    std::printf("VIOLATION schedule %zu (seed %llu, %s): %s — %s\n", violation.schedule,
                static_cast<unsigned long long>(violation.seed), violation.executor.c_str(),
                violation.invariant.c_str(), violation.detail.c_str());
  }

  // Arrival-storm axis: overload campaigns against the dynamic manager,
  // checking the admission identity (admitted + rejected + shed ==
  // arrivals), no stranded admissions, the queue bound, and repeat-run
  // determinism. Runs above the sim layer, so it lives here, not in
  // sim::run_chaos_campaign.
  bool storm_passed = true;
  core::ArrivalStormReport storm;
  const bool run_storm = !cli.get_flag("no-arrival-storm");
  if (run_storm) {
    core::ArrivalStormConfig storm_config;
    storm_config.schedules = static_cast<std::size_t>(cli.get_int("storm-schedules"));
    storm_config.seed = config.seed;
    storm = core::run_arrival_storm_campaign(storm_config);
    storm_passed = storm.passed();
    std::printf("arrival storm: %zu schedules (%zu accept-all, %zu bounded, %zu rho2), "
                "%llu arrivals = %llu admitted + %llu rejected + %llu shed\n",
                storm.schedules_run, storm.schedules_accept_all, storm.schedules_bounded,
                storm.schedules_rho2,
                static_cast<unsigned long long>(storm.totals.arrivals),
                static_cast<unsigned long long>(storm.totals.admitted),
                static_cast<unsigned long long>(storm.totals.rejected),
                static_cast<unsigned long long>(storm.totals.shed));
    for (const core::ArrivalStormViolation& violation : storm.violations) {
      std::printf("VIOLATION storm schedule %zu (seed %llu, %s): %s — %s\n",
                  violation.schedule, static_cast<unsigned long long>(violation.seed),
                  violation.policy.c_str(), violation.invariant.c_str(),
                  violation.detail.c_str());
    }
  }

  // Service axis: crash/replay campaigns against the scheduling service
  // (exactly-once reports, zero lost requests, byte-identical repeats).
  // Sits above cdsf/ and sim/, so it lives in svc/chaos.*.
  bool service_passed = true;
  svc::ServiceChaosReport service;
  const bool run_service = !cli.get_flag("no-service");
  if (run_service) {
    svc::ServiceChaosConfig service_config;
    service_config.schedules = static_cast<std::size_t>(cli.get_int("service-schedules"));
    service_config.seed = config.seed;
    service = svc::run_service_chaos_campaign(service_config);
    service_passed = service.passed();
    std::printf("service: %zu schedules, %llu delivered, %llu hedges, %llu timeouts, "
                "%llu poisoned, %llu crashes, %llu replayed after restart\n",
                service.schedules_run,
                static_cast<unsigned long long>(service.delivered),
                static_cast<unsigned long long>(service.hedges),
                static_cast<unsigned long long>(service.timeouts),
                static_cast<unsigned long long>(service.poisoned),
                static_cast<unsigned long long>(service.crashes),
                static_cast<unsigned long long>(service.replayed));
    for (const svc::ServiceChaosViolation& violation : service.violations) {
      std::printf("VIOLATION service schedule %zu (seed %llu): %s — %s\n",
                  violation.schedule, static_cast<unsigned long long>(violation.seed),
                  violation.invariant.c_str(), violation.detail.c_str());
    }
  }

  const bool passed = report.passed() && storm_passed && service_passed;
  std::printf("campaign %s\n", passed ? "PASSED" : "FAILED");
  if (!report_path.empty()) {
    obs::Json doc = obs::make_chaos_report(report, config);
    if (run_storm) {
      obs::Json storm_doc = obs::Json::object();
      storm_doc.set("schedules_run", storm.schedules_run);
      storm_doc.set("schedules_accept_all", storm.schedules_accept_all);
      storm_doc.set("schedules_bounded", storm.schedules_bounded);
      storm_doc.set("schedules_rho2", storm.schedules_rho2);
      storm_doc.set("arrivals", storm.totals.arrivals);
      storm_doc.set("admitted", storm.totals.admitted);
      storm_doc.set("queued", storm.totals.queued);
      storm_doc.set("rejected", storm.totals.rejected);
      storm_doc.set("shed", storm.totals.shed);
      storm_doc.set("identity_holds", storm.totals.identity_holds());
      storm_doc.set("passed", storm.passed());
      obs::Json storm_violations = obs::Json::array();
      for (const core::ArrivalStormViolation& violation : storm.violations) {
        obs::Json entry = obs::Json::object();
        entry.set("schedule", violation.schedule);
        entry.set("seed", violation.seed);
        entry.set("policy", violation.policy);
        entry.set("invariant", violation.invariant);
        entry.set("detail", violation.detail);
        storm_violations.push_back(std::move(entry));
      }
      storm_doc.set("violations", std::move(storm_violations));
      doc.set("arrival_storm", std::move(storm_doc));
    }
    if (run_service) doc.set("service", svc::service_chaos_json(service));
    obs::write_json(doc, report_path);
    std::printf("wrote report %s\n", report_path.c_str());
  }
  const int metrics_status = write_metrics_out(cli);
  return passed ? metrics_status : 1;
}

int cmd_metrics(int argc, char** argv) {
  util::Cli cli(
      "OpenMetrics text exposition of a metrics snapshot: either a live "
      "Stage I solve of the paper example, or the snapshot embedded in an "
      "existing report (--from-report).");
  cli.add_string("from-report", "",
                 "re-export the 'metrics' block of this JSON report instead of running");
  cli.add_string("out", "", "output path (empty = stdout)");
  // The shared observability trio rides here too (it used to carry only
  // --log-level and drift from the other subcommands).
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);

  std::string text;
  const std::string from = cli.get_string("from-report");
  if (!from.empty()) {
    std::ifstream in(from);
    if (!in) {
      std::fprintf(stderr, "cdsf: cannot read '%s'\n", from.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const obs::Json doc = obs::Json::parse(buffer.str());
    const obs::Json* metrics = doc.find("metrics");
    if (metrics == nullptr) {
      std::fprintf(stderr,
                   "cdsf: '%s' has no 'metrics' block (produce the report with "
                   "--report-json so metrics collection is on)\n",
                   from.c_str());
      return 1;
    }
    text = obs::to_openmetrics(obs::snapshot_from_json(*metrics));
  } else {
    // Live exposition: solve the paper example's Stage I under an enabled
    // registry so the output carries real series.
    enable_metrics_if(true);
    const core::PaperExample example = core::make_paper_example();
    const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                    example.deadline);
    (void)framework.run_stage_one(ra::ExhaustiveOptimal());
    text = obs::to_openmetrics(obs::MetricsRegistry::global().snapshot());
  }

  const std::string out_path = cli.get_string("out");
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return write_metrics_out(cli);
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cdsf: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  out << text;
  std::printf("wrote metrics %s\n", out_path.c_str());
  return write_metrics_out(cli);
}

int cmd_serve(int argc, char** argv) {
  util::Cli cli(
      "Crash-safe scheduling service: a scripted deterministic request "
      "stream solved on a sharded pool with a request journal, watchdog "
      "cancellation, hedged solves, and graceful drain. Virtual time "
      "throughout — runs are byte-identical for a given seed.");
  cli.add_int("requests", 8, "scripted requests to generate");
  cli.add_int("seed", 1, "stream + service seed");
  cli.add_int("shards", 2, "solver-pool shards");
  cli.add_int("threads", 1, "solve threads (reports are byte-identical across values)");
  cli.add_int("replications", 11, "stage II replications per solve");
  cli.add_double("mean-interarrival", 4.0, "mean virtual seconds between arrivals");
  cli.add_double("poison", 0.0, "poison-request fraction of the stream");
  cli.add_double("hang", 0.0, "injected solver-hang probability per attempt");
  cli.add_double("watchdog", 60.0, "watchdog timeout (virtual seconds per attempt)");
  cli.add_double("crash-at", -1.0, "kill the daemon at this virtual time (< 0 = never)");
  cli.add_string("journal", "service_journal.jsonl",
                 "request journal path ('off' = no crash safety)");
  cli.add_flag("resume",
               "recover the journal and replay its unfinished requests instead of "
               "generating a stream (restart after --crash-at)");
  cli.add_string("admission", "accept-all", "admission policy: accept-all|bounded");
  cli.add_int("queue-capacity", 0, "bounded-admission queue capacity");
  cli.add_string("report-json", "", "write the cdsf.service_report/1 document here");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);
  const std::string report_path = cli.get_string("report-json");
  enable_metrics_if(!report_path.empty());

  svc::ServiceConfig config;
  config.shards = static_cast<std::size_t>(cli.get_int("shards"));
  config.solve_threads = static_cast<std::size_t>(cli.get_int("threads"));
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.watchdog_timeout = cli.get_double("watchdog");
  config.hang_fraction = cli.get_double("hang");
  config.crash_at = cli.get_double("crash-at");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.admission.policy = core::admission_policy_from_name(cli.get_string("admission"));
  config.admission.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-capacity"));
  const std::string journal = cli.get_string("journal");
  if (journal != "off") config.journal_path = journal;
  const bool resume = cli.get_flag("resume");
  config.journal_truncate = !resume;

  std::vector<svc::ScenarioRequest> stream;
  if (resume) {
    if (journal == "off") {
      std::fprintf(stderr, "cdsf serve: --resume needs a journal\n");
      return 1;
    }
    const svc::RecoveredJournal recovered = svc::load_journal(journal);
    stream = recovered.unfinished();
    std::printf("recovered journal: %zu accepted, %zu completed%s, %zu to replay\n",
                recovered.accepted.size(), recovered.completed.size(),
                recovered.torn ? " (torn tail discarded)" : "", stream.size());
  } else {
    svc::StreamConfig stream_config;
    stream_config.requests = static_cast<std::size_t>(cli.get_int("requests"));
    stream_config.mean_interarrival = cli.get_double("mean-interarrival");
    stream_config.seed = config.seed;
    stream_config.poison_fraction = cli.get_double("poison");
    stream = svc::make_scripted_stream(stream_config);
  }

  svc::SchedulingService service(config);
  const svc::ServiceRunResult result = service.run(std::move(stream));
  for (const svc::RequestRecord& record : result.requests) {
    if (svc::outcome_delivered(record.outcome)) {
      std::printf("request %llu @%.2f -> %s at %.2f (shard %zu, %zu attempt%s%s)\n",
                  static_cast<unsigned long long>(record.id), record.arrival,
                  svc::request_outcome_name(record.outcome), record.delivered_at,
                  record.shard, record.attempts, record.attempts == 1 ? "" : "s",
                  record.hedged ? (record.hedge_won ? ", hedge won" : ", hedged") : "");
    } else {
      std::printf("request %llu @%.2f -> %s\n",
                  static_cast<unsigned long long>(record.id), record.arrival,
                  svc::request_outcome_name(record.outcome));
    }
  }
  std::printf("%llu arrivals = %llu admitted + %llu rejected; %llu delivered "
              "(%llu hedges, %llu timeouts, %llu poisoned, %llu replayed)\n",
              static_cast<unsigned long long>(result.admission.arrivals),
              static_cast<unsigned long long>(result.admission.admitted),
              static_cast<unsigned long long>(result.admission.rejected),
              static_cast<unsigned long long>(result.delivered),
              static_cast<unsigned long long>(result.hedges),
              static_cast<unsigned long long>(result.timeouts),
              static_cast<unsigned long long>(result.poisoned),
              static_cast<unsigned long long>(result.replayed));
  if (result.crashed) {
    std::printf("CRASHED at t=%.2f — restart with --resume to replay\n", result.crash_time);
  } else {
    std::printf("drained at t=%.2f\n", result.drain_time);
  }
  if (!report_path.empty()) {
    obs::write_json(result.report, report_path);
    std::printf("wrote report %s\n", report_path.c_str());
  }
  return write_metrics_out(cli);
}

int cmd_phi1(int argc, char** argv) {
  util::Cli cli("phi_1 and makespan statistics for both Table IV mappings.");
  cli.add_double("deadline", 3250.0, "deadline Delta");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  apply_common_flags(cli);

  const core::PaperExample example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          cli.get_double("deadline"));
  util::Table table({"mapping", "phi_1", "E[Psi]", "90% quantile", "CVaR(0.9)",
                     "E[tardiness]", "FePIA radius"});
  table.set_alignment({util::Align::kLeft});
  for (auto [name, allocation] : {std::pair{"naive IM", core::paper_naive_allocation()},
                                  std::pair{"robust IM", core::paper_robust_allocation()}}) {
    const pmf::Pmf psi = evaluator.system_makespan_pmf(allocation);
    table.add_row({name, util::format_percent(psi.cdf(cli.get_double("deadline")), 1),
                   util::format_fixed(psi.expectation(), 0),
                   util::format_fixed(psi.quantile(0.9), 0),
                   util::format_fixed(psi.conditional_value_at_risk(0.9), 0),
                   util::format_fixed(psi.expected_tardiness(cli.get_double("deadline")), 0),
                   util::format_fixed(evaluator.fepia_robustness_radius(allocation), 3)});
  }
  std::puts(table.render().c_str());
  std::puts("FePIA radius (reference [3]): the availability drop each mapping tolerates");
  std::puts("before its weakest application's MEAN time violates the deadline.");
  return write_metrics_out(cli);
}

void usage() {
  std::puts("cdsf <command> [flags]   (each command supports --help)");
  std::puts("  tables    reproduce the paper's Table IV/V summary");
  std::puts("  scenario  run the CDSF on a scenario file");
  std::puts("  template  write the paper example as a scenario file");
  std::puts("  preview   print a technique's chunk schedule");
  std::puts("  gantt     ASCII chunk Gantt chart");
  std::puts("  phi1      makespan-distribution statistics per mapping");
  std::puts("  dynamic   arrival-driven allocation stream (rho_2-aware re-mapping)");
  std::puts("  chaos     randomized fault-schedule campaign with invariant checks");
  std::puts("  serve     crash-safe scheduling service on a scripted request stream");
  std::puts("  metrics   OpenMetrics text exposition (live or --from-report)");
  std::puts("observability: --log-level / --metrics-out / --postmortem everywhere");
  std::puts("  (CDSF_LOG sets the initial log threshold);");
  std::puts("  --report-json / --trace-json on scenario, gantt, dynamic, chaos");
}

}  // namespace

int main(int argc, char** argv) {
  cdsf::util::init_log_level_from_env();
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand's Cli sees its own flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "tables") return cmd_tables(sub_argc, sub_argv);
    if (command == "scenario") return cmd_scenario(sub_argc, sub_argv);
    if (command == "template") return cmd_template(sub_argc, sub_argv);
    if (command == "preview") return cmd_preview(sub_argc, sub_argv);
    if (command == "gantt") return cmd_gantt(sub_argc, sub_argv);
    if (command == "phi1") return cmd_phi1(sub_argc, sub_argv);
    if (command == "dynamic") return cmd_dynamic(sub_argc, sub_argv);
    if (command == "chaos") return cmd_chaos(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "metrics") return cmd_metrics(sub_argc, sub_argv);
    if (command == "--help" || command == "-h" || command == "help") {
      usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "cdsf %s: %s\n", command.c_str(), error.what());
    return 1;
  }
  std::fprintf(stderr, "cdsf: unknown command '%s'\n", command.c_str());
  usage();
  return 1;
}
