// Cooperative cancellation for long-running solves.
//
// A CancelToken is an owner-side switch; the solve-side hook is a plain
// `const std::atomic<bool>*` so configuration structs that carry one stay
// trivially copyable and a null hook costs a single branch. Cancellation
// is COOPERATIVE: the running computation polls the flag at its natural
// checkpoint boundaries (RA-enumeration candidates in
// ra::RobustnessEvaluator, Monte-Carlo replication starts in
// sim::simulate_replicated) and unwinds by throwing Cancelled — so a
// pathological Stage I instance or a huge replication sweep can be cut
// without wedging the thread that runs it. The scheduling service's
// watchdog and hedging loser-cancellation are built on this hook.
#pragma once

#include <atomic>
#include <stdexcept>

namespace cdsf::util {

/// Thrown from a checkpoint boundary when the owning token was cancelled.
/// Derives from std::runtime_error so generic catch-and-report paths treat
/// an aborted solve like any other failed solve.
struct Cancelled : std::runtime_error {
  Cancelled() : std::runtime_error("cancelled") {}
};

/// Owner side of a cooperative cancellation. The token must outlive every
/// computation holding its flag() pointer. Thread-safe: cancel() may race
/// with polls from worker threads (relaxed ordering is enough — the flag
/// carries no data, only the request to stop).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; every subsequent checkpoint poll throws.
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

  /// Re-arms the token for a fresh computation.
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

  /// The hook to place in a config struct (ra::RobustnessConfig::cancel,
  /// sim::SimConfig::cancel).
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// Checkpoint poll: no-op on a null hook, throws Cancelled once the owning
/// token fired.
inline void throw_if_cancelled(const std::atomic<bool>* flag) {
  if (flag != nullptr && flag->load(std::memory_order_relaxed)) throw Cancelled();
}

}  // namespace cdsf::util
