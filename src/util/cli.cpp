#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cdsf::util {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

void Cli::add_string(const std::string& name, std::string default_value, std::string help) {
  order_.push_back(name);
  entries_[name] = Entry{Kind::kString, default_value, std::move(default_value), std::move(help)};
}

void Cli::add_int(const std::string& name, std::int64_t default_value, std::string help) {
  order_.push_back(name);
  const std::string str = std::to_string(default_value);
  entries_[name] = Entry{Kind::kInt, str, str, std::move(help)};
}

void Cli::add_double(const std::string& name, double default_value, std::string help) {
  order_.push_back(name);
  std::ostringstream str;
  str << default_value;
  entries_[name] = Entry{Kind::kDouble, str.str(), str.str(), std::move(help)};
}

void Cli::add_flag(const std::string& name, std::string help) {
  order_.push_back(name);
  entries_[name] = Entry{Kind::kBool, "0", "0", std::move(help)};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: positional arguments are not supported: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) throw std::invalid_argument("Cli: unknown flag --" + name);
    if (it->second.kind == Kind::kBool) {
      it->second.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw std::invalid_argument("Cli: missing value for --" + name);
      value = argv[++i];
    }
    it->second.value = value;
  }
  return true;
}

const Cli::Entry& Cli::lookup(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw std::logic_error("Cli: flag was never registered: " + name);
  if (it->second.kind != kind) throw std::logic_error("Cli: flag accessed with wrong type: " + name);
  return it->second;
}

std::string Cli::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const auto& entry = lookup(name, Kind::kInt);
  std::size_t pos = 0;
  const std::int64_t parsed = std::stoll(entry.value, &pos);
  if (pos != entry.value.size()) throw std::invalid_argument("Cli: bad integer for --" + name);
  return parsed;
}

double Cli::get_double(const std::string& name) const {
  const auto& entry = lookup(name, Kind::kDouble);
  std::size_t pos = 0;
  const double parsed = std::stod(entry.value, &pos);
  if (pos != entry.value.size()) throw std::invalid_argument("Cli: bad double for --" + name);
  return parsed;
}

bool Cli::get_flag(const std::string& name) const {
  return lookup(name, Kind::kBool).value == "1";
}

std::string Cli::help_text() const {
  std::ostringstream out;
  out << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Entry& entry = entries_.at(name);
    out << "  --" << name;
    if (entry.kind != Kind::kBool) out << " <value>";
    out << "  (default: " << entry.fallback << ")\n      " << entry.help << "\n";
  }
  return out.str();
}

}  // namespace cdsf::util
