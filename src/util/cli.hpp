// Tiny command-line flag parser for bench and example binaries.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags raise an error so typos in experiment sweeps are caught.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cdsf::util {

/// Declarative flag set: register flags with defaults, then parse argv.
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers a string-valued flag with a default.
  void add_string(const std::string& name, std::string default_value, std::string help);
  /// Registers an integer flag with a default.
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  /// Registers a floating-point flag with a default.
  void add_double(const std::string& name, double default_value, std::string help);
  /// Registers a boolean switch (present => true).
  void add_flag(const std::string& name, std::string help);

  /// Parses argv. Returns false (after printing help) when --help was given.
  /// Throws std::invalid_argument for unknown flags or unparsable values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Usage text for --help.
  [[nodiscard]] std::string help_text() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Entry {
    Kind kind;
    std::string value;    // canonical string form
    std::string fallback; // default, for help text
    std::string help;
  };
  const Entry& lookup(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace cdsf::util
