// Minimal CSV writer used by benches to dump series data (e.g. the points
// behind each reproduced figure) alongside the ASCII rendering.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cdsf::util {

/// Streams rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas, quotes or newlines; doubles embedded quotes).
class CsvWriter {
 public:
  /// Writes to an externally owned stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row. Cells are written in order, separated by commas.
  void write_row(const std::vector<std::string>& cells);

  /// Escapes a single cell per CSV quoting rules.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream* out_;
};

}  // namespace cdsf::util
