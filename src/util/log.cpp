#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cdsf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  std::string lowered;
  lowered.reserve(name.size());
  for (char c : name) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  throw std::invalid_argument("parse_log_level: unknown level '" + name +
                              "' (expected trace|debug|info|warn|error|off)");
}

LogLevel init_log_level_from_env() {
  const char* env = std::getenv("CDSF_LOG");
  if (env != nullptr && *env != '\0') {
    try {
      set_log_level(parse_log_level(env));
    } catch (const std::invalid_argument&) {
      log_line(LogLevel::kWarn,
               std::string("ignoring invalid CDSF_LOG value '") + env + "'");
    }
  }
  return log_level();
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace cdsf::util
