// Leveled logging with a process-global threshold.
//
// The simulator emits kTrace events (chunk dispatches, availability epoch
// changes) that are invaluable when validating DLS behaviour but far too
// verbose for benches; the threshold defaults to kInfo.
#pragma once

#include <sstream>
#include <string>

namespace cdsf::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the process-global minimum level that is actually emitted.
void set_log_level(LogLevel level) noexcept;
/// Current process-global threshold.
[[nodiscard]] LogLevel log_level() noexcept;

/// Lowercase level name ("trace" ... "error", "off").
[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;
/// Inverse of log_level_name (case-insensitive). Throws
/// std::invalid_argument for anything else.
[[nodiscard]] LogLevel parse_log_level(const std::string& name);
/// Applies the CDSF_LOG environment variable (a parse_log_level name) to
/// the global threshold; unset or empty leaves it alone, an invalid value
/// emits one kWarn line and leaves it alone. Returns the active level.
LogLevel init_log_level_from_env();

/// Emits one line to stderr if `level` passes the threshold. Thread-safe
/// (line-at-a-time atomicity via a single formatted write).
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style log statement builder; emits on destruction.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cdsf::util

#define CDSF_LOG(level)                                         \
  if (static_cast<int>(level) < static_cast<int>(::cdsf::util::log_level())) { \
  } else                                                        \
    ::cdsf::util::detail::LogStatement(level)

#define CDSF_LOG_TRACE CDSF_LOG(::cdsf::util::LogLevel::kTrace)
#define CDSF_LOG_DEBUG CDSF_LOG(::cdsf::util::LogLevel::kDebug)
#define CDSF_LOG_INFO CDSF_LOG(::cdsf::util::LogLevel::kInfo)
#define CDSF_LOG_WARN CDSF_LOG(::cdsf::util::LogLevel::kWarn)
#define CDSF_LOG_ERROR CDSF_LOG(::cdsf::util::LogLevel::kError)
