#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace cdsf::util {

std::size_t default_thread_count() noexcept {
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hardware == 0 ? 1 : hardware, 1, 64);
}

void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  threads = std::min(std::max<std::size_t>(threads, 1), count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::vector<std::exception_ptr> errors(threads);
  auto run_block = [&](std::size_t t) {
    // Contiguous block partition: thread t handles [begin, end).
    const std::size_t base = count / threads;
    const std::size_t extra = count % threads;
    const std::size_t begin = t * base + std::min(t, extra);
    const std::size_t end = begin + base + (t < extra ? 1 : 0);
    try {
      for (std::size_t i = begin; i < end; ++i) body(i);
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(run_block, t);
  run_block(0);
  for (std::thread& thread : pool) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace cdsf::util
