// Deterministic fork-join parallelism for embarrassingly parallel index
// spaces (simulation replications, Monte-Carlo draws, allocation scoring).
//
// parallel_for_index partitions [0, count) into contiguous blocks, one per
// thread; every index is processed exactly once and results keyed by index
// are independent of the thread count — determinism is preserved because
// all randomness in this library derives from per-index seeds, never from
// thread identity or scheduling order.
#pragma once

#include <cstddef>
#include <functional>

namespace cdsf::util {

/// Hardware concurrency clamped to [1, 64] (0 from the runtime maps to 1).
[[nodiscard]] std::size_t default_thread_count() noexcept;

/// Invokes body(i) for every i in [0, count), distributing contiguous index
/// blocks over `threads` std::threads (the calling thread works too).
/// `threads` == 0 or 1, or count < 2, runs inline. The body must be safe to
/// call concurrently for DISTINCT indices (typically: it writes only to
/// result[i]). Exceptions thrown by the body are rethrown (the first one,
/// after all threads join).
void parallel_for_index(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body);

}  // namespace cdsf::util
