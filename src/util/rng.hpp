// Deterministic random-number infrastructure.
//
// Every stochastic component in the library takes an explicit seed or an
// RngStream. Seeds fan out through SplitMix64 so that entities created from
// the same master seed (workers of a simulation, applications of a batch,
// repetitions of an experiment) receive statistically independent streams
// and the whole experiment is reproducible from a single 64-bit value.
#pragma once

#include <cstdint>
#include <random>

namespace cdsf::util {

/// SplitMix64: tiny, high-quality 64-bit mixer (Steele, Lea, Flood 2014).
/// Used both as a stand-alone generator for seed fan-out and to whiten
/// user-provided seeds before they reach std::mt19937_64.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// A seeded random stream. Thin wrapper over std::mt19937_64 exposing the
/// UniformRandomBitGenerator interface plus convenience draws.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(whiten(seed)) {}

  using result_type = std::mt19937_64::result_type;
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double normal() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  static std::uint64_t whiten(std::uint64_t seed) {
    return SplitMix64(seed).next();
  }
  std::mt19937_64 engine_;
};

/// Deterministic fan-out of one master seed into independent child seeds.
/// child(i) is stable: it does not depend on the order other children are
/// requested in.
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) noexcept
      : master_(master) {}

  /// Seed for the i-th child entity.
  [[nodiscard]] constexpr std::uint64_t child(std::uint64_t index) const noexcept {
    SplitMix64 mixer(master_ ^ (0xA5A5A5A5A5A5A5A5ULL + index * 0x9E3779B97F4A7C15ULL));
    mixer.next();
    return mixer.next();
  }

  /// Convenience: a ready-made stream for the i-th child.
  [[nodiscard]] RngStream stream(std::uint64_t index) const {
    return RngStream(child(index));
  }

  [[nodiscard]] constexpr std::uint64_t master() const noexcept { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace cdsf::util
