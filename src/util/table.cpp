#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cdsf::util {

Table::Table(std::vector<std::string> headers) { set_headers(std::move(headers)); }

void Table::set_headers(std::vector<std::string> headers) {
  if (!rows_.empty() && headers.size() != headers_.size()) {
    throw std::invalid_argument("Table::set_headers: cannot change column count after rows were added");
  }
  headers_ = std::move(headers);
}

void Table::set_alignment(std::vector<Align> alignment) { alignment_ = std::move(alignment); }

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: row has " + std::to_string(row.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::set_title(std::string title) { title_ = std::move(title); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto align_of = [&](std::size_t c) {
    return c < alignment_.size() ? alignment_[c] : Align::kRight;
  };
  auto pad = [&](const std::string& cell, std::size_t c) {
    std::string out(widths[c], ' ');
    if (align_of(c) == Align::kLeft) {
      out.replace(0, cell.size(), cell);
    } else {
      out.replace(widths[c] - cell.size(), cell.size(), cell);
    }
    return out;
  };
  // append() instead of operator+ chains: GCC 12 -O3 misattributes the
  // temporary-string concatenation here as overlapping memcpy (-Wrestrict).
  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line.append(w + 2, '-').append("+");
    return line.append("\n");
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      line.append(" ").append(pad(c < cells.size() ? cells[c] : std::string(), c)).append(" |");
    }
    return line.append("\n");
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << rule() << emit_row(headers_) << rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << rule();
    } else {
      out << emit_row(row);
    }
  }
  out << rule();
  return out.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace cdsf::util
