// ASCII table rendering for bench/report output.
//
// All paper-table reproductions print through this class so that bench
// output is uniform and diffable run-to-run.
#pragma once

#include <string>
#include <vector>

namespace cdsf::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, append rows of strings, render.
/// Cells are stored as strings; numeric formatting is the caller's job
/// (see format_fixed / format_percent below).
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> headers);

  /// Replaces the header row. Column count is fixed by the header.
  void set_headers(std::vector<std::string> headers);

  /// Sets per-column alignment; missing entries default to kRight.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row. Throws std::invalid_argument if the size does not
  /// match the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Optional caption printed above the table.
  void set_title(std::string title);

  /// Renders the table as a multi-line string (trailing newline included).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Fixed-point formatting: format_fixed(3.14159, 2) == "3.14".
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Percentage formatting: format_percent(0.745, 1) == "74.5%".
[[nodiscard]] std::string format_percent(double fraction, int decimals);

}  // namespace cdsf::util
