#include "workload/application.hpp"

#include <algorithm>
#include <stdexcept>

#include "pmf/discretize.hpp"

namespace cdsf::workload {

std::string to_string(TimeLawKind kind) {
  switch (kind) {
    case TimeLawKind::kNormal: return "Normal";
    case TimeLawKind::kLogNormal: return "LogNormal";
    case TimeLawKind::kGamma: return "Gamma";
    case TimeLawKind::kUniform: return "Uniform";
    case TimeLawKind::kExponential: return "Exponential";
  }
  return "?";
}

std::string to_string(IterationProfile profile) {
  switch (profile) {
    case IterationProfile::kFlat: return "flat";
    case IterationProfile::kIncreasing: return "increasing";
    case IterationProfile::kDecreasing: return "decreasing";
    case IterationProfile::kParabolic: return "parabolic";
  }
  return "?";
}

double profile_work_fraction(IterationProfile profile, double x) {
  x = std::clamp(x, 0.0, 1.0);
  switch (profile) {
    case IterationProfile::kFlat: return x;
    case IterationProfile::kIncreasing: return x * x;
    case IterationProfile::kDecreasing: return x * (2.0 - x);
    case IterationProfile::kParabolic: return x * x * (3.0 - 2.0 * x);
  }
  return x;
}

std::unique_ptr<stats::Distribution> TimeLaw::make_distribution() const {
  if (!(mean > 0.0)) throw std::invalid_argument("TimeLaw: mean must be > 0");
  if (kind != TimeLawKind::kExponential && !(cov > 0.0)) {
    throw std::invalid_argument("TimeLaw: cov must be > 0");
  }
  switch (kind) {
    case TimeLawKind::kNormal:
      return std::make_unique<stats::Normal>(mean, stddev());
    case TimeLawKind::kLogNormal:
      return std::make_unique<stats::LogNormal>(stats::LogNormal::from_mean_stddev(mean, stddev()));
    case TimeLawKind::kGamma:
      return std::make_unique<stats::Gamma>(stats::Gamma::from_mean_stddev(mean, stddev()));
    case TimeLawKind::kUniform: {
      // Uniform with the requested mean and stddev: half-width = sqrt(3)*sd.
      const double half_width = stddev() * 1.7320508075688772;
      return std::make_unique<stats::Uniform>(mean - half_width, mean + half_width);
    }
    case TimeLawKind::kExponential:
      return std::make_unique<stats::Exponential>(1.0 / mean);
  }
  throw std::logic_error("TimeLaw: unknown kind");
}

Application::Application(std::string name, std::int64_t serial_iterations,
                         std::int64_t parallel_iterations, std::vector<TimeLaw> time_laws,
                         IterationProfile profile)
    : name_(std::move(name)),
      serial_iterations_(serial_iterations),
      parallel_iterations_(parallel_iterations),
      time_laws_(std::move(time_laws)),
      profile_(profile) {
  if (serial_iterations_ < 0 || parallel_iterations_ < 0) {
    throw std::invalid_argument("Application: iteration counts must be >= 0");
  }
  if (total_iterations() == 0) {
    throw std::invalid_argument("Application: at least one iteration required");
  }
  if (time_laws_.empty()) {
    throw std::invalid_argument("Application: at least one processor-type time law required");
  }
}

pmf::WorkSplit Application::split() const noexcept {
  const auto total = static_cast<double>(total_iterations());
  return pmf::WorkSplit{static_cast<double>(serial_iterations_) / total,
                        static_cast<double>(parallel_iterations_) / total};
}

double Application::mean_iteration_time(std::size_t type) const {
  return mean_time(type) / static_cast<double>(total_iterations());
}

double Application::parallel_work_in_range(std::size_t type, std::int64_t first,
                                           std::int64_t count) const {
  if (first < 0 || count < 0 || first + count > parallel_iterations_) {
    throw std::invalid_argument("parallel_work_in_range: range outside the parallel loop");
  }
  if (count == 0 || parallel_iterations_ == 0) return 0.0;
  const double n = static_cast<double>(parallel_iterations_);
  const double total_parallel = mean_time(type) * split().parallel_fraction;
  const double lo = profile_work_fraction(profile_, static_cast<double>(first) / n);
  const double hi = profile_work_fraction(profile_, static_cast<double>(first + count) / n);
  return total_parallel * (hi - lo);
}

pmf::Pmf Application::single_processor_pmf(std::size_t type, std::size_t pulses) const {
  const auto dist = time_laws_.at(type).make_distribution();
  // Execution times cannot be <= 0; clamp the (tiny) sub-zero normal tail
  // just above zero so downstream divisions stay defined.
  return pmf::discretize_quantile_truncated(*dist, pulses, 1e-9);
}

pmf::Pmf Application::parallel_pmf(std::size_t type, std::size_t processors,
                                   std::size_t pulses) const {
  return pmf::parallel_time(single_processor_pmf(type, pulses), split(), processors);
}

double Application::expected_parallel_time(std::size_t type, std::size_t processors) const {
  return pmf::parallel_time_scalar(mean_time(type), split(), processors);
}

Batch::Batch(std::vector<Application> applications) {
  for (auto& application : applications) add(std::move(application));
}

void Batch::add(Application application) {
  if (!applications_.empty() && application.type_count() != type_count()) {
    throw std::invalid_argument("Batch: all applications must cover the same processor types");
  }
  applications_.push_back(std::move(application));
}

std::size_t Batch::type_count() const noexcept {
  return applications_.empty() ? 0 : applications_.front().type_count();
}

}  // namespace cdsf::workload
