// The application model of the paper (Section III/IV):
//
// Each application is data parallel, contains a large computationally
// intensive loop, and is characterized by
//   * a number of serial iterations (run on a single processor) and a
//     number of parallel iterations (spreadable over the allocated group),
//   * a stochastic single-processor execution time per processor type,
//     modeled as a distribution (Normal with sigma = mu/10 in the paper).
//
// Table II's serial/parallel *percentages* equal the iteration-count ratio
// (439 / (439 + 1024) = 30 %), i.e. iterations are homogeneous in expected
// cost; the model here keeps that identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pmf/parallel_time.hpp"
#include "pmf/pmf.hpp"
#include "stats/distribution.hpp"

namespace cdsf::workload {

/// How single-processor execution times are distributed around their mean.
enum class TimeLawKind { kNormal, kLogNormal, kGamma, kUniform, kExponential };

[[nodiscard]] std::string to_string(TimeLawKind kind);

/// How the cost of the parallel loop's iterations varies with the
/// iteration INDEX — the paper's "intrinsic" (algorithmic) imbalance, as
/// opposed to the extrinsic (availability-driven) kind. The profile is a
/// density over the normalized index x in [0, 1], scaled so the loop's
/// total mean work is unchanged:
///   kFlat       — constant cost (the default; every iteration alike)
///   kIncreasing — cost proportional to 2x (e.g. triangular loop nests)
///   kDecreasing — cost proportional to 2(1 - x)
///   kParabolic  — cost proportional to 6x(1 - x) (mid-heavy, e.g.
///                 Mandelbrot-style interior work)
enum class IterationProfile { kFlat, kIncreasing, kDecreasing, kParabolic };

[[nodiscard]] std::string to_string(IterationProfile profile);

/// CDF of the profile density at normalized index x in [0, 1]: the fraction
/// of the loop's total work contained in iterations [0, x*N). Clamps x into
/// [0, 1].
[[nodiscard]] double profile_work_fraction(IterationProfile profile, double x);

/// Stochastic law for one (application, processor type) pair: a family kind
/// plus mean and coefficient of variation. Value type so applications stay
/// copyable; materialize a Distribution on demand.
struct TimeLaw {
  TimeLawKind kind = TimeLawKind::kNormal;
  double mean = 0.0;
  /// stddev / mean; the paper uses 0.1 throughout Section IV.
  double cov = 0.1;

  /// Materializes the distribution. Throws std::invalid_argument for
  /// non-positive mean or cov (except kExponential, whose cov is fixed at 1
  /// and ignores the field).
  [[nodiscard]] std::unique_ptr<stats::Distribution> make_distribution() const;

  [[nodiscard]] double stddev() const { return mean * cov; }

  friend bool operator==(const TimeLaw&, const TimeLaw&) = default;
};

/// One data-parallel application of a batch.
class Application {
 public:
  /// `time_laws[j]` is the single-processor law on processor type j; its
  /// size fixes how many processor types the application knows about.
  /// Throws std::invalid_argument if iteration counts are both zero or
  /// time_laws is empty.
  Application(std::string name, std::int64_t serial_iterations,
              std::int64_t parallel_iterations, std::vector<TimeLaw> time_laws,
              IterationProfile profile = IterationProfile::kFlat);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::int64_t serial_iterations() const noexcept { return serial_iterations_; }
  [[nodiscard]] std::int64_t parallel_iterations() const noexcept { return parallel_iterations_; }
  [[nodiscard]] std::int64_t total_iterations() const noexcept {
    return serial_iterations_ + parallel_iterations_;
  }

  /// Serial/parallel fractions derived from the iteration counts (Table II
  /// convention).
  [[nodiscard]] pmf::WorkSplit split() const noexcept;

  [[nodiscard]] std::size_t type_count() const noexcept { return time_laws_.size(); }
  /// Law on processor type j. Throws std::out_of_range for unknown types.
  [[nodiscard]] const TimeLaw& time_law(std::size_t type) const { return time_laws_.at(type); }

  /// Mean single-processor execution time on type j (Table III).
  [[nodiscard]] double mean_time(std::size_t type) const { return time_laws_.at(type).mean; }

  /// Mean cost of ONE iteration on a dedicated processor of type j
  /// (mean_time / total_iterations) — the simulator's base iteration cost
  /// (averaged over the profile).
  [[nodiscard]] double mean_iteration_time(std::size_t type) const;

  /// Iteration-index cost profile of the parallel loop.
  [[nodiscard]] IterationProfile profile() const noexcept { return profile_; }

  /// Mean dedicated-processor work (time units on type j) of the parallel
  /// iterations with indices [first, first + count), under the profile.
  /// Throws std::invalid_argument if the range leaves [0, parallel_iterations].
  [[nodiscard]] double parallel_work_in_range(std::size_t type, std::int64_t first,
                                              std::int64_t count) const;

  /// Discretized single-processor execution-time PMF on type j
  /// (quantile-grid, truncated at 0).
  [[nodiscard]] pmf::Pmf single_processor_pmf(std::size_t type, std::size_t pulses) const;

  /// Parallel execution-time PMF on n processors of type j (Eq. 2).
  [[nodiscard]] pmf::Pmf parallel_pmf(std::size_t type, std::size_t processors,
                                      std::size_t pulses) const;

  /// Expected parallel execution time on n dedicated processors of type j
  /// (Eq. 2 applied to the mean).
  [[nodiscard]] double expected_parallel_time(std::size_t type, std::size_t processors) const;

  friend bool operator==(const Application&, const Application&) = default;

 private:
  std::string name_;
  std::int64_t serial_iterations_;
  std::int64_t parallel_iterations_;
  std::vector<TimeLaw> time_laws_;
  IterationProfile profile_ = IterationProfile::kFlat;
};

/// A batch of applications awaiting initial mapping. All applications must
/// agree on the number of processor types.
class Batch {
 public:
  Batch() = default;
  explicit Batch(std::vector<Application> applications);

  /// Appends an application; throws std::invalid_argument if its type count
  /// disagrees with the batch's.
  void add(Application application);

  [[nodiscard]] std::size_t size() const noexcept { return applications_.size(); }
  [[nodiscard]] bool empty() const noexcept { return applications_.empty(); }
  [[nodiscard]] const Application& at(std::size_t i) const { return applications_.at(i); }
  [[nodiscard]] const std::vector<Application>& applications() const noexcept {
    return applications_;
  }
  /// Number of processor types the batch is defined over (0 when empty).
  [[nodiscard]] std::size_t type_count() const noexcept;

  [[nodiscard]] auto begin() const noexcept { return applications_.begin(); }
  [[nodiscard]] auto end() const noexcept { return applications_.end(); }

 private:
  std::vector<Application> applications_;
};

}  // namespace cdsf::workload
