#include "workload/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cdsf::workload {

namespace {
void validate(const BatchSpec& spec) {
  if (spec.applications == 0) throw std::invalid_argument("BatchSpec: applications must be > 0");
  if (spec.processor_types == 0) {
    throw std::invalid_argument("BatchSpec: processor_types must be > 0");
  }
  if (spec.min_total_iterations < 1 || spec.max_total_iterations < spec.min_total_iterations) {
    throw std::invalid_argument("BatchSpec: bad iteration range");
  }
  if (spec.min_serial_fraction < 0.0 || spec.max_serial_fraction > 1.0 ||
      spec.max_serial_fraction < spec.min_serial_fraction) {
    throw std::invalid_argument("BatchSpec: bad serial-fraction range");
  }
  if (!(spec.min_mean_time > 0.0) || spec.max_mean_time < spec.min_mean_time) {
    throw std::invalid_argument("BatchSpec: bad mean-time range");
  }
  if (!(spec.cov > 0.0)) throw std::invalid_argument("BatchSpec: cov must be > 0");
}
}  // namespace

Batch generate_batch(const BatchSpec& spec, std::uint64_t seed) {
  validate(spec);
  const util::SeedSequence seeds(seed);
  Batch batch;
  for (std::size_t i = 0; i < spec.applications; ++i) {
    util::RngStream rng = seeds.stream(i);

    const std::int64_t total =
        rng.uniform_int(spec.min_total_iterations, spec.max_total_iterations);
    const double serial_fraction =
        rng.uniform(spec.min_serial_fraction, spec.max_serial_fraction);
    auto serial = static_cast<std::int64_t>(std::llround(serial_fraction * static_cast<double>(total)));
    serial = std::min(serial, total - 1);  // keep at least one parallel iteration

    std::vector<TimeLaw> laws;
    laws.reserve(spec.processor_types);
    const double log_lo = std::log(spec.min_mean_time);
    const double log_hi = std::log(spec.max_mean_time);
    for (std::size_t t = 0; t < spec.processor_types; ++t) {
      const double mean = std::exp(rng.uniform(log_lo, log_hi));
      laws.push_back(TimeLaw{spec.law, mean, spec.cov});
    }
    batch.add(Application("app" + std::to_string(i + 1), serial, total - serial,
                          std::move(laws), spec.profile));
  }
  return batch;
}

}  // namespace cdsf::workload
