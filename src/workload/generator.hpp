// Random batch generation for the paper's future-work large-scale studies
// (more applications, more processor types) and for property tests.
#pragma once

#include <cstdint>

#include "workload/application.hpp"

namespace cdsf::workload {

/// Parameter ranges for random application batches. All ranges are closed.
struct BatchSpec {
  std::size_t applications = 8;
  std::size_t processor_types = 2;

  std::int64_t min_total_iterations = 500;
  std::int64_t max_total_iterations = 8000;

  /// Serial fraction drawn uniformly from [min, max].
  double min_serial_fraction = 0.02;
  double max_serial_fraction = 0.30;

  /// Mean single-processor execution time per type drawn log-uniformly
  /// from [min, max] (log-uniform keeps heterogeneity ratios realistic).
  double min_mean_time = 1000.0;
  double max_mean_time = 16000.0;

  /// Coefficient of variation of the time law (paper: 0.1).
  double cov = 0.1;
  TimeLawKind law = TimeLawKind::kNormal;
  /// Iteration-index cost profile of every generated application.
  IterationProfile profile = IterationProfile::kFlat;
};

/// Generates a deterministic random batch from the spec and seed.
/// Throws std::invalid_argument for degenerate specs (zero applications or
/// types, inverted ranges, non-positive times).
[[nodiscard]] Batch generate_batch(const BatchSpec& spec, std::uint64_t seed);

}  // namespace cdsf::workload
