// Clean fixture: satisfies every cdsf_lint rule. The engine is lexical, so
// nothing here needs to actually compile against the library headers.
#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace fixture {

// Ordered container: iteration is deterministic and therefore legal.
int sum_in_order(const std::map<int, int>& values) {
  int total = 0;
  for (const auto& [key, value] : values) total += key + value;
  return total;
}

// Randomness flows from the seeded stream, never a raw engine.
double draw(cdsf::util::RngStream& rng) { return rng.uniform01(); }

// Mutexes are held through RAII guards.
int guarded(std::mutex& mutex, int& shared) {
  std::scoped_lock lock(mutex);
  return ++shared;
}

// Mentioning rand or system_clock in a comment or "inside a string
// with rand() and steady_clock" must not trip the scrubber.
const char* kDecoy = "rand() and std::chrono::system_clock::now() in a string";

}  // namespace fixture
