// Violating fixture for report-schema-tag: the /obs/ path segment marks
// this file as report-emitting, where every `Json make_*report()` must
// stamp a "schema" key. Line numbers are asserted exactly by test_lint.cpp.
#include "obs/json.hpp"

namespace cdsf::obs {

Json make_bad_report(int value) {  // line 8: report-schema-tag
  Json doc = Json::object();
  doc.set("value", value);
  return doc;
}

Json make_good_report(int value) {  // clean: stamps the schema tag
  Json doc = Json::object();
  doc.set("schema", "fixture.report/1");
  doc.set("value", value);
  return doc;
}

}  // namespace cdsf::obs
