// Scrubber edge cases: every rule token below lives inside a literal or a
// comment, so a correct scrub reports zero findings. Loaded by
// tests/test_lint.cpp (LintFixtures.ScrubEdgeCasesFileIsClean) with a
// src/sim/ path so wall-clock rules are armed.
#include <string>

// Line-spliced comment: rand() on the continuation is still comment. \
rand(); std::mt19937 spliced; system_clock::now();

const char* kRaw = R"x(rand() and a fake close ")" still inside)x";
const char* kPrefixed = u8R"json({"clock": "steady_clock::now()"})json";
const wchar_t* kWide = LR"d!(std::random_device{}())d!";
const char32_t kChar = U')';
const wchar_t kQuote = L'"';
const int kBig = 1'000'000;  // digit separators must not open a literal

int live_after_literals() { return kBig; }
