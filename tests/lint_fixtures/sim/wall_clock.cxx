// Violating fixture for the wall-clock rule: the /sim/ path segment marks
// this file as a deterministic subsystem, where host-clock reads are
// forbidden. Line numbers are asserted exactly by test_lint.cpp.
#include <chrono>
#include <ctime>

namespace fixture {

double wall_now_seconds() {
  const auto now = std::chrono::system_clock::now();  // line 10: wall-clock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long wall_stamp() { return std::time(nullptr); }  // line 14: wall-clock

// Member calls spelled `time(` belong to someone's API, not libc.
struct Event {
  long when = 0;
  long time() const { return when; }
};
long event_time(const Event& event) { return event.time(); }  // clean

}  // namespace fixture
