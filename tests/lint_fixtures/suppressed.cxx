// Suppression fixture: the same violations as violations.cxx, each silenced
// by a cdsf-lint marker. The engine must report zero active violations and
// list every suppressed finding. Line numbers are asserted exactly by
// test_lint.cpp.
#include <cstdlib>
#include <mutex>

namespace fixture {

// A stand-alone marker applies to the next line.
// cdsf-lint: allow(rng-source)
int dice() { return std::rand() % 6; }  // line 12: suppressed

std::mutex state_mutex;

void locked() {
  state_mutex.lock();    // line 17: suppressed -- cdsf-lint: allow(bare-mutex-lock)
  state_mutex.unlock();  // line 18: suppressed -- cdsf-lint: allow(bare-mutex-lock)
}

}  // namespace fixture
