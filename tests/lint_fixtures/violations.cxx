// Violating fixture for the path-independent rules. Line numbers are
// asserted exactly by test_lint.cpp — keep edits append-only or update the
// expectations there.
#include <cstdlib>
#include <mutex>
#include <random>
#include <unordered_map>

namespace fixture {

int unseeded_dice() { return std::rand() % 6; }  // line 11: rng-source

std::mt19937 engine{std::random_device{}()};  // line 13: rng-source x2

std::unordered_map<int, int> table;

int sum_unordered() {
  int total = 0;
  for (const auto& [key, value] : table) total += value;  // line 19: unordered-iteration
  return total;
}

std::mutex state_mutex;

void bare_locking() {
  state_mutex.lock();    // line 26: bare-mutex-lock
  state_mutex.unlock();  // line 27: bare-mutex-lock
}

}  // namespace fixture
