// Overload robustness: admission policies (accept-all / bounded / rho2),
// bounded queues with deadline-aware shedding, the graceful-degradation
// ladder, the closed admission identity, the arrival-storm campaign, and
// the byte-identity guarantees (accept-all default inert; active admission
// deterministic across repeated seeds and any thread count).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cdsf/admission.hpp"
#include "cdsf/dynamic_manager.hpp"
#include "obs/report.hpp"
#include "sysmodel/cases.hpp"
#include "util/parallel.hpp"

namespace cdsf::core {
namespace {

/// Offered load well past capacity: arrivals every 100 time units against
/// executions that take thousands.
DynamicConfig overload_config() {
  DynamicConfig config;
  config.applications = 20;
  config.mean_interarrival = 100.0;
  config.deadline_slack = 4000.0;
  config.deadline_slack_spread = 0.25;  // heterogeneous slack: EDF != FIFO
  config.application_spec.processor_types = 2;
  config.application_spec.min_total_iterations = 800;
  config.application_spec.max_total_iterations = 3000;
  config.application_spec.min_mean_time = 2000.0;
  config.application_spec.max_mean_time = 8000.0;
  return config;
}

AdmissionConfig rho2_ladder() {
  AdmissionConfig admission;
  admission.policy = AdmissionPolicy::kRho2Aware;
  admission.queue_capacity = 4;
  admission.queue_order = QueueOrder::kEdf;
  admission.admit_floor = 0.2;
  admission.shed_floor = 0.1;
  admission.ladder = true;
  admission.ladder_alpha = 0.4;
  admission.overload_threshold = 0.7;
  admission.recover_threshold = 0.3;
  return admission;
}

DynamicRunResult run(const DynamicConfig& config, std::uint64_t seed = 7) {
  const sysmodel::Platform platform = sysmodel::paper_platform();
  const sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);
  return run_dynamic_manager(platform, reference, reference, config, seed);
}

bool outcomes_equal(const DynamicOutcome& a, const DynamicOutcome& b) {
  return a.arrival_time == b.arrival_time && a.deadline_slack == b.deadline_slack &&
         a.start_time == b.start_time && a.completion_time == b.completion_time &&
         a.group.processor_type == b.group.processor_type &&
         a.group.processors == b.group.processors && a.probability == b.probability &&
         a.met_deadline == b.met_deadline && a.disposition == b.disposition;
}

/// Field-by-field bitwise equality (the determinism guarantee is ==, not
/// near).
void expect_results_equal(const DynamicRunResult& a, const DynamicRunResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes_equal(a.outcomes[i], b.outcomes[i])) << "outcome " << i;
  }
  EXPECT_EQ(a.deadline_hit_rate, b.deadline_hit_rate);
  EXPECT_EQ(a.mean_queueing_delay, b.mean_queueing_delay);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.admitted_hit_rate, b.admitted_hit_rate);
  EXPECT_EQ(a.admission.arrivals, b.admission.arrivals);
  EXPECT_EQ(a.admission.admitted, b.admission.admitted);
  EXPECT_EQ(a.admission.queued, b.admission.queued);
  EXPECT_EQ(a.admission.rejected, b.admission.rejected);
  EXPECT_EQ(a.admission.shed, b.admission.shed);
  EXPECT_EQ(a.admission.ladder_steps, b.admission.ladder_steps);
  EXPECT_EQ(a.admission.max_tier, b.admission.max_tier);
  EXPECT_EQ(a.admission.peak_queue_depth, b.admission.peak_queue_depth);
}

/// Disposition counts must reproduce the stats counters exactly, and no
/// rejected/shed application may carry any execution state.
void expect_dispositions_consistent(const DynamicRunResult& result) {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  for (const DynamicOutcome& outcome : result.outcomes) {
    switch (outcome.disposition) {
      case DynamicOutcome::Disposition::kAdmitted:
        ++admitted;
        EXPECT_GE(outcome.start_time, outcome.arrival_time);
        EXPECT_GE(outcome.completion_time, outcome.start_time);
        EXPECT_GT(outcome.group.processors, 0u);
        break;
      case DynamicOutcome::Disposition::kRejected:
        ++rejected;
        break;
      case DynamicOutcome::Disposition::kShed:
        ++shed;
        break;
    }
    if (outcome.disposition != DynamicOutcome::Disposition::kAdmitted) {
      EXPECT_EQ(outcome.start_time, 0.0);
      EXPECT_EQ(outcome.completion_time, 0.0);
      EXPECT_EQ(outcome.group.processors, 0u);
      EXPECT_EQ(outcome.probability, 0.0);
      EXPECT_FALSE(outcome.met_deadline);
    }
  }
  EXPECT_EQ(admitted, result.admission.admitted);
  EXPECT_EQ(rejected, result.admission.rejected);
  EXPECT_EQ(shed, result.admission.shed);
  EXPECT_TRUE(result.admission.identity_holds());
}

// ------------------------------------------------------ names + validation --

TEST(Admission, PolicyAndTierNamesRoundTrip) {
  for (AdmissionPolicy policy : {AdmissionPolicy::kAcceptAll, AdmissionPolicy::kBoundedQueue,
                                 AdmissionPolicy::kRho2Aware}) {
    EXPECT_EQ(admission_policy_from_name(admission_policy_name(policy)), policy);
  }
  EXPECT_THROW((void)admission_policy_from_name("open-door"), std::invalid_argument);
  EXPECT_STREQ(degradation_tier_name(DegradationTier::kNormal), "normal");
  EXPECT_STREQ(degradation_tier_name(DegradationTier::kReject), "reject");
}

TEST(Admission, ValidationRejectsContradictoryKnobs) {
  // Accept-all with any bounded-only machinery armed: contradiction, not
  // silently ignored.
  for (auto mutate : std::vector<void (*)(AdmissionConfig&)>{
           [](AdmissionConfig& a) { a.queue_capacity = 4; },
           [](AdmissionConfig& a) { a.queue_order = QueueOrder::kEdf; },
           [](AdmissionConfig& a) { a.admit_floor = 0.5; },
           [](AdmissionConfig& a) { a.shed_floor = 0.5; },
           [](AdmissionConfig& a) { a.ladder = true; }}) {
    AdmissionConfig admission;  // accept-all
    mutate(admission);
    EXPECT_THROW(validate_admission(admission), std::invalid_argument);
  }
  // Bounded policies without a queue bound.
  {
    AdmissionConfig admission;
    admission.policy = AdmissionPolicy::kBoundedQueue;
    EXPECT_THROW(validate_admission(admission), std::invalid_argument);
  }
  // admit_floor belongs to the rho2 test only.
  {
    AdmissionConfig admission;
    admission.policy = AdmissionPolicy::kBoundedQueue;
    admission.queue_capacity = 4;
    admission.admit_floor = 0.5;
    EXPECT_THROW(validate_admission(admission), std::invalid_argument);
  }
  // Out-of-range floors, alpha, and an inverted hysteresis band.
  for (auto mutate : std::vector<void (*)(AdmissionConfig&)>{
           [](AdmissionConfig& a) { a.admit_floor = 1.5; },
           [](AdmissionConfig& a) { a.shed_floor = -0.1; },
           [](AdmissionConfig& a) { a.ladder_alpha = 0.0; },
           [](AdmissionConfig& a) { a.ladder_alpha = 1.5; },
           [](AdmissionConfig& a) { a.overload_threshold = 0.0; },
           [](AdmissionConfig& a) { a.recover_threshold = a.overload_threshold; }}) {
    AdmissionConfig admission = rho2_ladder();
    mutate(admission);
    EXPECT_THROW(validate_admission(admission), std::invalid_argument);
  }
  EXPECT_NO_THROW(validate_admission(rho2_ladder()));
  EXPECT_NO_THROW(validate_admission(AdmissionConfig{}));
}

TEST(Admission, ManagerRejectsContradictoryKnobsUpFront) {
  DynamicConfig config = overload_config();
  config.admission.shed_floor = 0.5;  // shedding under accept-all
  EXPECT_THROW((void)run(config), std::invalid_argument);
}

// ----------------------------------------------------- accept-all default --

TEST(Admission, AcceptAllDefaultAdmitsEverythingAndStaysInert) {
  DynamicConfig config = overload_config();
  config.deadline_slack_spread = 0.0;  // the historical configuration
  const DynamicRunResult result = run(config);
  EXPECT_EQ(result.admission.arrivals, config.applications);
  EXPECT_EQ(result.admission.admitted, config.applications);
  EXPECT_EQ(result.admission.rejected, 0u);
  EXPECT_EQ(result.admission.shed, 0u);
  EXPECT_EQ(result.admission.ladder_steps, 0u);
  EXPECT_TRUE(result.admission.identity_holds());
  // Admitted == everyone, so the admitted service level IS the overall one.
  EXPECT_EQ(result.admitted_hit_rate, result.deadline_hit_rate);
  for (const DynamicOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.disposition, DynamicOutcome::Disposition::kAdmitted);
    EXPECT_EQ(outcome.deadline_slack, config.deadline_slack);
  }
  // No admission machinery: the manager-level flight recorder stays off
  // and the report carries no admission block or dispositions.
  EXPECT_FALSE(result.flight.enabled);
  const std::string report =
      obs::make_dynamic_report(result, config, sysmodel::paper_platform()).dump(1);
  EXPECT_EQ(report.find("\"admission\""), std::string::npos);
  EXPECT_EQ(report.find("\"disposition\""), std::string::npos);
}

// ------------------------------------------- bounded queues + shedding --

TEST(Admission, BoundedQueueRejectsWhenFullAndRespectsCapacity) {
  DynamicConfig config = overload_config();
  config.admission.policy = AdmissionPolicy::kBoundedQueue;
  config.admission.queue_capacity = 2;
  const DynamicRunResult result = run(config);
  EXPECT_GT(result.admission.rejected, 0u);
  EXPECT_LE(result.admission.peak_queue_depth, 2u);
  expect_dispositions_consistent(result);
}

TEST(Admission, ShedFloorEvictsDoomedQueuedWork) {
  DynamicConfig config = overload_config();
  config.applications = 30;
  config.mean_interarrival = 50.0;
  config.admission.policy = AdmissionPolicy::kBoundedQueue;
  config.admission.queue_capacity = 8;
  config.admission.shed_floor = 0.9;
  const DynamicRunResult result = run(config);
  EXPECT_GT(result.admission.shed, 0u);
  expect_dispositions_consistent(result);
  // Every shed landed in the flight record as a kJobShed master event.
  ASSERT_TRUE(result.flight.enabled);
  std::uint64_t shed_events = 0;
  for (const obs::FlightEvent& event : result.flight.events) {
    if (event.kind == obs::FlightEventKind::kJobShed) ++shed_events;
  }
  EXPECT_EQ(shed_events, result.admission.shed);
}

// ------------------------------------------------ rho2 test + the ladder --

TEST(Admission, Rho2FloorRejectsHopelessArrivalsAtArrival) {
  DynamicConfig config = overload_config();
  config.admission = rho2_ladder();
  config.admission.ladder = false;
  config.admission.admit_floor = 0.95;  // nearly nothing clears this under load
  const DynamicRunResult result = run(config);
  EXPECT_GT(result.admission.rejected, 0u);
  expect_dispositions_consistent(result);
  ASSERT_TRUE(result.flight.enabled);
  std::uint64_t rejections = 0;
  for (const obs::FlightEvent& event : result.flight.events) {
    if (event.kind == obs::FlightEventKind::kAdmissionRejected) ++rejections;
  }
  EXPECT_EQ(rejections, result.admission.rejected);
}

TEST(Admission, LadderEscalatesUnderSustainedOverload) {
  DynamicConfig config = overload_config();
  config.applications = 30;
  config.mean_interarrival = 50.0;
  config.admission = rho2_ladder();
  const DynamicRunResult result = run(config);
  EXPECT_GT(result.admission.ladder_steps, 0u);
  EXPECT_GE(result.admission.max_tier, 1u);
  expect_dispositions_consistent(result);
  ASSERT_TRUE(result.flight.enabled);
  std::uint64_t transitions = 0;
  for (const obs::FlightEvent& event : result.flight.events) {
    if (event.kind == obs::FlightEventKind::kOverloadTierChanged) ++transitions;
  }
  EXPECT_EQ(transitions, result.admission.ladder_steps);
}

TEST(Admission, UnderloadAdmitsEverythingUnderEveryPolicy) {
  // With arrivals far apart the platform never saturates: every policy
  // behaves like accept-all (no rejection, no shed, ladder never leaves
  // normal).
  for (int arm = 0; arm < 2; ++arm) {
    DynamicConfig config = overload_config();
    config.applications = 6;
    config.mean_interarrival = 20000.0;
    config.deadline_slack = 60000.0;
    config.admission = arm == 0 ? rho2_ladder() : AdmissionConfig{};
    if (arm == 1) {
      config.admission.policy = AdmissionPolicy::kBoundedQueue;
      config.admission.queue_capacity = 4;
    }
    const DynamicRunResult result = run(config);
    EXPECT_EQ(result.admission.admitted, config.applications) << "arm " << arm;
    EXPECT_EQ(result.admission.rejected, 0u) << "arm " << arm;
    EXPECT_EQ(result.admission.shed, 0u) << "arm " << arm;
    EXPECT_EQ(result.admission.max_tier, 0u) << "arm " << arm;
  }
}

// ------------------------------------------------------------ determinism --

TEST(Admission, ActiveAdmissionIsByteIdenticalAcrossRepeatsAndThreadCounts) {
  DynamicConfig config = overload_config();
  config.admission = rho2_ladder();
  const sysmodel::Platform platform = sysmodel::paper_platform();

  const DynamicRunResult baseline = run(config);
  ASSERT_GT(baseline.admission.rejected + baseline.admission.shed, 0u);
  const std::string baseline_report =
      obs::make_dynamic_report(baseline, config, platform).dump(1);

  // Repeated seeds, and the manager invoked concurrently from worker
  // threads (1, 2, 4): every run must be bit-identical to the serial
  // baseline — decisions are pure functions of the arrival stream.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::vector<DynamicRunResult> results(4);
    util::parallel_for_index(results.size(), threads,
                             [&](std::size_t i) { results[i] = run(config); });
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_results_equal(results[i], baseline);
      EXPECT_EQ(obs::make_dynamic_report(results[i], config, platform).dump(1),
                baseline_report)
          << "threads " << threads << ", run " << i;
    }
  }
}

// --------------------------------------------------------- report surface --

TEST(Admission, DynamicReportCarriesAdmissionBlockAndDispositions) {
  DynamicConfig config = overload_config();
  config.admission = rho2_ladder();
  const DynamicRunResult result = run(config);
  const obs::Json report =
      obs::make_dynamic_report(result, config, sysmodel::paper_platform());
  const obs::Json& admission = report.at("admission");
  EXPECT_EQ(admission.at("policy").as_string(), "rho2");
  EXPECT_EQ(admission.at("queue_order").as_string(), "edf");
  EXPECT_EQ(static_cast<std::uint64_t>(admission.at("arrivals").as_int()),
            result.admission.arrivals);
  EXPECT_EQ(static_cast<std::uint64_t>(admission.at("rejected").as_int()),
            result.admission.rejected);
  EXPECT_EQ(static_cast<std::uint64_t>(admission.at("shed").as_int()),
            result.admission.shed);
  EXPECT_TRUE(admission.at("identity_holds").as_bool());
  bool saw_non_admitted = false;
  for (const obs::Json& outcome : report.at("applications").items()) {
    const std::string& disposition = outcome.at("disposition").as_string();
    EXPECT_TRUE(disposition == "admitted" || disposition == "rejected" ||
                disposition == "shed");
    if (disposition != "admitted") saw_non_admitted = true;
  }
  EXPECT_TRUE(saw_non_admitted);
}

// ------------------------------------------------- arrival-storm campaign --

TEST(Admission, ArrivalStormCampaignPassesAndClosesTheIdentity) {
  ArrivalStormConfig config;
  config.schedules = 9;
  config.seed = 2026;
  config.applications = 8;
  const ArrivalStormReport report = run_arrival_storm_campaign(config);
  for (const ArrivalStormViolation& violation : report.violations) {
    ADD_FAILURE() << "schedule " << violation.schedule << " seed " << violation.seed << " ["
                  << violation.policy << "] " << violation.invariant << ": "
                  << violation.detail;
  }
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.schedules_run, config.schedules);
  EXPECT_EQ(report.schedules_accept_all + report.schedules_bounded + report.schedules_rho2,
            config.schedules);
  EXPECT_TRUE(report.totals.identity_holds());
  EXPECT_GT(report.totals.arrivals, 0u);
}

TEST(Admission, ArrivalStormCampaignRejectsZeroSchedules) {
  ArrivalStormConfig config;
  config.schedules = 0;
  EXPECT_THROW((void)run_arrival_storm_campaign(config), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::core
