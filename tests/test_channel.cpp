// Unreliable-channel protocol hardening and master checkpoint/restart:
// exactly-once execution under drops / duplicates / reorders, retransmit
// termination, restart reconciliation, WAL/JSON checkpoint output, the
// MPI-replicated determinism guarantee, and the guards that keep the
// hardened knobs away from executors that ignore them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cdsf/dynamic_manager.hpp"
#include "obs/json.hpp"
#include "sim/master_worker.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using test::full_availability;
using test::simple_app;

SimConfig deterministic_config() {
  SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = AvailabilityMode::kConstantMean;
  return config;
}

/// Sums executed iterations over the per-worker accounting.
std::int64_t executed_iterations(const RunResult& run) {
  std::int64_t total = 0;
  for (const WorkerStats& w : run.workers) total += w.iterations;
  return total;
}

/// The winning (not lost, not cancelled) trace entries must tile
/// [0, parallel) with no overlap — the exactly-once invariant.
void expect_exactly_once(const RunResult& run, std::int64_t parallel) {
  std::vector<const ChunkTraceEntry*> winners;
  for (const ChunkTraceEntry& chunk : run.trace) {
    if (!chunk.lost && !chunk.cancelled) winners.push_back(&chunk);
  }
  std::sort(winners.begin(), winners.end(),
            [](const ChunkTraceEntry* a, const ChunkTraceEntry* b) {
              return a->first < b->first;
            });
  std::int64_t next = 0;
  for (const ChunkTraceEntry* chunk : winners) {
    EXPECT_EQ(chunk->first, next)
        << "gap or overlap at iteration " << next << " (worker " << chunk->worker << ")";
    next += chunk->iterations;
  }
  EXPECT_EQ(next, parallel);
}

// ------------------------------------------------- clean-channel identity --

TEST(Channel, CheckpointingAloneDoesNotChangeTheSchedule) {
  const auto app = simple_app("a", 20, 480, {500.0});
  const MessageModel messages{0.25, 0.05};
  SimConfig hardened = deterministic_config();
  hardened.collect_trace = true;
  hardened.checkpoint.enabled = true;
  hardened.checkpoint.interval = 50.0;
  SimConfig legacy = deterministic_config();
  legacy.collect_trace = true;
  for (dls::TechniqueId id :
       {dls::TechniqueId::kStatic, dls::TechniqueId::kFAC, dls::TechniqueId::kAF}) {
    const MpiRunResult a =
        simulate_loop_mpi(app, 0, 4, full_availability(1), id, hardened, messages, 11);
    const MpiRunResult b =
        simulate_loop_mpi(app, 0, 4, full_availability(1), id, legacy, messages, 11);
    EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan) << dls::technique_name(id);
    EXPECT_EQ(a.run.total_chunks, b.run.total_chunks) << dls::technique_name(id);
    // The WAL recorded the run; the channel itself stayed clean.
    EXPECT_GT(a.run.checkpoint.wal_records, 0u);
    EXPECT_GT(a.run.checkpoint.snapshots, 0u);
    EXPECT_EQ(a.run.checkpoint.master_restarts, 0u);
    EXPECT_EQ(a.run.channel.drops, 0u);
    EXPECT_EQ(a.run.channel.retransmits, 0u);
    EXPECT_EQ(b.run.checkpoint.wal_records, 0u);
    EXPECT_TRUE(b.run.wal.empty());
  }
}

// ------------------------------------------------------- protocol edges --

TEST(Channel, DuplicatedReportsNeverDoubleCount) {
  // EVERY worker->master message is duplicated, including each worker's
  // final report after the loop drains. Dedup must drop every surplus copy
  // so no chunk is record()ed or accounted twice.
  const auto app = simple_app("a", 0, 400, {400.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  config.channel.duplicate_to_master = 1.0;
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kFAC, config,
                                                MessageModel{0.25, 0.05}, 17);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(executed_iterations(result.run), 400);
  expect_exactly_once(result.run, 400);
  EXPECT_GT(result.run.channel.duplicates, 0u);
  EXPECT_GT(result.run.channel.dedup_hits, 0u);
  EXPECT_LE(result.run.channel.dedup_hits,
            result.run.channel.duplicates + result.run.channel.retransmits);
}

TEST(Channel, DroppedAssignmentIsRetransmittedAndTerminates) {
  // The very first master->worker payload vanishes; the ack-driven
  // retransmission must re-deliver it and the run must complete with every
  // iteration executed exactly once.
  const auto app = simple_app("a", 0, 200, {200.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  config.channel.force_drop_to_worker = 1;
  const MpiRunResult result = simulate_loop_mpi(app, 0, 2, full_availability(1),
                                                dls::TechniqueId::kStatic, config,
                                                MessageModel{0.25, 0.05}, 5);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(executed_iterations(result.run), 200);
  expect_exactly_once(result.run, 200);
  EXPECT_EQ(result.run.channel.drops, 1u);
  EXPECT_GE(result.run.channel.retransmits, 1u);
}

TEST(Channel, ReorderAndBurstLossStillExactlyOnce) {
  const auto app = simple_app("a", 10, 590, {600.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  config.channel.drop_to_worker = 0.1;
  config.channel.drop_to_master = 0.1;
  config.channel.duplicate_to_master = 0.2;
  config.channel.reorder_to_worker = 0.3;
  config.channel.reorder_to_master = 0.3;
  config.channel.reorder_delay = 1.5;
  config.channel.burst_gap_mean = 150.0;
  config.channel.burst_duration = 5.0;
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kAF, config,
                                                MessageModel{0.25, 0.05}, 23);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(executed_iterations(result.run), 590);
  expect_exactly_once(result.run, 590);
  EXPECT_LE(result.run.channel.burst_drops, result.run.channel.drops);
}

// -------------------------------------------------- master crash-restart --

TEST(Channel, MasterCrashMidSerialPhaseRecovers) {
  // serial = 100 iterations of 1.0 each => serial_end = 100; the master
  // dies at t = 40, well inside the serial phase, and must not dispatch
  // parallel work early when it restarts at t = 55.
  const auto app = simple_app("a", 100, 400, {500.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  SimConfig::Failure master;
  master.kind = SimConfig::FailureKind::kMasterCrashRestart;
  master.time = 40.0;
  master.recovery_time = 55.0;
  config.failures.push_back(master);
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kFAC, config,
                                                MessageModel{0.25, 0.05}, 31);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_GE(result.run.makespan, result.run.serial_end);
  EXPECT_EQ(executed_iterations(result.run), 400);
  expect_exactly_once(result.run, 400);
  EXPECT_EQ(result.run.checkpoint.master_restarts, 1u);
  // Parallel dispatch starts at or after serial_end despite the restart.
  for (const ChunkTraceEntry& chunk : result.run.trace) {
    EXPECT_GE(chunk.dispatch_time, result.run.serial_end);
  }
}

TEST(Channel, RestartFromEmptyWalRedispatchesEverything) {
  // The master dies before any WAL record exists; restart reconciliation
  // must come up from an empty log and still finish the loop.
  const auto app = simple_app("a", 10, 190, {200.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  SimConfig::Failure master;
  master.kind = SimConfig::FailureKind::kMasterCrashRestart;
  master.time = 0.25;
  master.recovery_time = 2.0;
  config.failures.push_back(master);
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kGSS, config,
                                                MessageModel{0.25, 0.05}, 41);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(executed_iterations(result.run), 190);
  expect_exactly_once(result.run, 190);
  EXPECT_EQ(result.run.checkpoint.master_restarts, 1u);
  // The restart itself is logged, so the WAL carries exactly one kRestart.
  std::size_t restarts = 0;
  for (const WalRecord& record : result.run.wal) {
    if (record.kind == WalRecord::Kind::kRestart) ++restarts;
  }
  EXPECT_EQ(restarts, 1u);
}

TEST(Channel, RestartMidLoopNeverReRecordsCompletedWork) {
  // Master dies mid-parallel-loop on a duplicating channel: completions
  // accepted before the crash are replayed from the WAL into the dedup
  // table, so re-delivered reports for them must not double-count.
  const auto app = simple_app("a", 0, 600, {600.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  config.channel.duplicate_to_master = 0.5;
  config.channel.duplicate_to_worker = 0.3;
  config.checkpoint.interval = 20.0;
  SimConfig::Failure master;
  master.kind = SimConfig::FailureKind::kMasterCrashRestart;
  master.time = 60.0;
  master.recovery_time = 75.0;
  config.failures.push_back(master);
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kFAC, config,
                                                MessageModel{0.25, 0.05}, 53);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(executed_iterations(result.run), 600);
  expect_exactly_once(result.run, 600);
  EXPECT_EQ(result.run.checkpoint.master_restarts, 1u);
  EXPECT_EQ(result.run.checkpoint.wal_records, result.run.wal.size());
}

TEST(Channel, CheckpointJsonIsWrittenAndSchemaTagged) {
  const auto app = simple_app("a", 0, 200, {200.0});
  const std::string path = ::testing::TempDir() + "cdsf_checkpoint_test.json";
  SimConfig config = deterministic_config();
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 25.0;
  config.checkpoint.json_path = path;
  const MpiRunResult result = simulate_loop_mpi(app, 0, 2, full_availability(1),
                                                dls::TechniqueId::kFAC, config,
                                                MessageModel{0.25, 0.05}, 9);
  EXPECT_GT(result.run.checkpoint.wal_records, 0u);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buffer.str());
  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.master_checkpoint/1");
  EXPECT_EQ(doc.at("wal").size(), result.run.wal.size());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ determinism --

TEST(Channel, ReplicatedMpiSummariesAreThreadCountInvariant) {
  const auto app = simple_app("a", 10, 490, {500.0});
  SimConfig config = deterministic_config();
  config.channel.drop_to_worker = 0.1;
  config.channel.drop_to_master = 0.1;
  config.channel.duplicate_to_master = 0.2;
  config.channel.reorder_to_master = 0.2;
  config.checkpoint.interval = 30.0;
  SimConfig::Failure master;
  master.kind = SimConfig::FailureKind::kMasterCrashRestart;
  master.time = 50.0;
  master.recovery_time = 65.0;
  config.failures.push_back(master);
  const MessageModel messages{0.25, 0.05};
  const ReplicationSummary a = simulate_replicated_mpi(
      app, 0, 4, full_availability(1), dls::TechniqueId::kFAC, config, messages, 71, 6, 1e18, 1);
  const ReplicationSummary b = simulate_replicated_mpi(
      app, 0, 4, full_availability(1), dls::TechniqueId::kFAC, config, messages, 71, 6, 1e18, 4);
  EXPECT_EQ(a.mean_makespan, b.mean_makespan);
  EXPECT_EQ(a.max_makespan, b.max_makespan);
  EXPECT_EQ(a.stddev_makespan, b.stddev_makespan);
  EXPECT_EQ(a.channel_total.messages_sent, b.channel_total.messages_sent);
  EXPECT_EQ(a.channel_total.drops, b.channel_total.drops);
  EXPECT_EQ(a.channel_total.retransmits, b.channel_total.retransmits);
  EXPECT_EQ(a.channel_total.dedup_hits, b.channel_total.dedup_hits);
  EXPECT_EQ(a.checkpoint_total.wal_records, b.checkpoint_total.wal_records);
  EXPECT_EQ(a.checkpoint_total.master_restarts, b.checkpoint_total.master_restarts);
  EXPECT_EQ(a.checkpoint_total.master_restarts, 6u);
}

// ------------------------------------------------------------- validation --

TEST(Channel, DegenerateKnobsAreRejected) {
  const auto app = simple_app("a", 0, 100, {100.0});
  const MessageModel messages;
  auto run = [&](const SimConfig& config) {
    return simulate_loop_mpi(app, 0, 2, full_availability(1), dls::TechniqueId::kStatic,
                             config, messages, 1);
  };
  SimConfig config = deterministic_config();
  config.channel.drop_to_worker = 1.5;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = deterministic_config();
  config.channel.reorder_to_master = 0.5;
  config.channel.reorder_delay = 0.0;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = deterministic_config();
  config.channel.drop_to_master = 0.1;
  config.channel.rto = 0.0;
  EXPECT_THROW(run(config), std::invalid_argument);
  config = deterministic_config();
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 0.0;
  EXPECT_THROW(run(config), std::invalid_argument);
  // A master that never comes back can never finish the run.
  config = deterministic_config();
  SimConfig::Failure master;
  master.kind = SimConfig::FailureKind::kMasterCrashRestart;
  master.time = 10.0;
  EXPECT_TRUE(!std::isfinite(master.recovery_time));
  config.failures.push_back(master);
  EXPECT_THROW(run(config), std::invalid_argument);
  // At most one master failure per run.
  config = deterministic_config();
  master.recovery_time = 20.0;
  config.failures.push_back(master);
  master.time = 30.0;
  master.recovery_time = 40.0;
  config.failures.push_back(master);
  EXPECT_THROW(run(config), std::invalid_argument);
}

TEST(Channel, DynamicManagerRejectsHardenedKnobs) {
  core::DynamicConfig config;
  config.applications = 2;
  config.mean_interarrival = 1000.0;
  config.deadline_slack = 8000.0;
  config.application_spec.processor_types = 2;
  config.sim.channel.drop_to_worker = 0.1;
  EXPECT_THROW(core::run_dynamic_manager(sysmodel::paper_platform(), sysmodel::paper_case(1),
                                         sysmodel::paper_case(1), config, 3),
               std::invalid_argument);
  config.sim.channel = ChannelModel{};
  config.sim.checkpoint.enabled = true;
  EXPECT_THROW(core::run_dynamic_manager(sysmodel::paper_platform(), sysmodel::paper_case(1),
                                         sysmodel::paper_case(1), config, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sim
