// Chaos campaign harness: randomized fault-schedule fuzzing with hard
// invariants, campaign determinism, the JSON campaign report, and the
// epoch-boundary regression the first campaign uncovered.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/report.hpp"
#include "pmf/pmf.hpp"
#include "sim/chaos.hpp"
#include "sysmodel/availability.hpp"

namespace cdsf {
namespace {

sim::ChaosConfig smoke_config() {
  sim::ChaosConfig config;
  config.schedules = 10;
  config.seed = 2026;
  config.replications = 2;
  config.thread_counts = {1, 4};
  return config;
}

TEST(Chaos, SmokeCampaignPassesEveryInvariant) {
  const sim::ChaosReport report = sim::run_chaos_campaign(smoke_config());
  EXPECT_TRUE(report.passed());
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.schedules_run, 10u);
  // At least ideal + mpi + 2 replications x 2 thread counts per schedule;
  // hardened schedules add MPI-replicated determinism runs on top.
  EXPECT_GE(report.runs_executed, 10u * (1 + 1 + 2 * 2));
  EXPECT_GE(report.failures_injected, 10u);
  // Up to max_failures base draws plus a dedicated fail-slow and a
  // silent-corrupt worker per schedule (the gray axes).
  EXPECT_LE(report.failures_injected, 50u);
  EXPECT_TRUE(std::isfinite(report.max_makespan));
  EXPECT_GT(report.max_makespan, 0.0);
  // The channel / master-restart axes are on by default; in a 10-schedule
  // smoke at least one schedule should draw each.
  EXPECT_GE(report.schedules_with_channel_faults, 1u);
  EXPECT_GE(report.schedules_with_master_restart, 1u);
  EXPECT_GT(report.channel_total.messages_sent, 0u);
  EXPECT_GE(report.channel_total.drops, report.channel_total.burst_drops);
  EXPECT_GT(report.checkpoint_total.wal_records, 0u);
  EXPECT_EQ(report.checkpoint_total.master_restarts,
            report.schedules_with_master_restart);
  // The gray axes are on by default too.
  EXPECT_GE(report.schedules_with_quarantine, 1u);
  EXPECT_GE(report.schedules_with_corruption, 1u);
}

TEST(Chaos, DisablingGrayAxesProducesGrayFreeRuns) {
  sim::ChaosConfig config = smoke_config();
  config.fail_slow = false;
  config.corruption = false;
  const sim::ChaosReport report = sim::run_chaos_campaign(config);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.schedules_with_quarantine, 0u);
  EXPECT_EQ(report.schedules_with_corruption, 0u);
  EXPECT_EQ(report.quarantine_total.quarantines, 0u);
  EXPECT_EQ(report.quarantine_total.probes_launched, 0u);
  EXPECT_EQ(report.quarantine_total.audits_launched, 0u);
  EXPECT_EQ(report.quarantine_total.corrupt_chunks_recorded, 0u);
  EXPECT_EQ(report.channel_total.corrupted, 0u);
  EXPECT_EQ(report.channel_total.corrupt_discarded, 0u);
}

TEST(Chaos, DisablingChannelAxesProducesCleanRuns) {
  sim::ChaosConfig config = smoke_config();
  config.channel_faults = false;
  config.master_restart = false;
  const sim::ChaosReport report = sim::run_chaos_campaign(config);
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.schedules_with_channel_faults, 0u);
  EXPECT_EQ(report.schedules_with_master_restart, 0u);
  EXPECT_EQ(report.channel_total.messages_sent, 0u);
  EXPECT_EQ(report.checkpoint_total.master_restarts, 0u);
}

TEST(Chaos, CampaignIsDeterministicAcrossCampaignThreads) {
  sim::ChaosConfig config = smoke_config();
  config.threads = 1;
  const sim::ChaosReport a = sim::run_chaos_campaign(config);
  config.threads = 4;
  const sim::ChaosReport b = sim::run_chaos_campaign(config);
  EXPECT_EQ(a.passed(), b.passed());
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.schedules_with_speculation, b.schedules_with_speculation);
  EXPECT_EQ(a.faults_total.workers_crashed, b.faults_total.workers_crashed);
  EXPECT_EQ(a.faults_total.chunks_lost, b.faults_total.chunks_lost);
  EXPECT_EQ(a.faults_total.iterations_reexecuted, b.faults_total.iterations_reexecuted);
  EXPECT_DOUBLE_EQ(a.faults_total.wasted_work, b.faults_total.wasted_work);
  EXPECT_EQ(a.speculation_total.backups_launched, b.speculation_total.backups_launched);
  EXPECT_EQ(a.speculation_total.backups_won, b.speculation_total.backups_won);
  EXPECT_DOUBLE_EQ(a.speculation_total.cancelled_work, b.speculation_total.cancelled_work);
  EXPECT_DOUBLE_EQ(a.max_makespan, b.max_makespan);
}

TEST(Chaos, DegenerateConfigsAreRejected) {
  sim::ChaosConfig config = smoke_config();
  config.schedules = 0;
  EXPECT_THROW(sim::run_chaos_campaign(config), std::invalid_argument);
  config = smoke_config();
  config.processors = 1;
  EXPECT_THROW(sim::run_chaos_campaign(config), std::invalid_argument);
  config = smoke_config();
  config.max_failures = 0;
  EXPECT_THROW(sim::run_chaos_campaign(config), std::invalid_argument);
  config = smoke_config();
  config.max_failures = config.processors;
  EXPECT_THROW(sim::run_chaos_campaign(config), std::invalid_argument);
  config = smoke_config();
  config.replications = 0;
  EXPECT_THROW(sim::run_chaos_campaign(config), std::invalid_argument);
}

TEST(Chaos, ReportJsonCarriesSchemaCampaignShapeAndVerdict) {
  const sim::ChaosConfig config = smoke_config();
  const sim::ChaosReport report = sim::run_chaos_campaign(config);
  const obs::Json document = obs::make_chaos_report(report, config);
  const obs::Json parsed = obs::Json::parse(document.dump(1));
  EXPECT_EQ(parsed.at("schema").as_string(), obs::kChaosReportSchema);
  EXPECT_TRUE(parsed.at("passed").as_bool());
  EXPECT_EQ(parsed.at("campaign").at("schedules").as_int(), 10);
  EXPECT_EQ(parsed.at("campaign").at("processors").as_int(), 6);
  EXPECT_EQ(parsed.at("schedules_run").as_int(),
            static_cast<std::int64_t>(report.schedules_run));
  EXPECT_EQ(parsed.at("runs_executed").as_int(),
            static_cast<std::int64_t>(report.runs_executed));
  EXPECT_TRUE(parsed.at("campaign").at("fail_slow").as_bool());
  EXPECT_TRUE(parsed.at("campaign").at("corruption").as_bool());
  EXPECT_EQ(parsed.at("schedules_with_quarantine").as_int(),
            static_cast<std::int64_t>(report.schedules_with_quarantine));
  EXPECT_EQ(parsed.at("quarantine_total").at("quarantines").as_int(),
            static_cast<std::int64_t>(report.quarantine_total.quarantines));
  EXPECT_EQ(parsed.at("violations").size(), 0u);
  EXPECT_EQ(parsed.at("faults_total").at("chunks_lost").as_int(),
            static_cast<std::int64_t>(report.faults_total.chunks_lost));
  EXPECT_EQ(parsed.at("max_makespan").as_double(), report.max_makespan);
}

// Regression for the hang the first campaign found: with an epoch length
// that is not exactly representable, t can land exactly ON a boundary whose
// division rounds back into the previous epoch; the naive next-change
// formula then returns t itself and finish_time() never advances.
TEST(Chaos, NextEpochBoundaryIsStrictlyAfterT) {
  const double epoch = 206.66666666666666 / 8.0;  // the campaign's draw
  for (std::int64_t k = 1; k < 4096; ++k) {
    const double t = static_cast<double>(k) * epoch;
    EXPECT_GT(sysmodel::detail::next_epoch_boundary(t, epoch), t) << "k = " << k;
  }
  EXPECT_DOUBLE_EQ(sysmodel::detail::next_epoch_boundary(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(sysmodel::detail::next_epoch_boundary(0.5, 1.0), 1.0);
}

TEST(Chaos, EpochProcessFinishTimeTerminatesOnAwkwardEpochLengths) {
  const pmf::Pmf law = pmf::Pmf::uniform_over({0.4, 0.7, 1.0});
  sysmodel::MarkovEpochAvailability markov(law, 206.66666666666666 / 8.0, 0.75, 42);
  // Enough work to cross thousands of epoch boundaries; the pre-fix code
  // stalled forever at the first boundary whose division rounded down.
  const double finish = markov.finish_time(0.0, 50000.0);
  EXPECT_TRUE(std::isfinite(finish));
  EXPECT_GT(finish, 50000.0 * 0.9);
  sysmodel::IidEpochAvailability iid(law, 206.66666666666666 / 8.0, 7);
  EXPECT_TRUE(std::isfinite(iid.finish_time(0.0, 50000.0)));
}

}  // namespace
}  // namespace cdsf
