// Tests for the statistical comparison machinery (bootstrap intervals,
// paired comparisons with common random numbers) and the branch-and-bound
// exact Stage I solver.
#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "ra/heuristics.hpp"
#include "sim/loop_executor.hpp"
#include "stats/summary.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"
#include "workload/generator.hpp"

namespace cdsf {
namespace {

// ----------------------------------------------------- bootstrap median --

TEST(BootstrapMedian, CoversTheTrueMedianOfATightSample) {
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(100.0 + (i % 10));
  const stats::ConfidenceInterval ci =
      stats::bootstrap_median_interval(sample, 0.95, 1000, 7);
  EXPECT_TRUE(ci.contains(stats::percentile(sample, 0.5)));
  EXPECT_LT(ci.width(), 6.0);
}

TEST(BootstrapMedian, DeterministicGivenSeed) {
  const std::vector<double> sample = {1, 5, 2, 8, 3, 9, 4, 7, 6, 10};
  const auto a = stats::bootstrap_median_interval(sample, 0.9, 500, 3);
  const auto b = stats::bootstrap_median_interval(sample, 0.9, 500, 3);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapMedian, Validation) {
  EXPECT_THROW(stats::bootstrap_median_interval({}, 0.95, 100, 1), std::invalid_argument);
  EXPECT_THROW(stats::bootstrap_median_interval({1.0}, 0.95, 0, 1), std::invalid_argument);
  EXPECT_THROW(stats::bootstrap_median_interval({1.0}, 1.0, 100, 1), std::invalid_argument);
}

// ------------------------------------------------------ paired comparison --

TEST(PairedComparison, IdenticalSamplesNotSignificant) {
  std::vector<double> a;
  for (int i = 0; i < 50; ++i) a.push_back(10.0 + i * 0.1);
  const stats::PairedComparison cmp = stats::paired_median_comparison(a, a);
  EXPECT_DOUBLE_EQ(cmp.median_difference, 0.0);
  EXPECT_FALSE(cmp.significant);
}

TEST(PairedComparison, ConstantShiftIsSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(100.0 + i);
    b.push_back(95.0 + i);  // b is 5 lower everywhere
  }
  const stats::PairedComparison cmp = stats::paired_median_comparison(a, b);
  EXPECT_DOUBLE_EQ(cmp.median_difference, 5.0);
  EXPECT_TRUE(cmp.significant);
  EXPECT_GT(cmp.ci.lower, 0.0);
}

TEST(PairedComparison, Validation) {
  EXPECT_THROW(stats::paired_median_comparison({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(stats::paired_median_comparison({}, {}), std::invalid_argument);
}

// ------------------------------------------- technique comparison via CRN --

TEST(CompareTechniques, TechniqueAgainstItselfIsAWash) {
  const auto example = core::make_paper_example();
  const sim::TechniqueComparison cmp = sim::compare_techniques(
      example.batch.at(2), 1, 8, example.cases[2], dls::TechniqueId::kFAC,
      dls::TechniqueId::kFAC, sim::SimConfig{}, 11, 30);
  EXPECT_DOUBLE_EQ(cmp.makespan_difference.median_difference, 0.0);
  EXPECT_FALSE(cmp.makespan_difference.significant);
  EXPECT_DOUBLE_EQ(cmp.median_a, cmp.median_b);
}

TEST(CompareTechniques, StaticSignificantlySlowerThanAfUnderHeterogeneity) {
  const auto app = test::simple_app("a", 0, 4000, {8000.0, 8000.0});
  sim::SimConfig config;
  config.iteration_cov = 0.2;
  const sim::TechniqueComparison cmp = sim::compare_techniques(
      app, 1, 8, sysmodel::paper_case(4), dls::TechniqueId::kStatic, dls::TechniqueId::kAF,
      config, 5, 40);
  EXPECT_GT(cmp.makespan_difference.median_difference, 0.0);  // STATIC slower
  EXPECT_TRUE(cmp.makespan_difference.significant);
  EXPECT_GT(cmp.median_a, cmp.median_b);
}

TEST(CompareTechniques, Validation) {
  const auto example = core::make_paper_example();
  EXPECT_THROW(sim::compare_techniques(example.batch.at(0), 0, 2, example.cases[0],
                                       dls::TechniqueId::kFAC, dls::TechniqueId::kAF,
                                       sim::SimConfig{}, 1, 0),
               std::invalid_argument);
}

// --------------------------------------------------------- branch & bound --

TEST(BranchAndBound, MatchesExhaustiveOnThePaperInstance) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const ra::Allocation exact = ra::BranchAndBoundOptimal().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  const ra::Allocation exhaustive = ra::ExhaustiveOptimal().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  EXPECT_NEAR(evaluator.joint_probability(exact), evaluator.joint_probability(exhaustive),
              1e-9);
  EXPECT_EQ(exact, core::paper_robust_allocation());
}

TEST(BranchAndBound, MatchesExhaustiveOnRandomInstances) {
  const sysmodel::Platform platform({{"a", 4}, {"b", 8}});
  const sysmodel::AvailabilitySpec avail(
      "mixed", {pmf::Pmf::from_pulses({{0.6, 0.5}, {1.0, 0.5}}),
                pmf::Pmf::from_pulses({{0.3, 0.25}, {0.6, 0.25}, {1.0, 0.5}})});
  workload::BatchSpec spec;
  spec.applications = 4;
  spec.processor_types = 2;
  spec.min_mean_time = 2000.0;
  spec.max_mean_time = 12000.0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const workload::Batch batch = workload::generate_batch(spec, seed);
    const ra::RobustnessEvaluator evaluator(batch, avail, 9000.0);
    const double exact = evaluator.joint_probability(ra::BranchAndBoundOptimal().allocate(
        evaluator, platform, ra::CountRule::kPowerOfTwo));
    const double brute = evaluator.joint_probability(ra::ExhaustiveOptimal().allocate(
        evaluator, platform, ra::CountRule::kPowerOfTwo));
    EXPECT_NEAR(exact, brute, 1e-9) << "seed=" << seed;
  }
}

TEST(BranchAndBound, PrunesMostOfTheTree) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  ra::BranchAndBoundOptimal solver;
  (void)solver.allocate(evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  // Full enumeration visits 153 leaves plus internal nodes; the bound must
  // cut a meaningful share of them.
  EXPECT_GT(solver.last_nodes_visited(), 0u);
  EXPECT_LT(solver.last_nodes_visited(), 300u);
}

TEST(BranchAndBound, InfeasibleThrows) {
  workload::BatchSpec spec;
  spec.applications = 5;
  spec.processor_types = 1;
  const workload::Batch batch = workload::generate_batch(spec, 4);
  const sysmodel::Platform tiny({{"only", 3}});
  const sysmodel::AvailabilitySpec avail("u", {pmf::Pmf::delta(1.0)});
  const ra::RobustnessEvaluator evaluator(batch, avail, 1e9);
  EXPECT_THROW(ra::BranchAndBoundOptimal().allocate(evaluator, tiny, ra::CountRule::kAny),
               std::runtime_error);
}

}  // namespace
}  // namespace cdsf
