#include <gtest/gtest.h>

#include <cmath>

#include "cdsf/paper_example.hpp"
#include "ra/correlation.hpp"
#include "ra/robustness.hpp"
#include "stats/summary.hpp"
#include "sysmodel/correlation.hpp"

namespace cdsf {
namespace {

// ----------------------------------------------------- sampler marginals --

TEST(CorrelatedSampler, MarginalsPreservedAtAnyRho) {
  const auto spec = sysmodel::paper_case(1);
  for (double rho : {0.0, 0.5, 0.99}) {
    const sysmodel::CorrelatedAvailabilitySampler sampler(spec, rho);
    util::RngStream rng(7);
    stats::OnlineSummary type1;
    stats::OnlineSummary type2;
    for (int i = 0; i < 20000; ++i) {
      const std::vector<double> draw = sampler.sample(rng);
      type1.add(draw[0]);
      type2.add(draw[1]);
    }
    EXPECT_NEAR(type1.mean(), spec.expected(0), 0.01) << "rho=" << rho;
    EXPECT_NEAR(type2.mean(), spec.expected(1), 0.01) << "rho=" << rho;
  }
}

TEST(CorrelatedSampler, RhoOneCouplesQuantiles) {
  // At rho = 1 both types draw the same copula quantile: whenever type 1
  // takes its LOW pulse (u < 0.5), type 2 must be in its lower half too.
  const auto spec = sysmodel::paper_case(1);  // t1 {.75:.5, 1:.5}, t2 {.25:.25,.5:.25,1:.5}
  const sysmodel::CorrelatedAvailabilitySampler sampler(spec, 1.0);
  util::RngStream rng(9);
  for (int i = 0; i < 5000; ++i) {
    const std::vector<double> draw = sampler.sample(rng);
    if (draw[0] < 0.8) {
      EXPECT_LT(draw[1], 0.9) << "type1 low but type2 at its top pulse";
    } else {
      EXPECT_GT(draw[1], 0.9);
    }
  }
}

TEST(CorrelatedSampler, RhoZeroIsIndependent) {
  const auto spec = sysmodel::paper_case(1);
  const sysmodel::CorrelatedAvailabilitySampler sampler(spec, 0.0);
  util::RngStream rng(11);
  // Empirical correlation of the two types' draws should be ~0.
  stats::OnlineSummary a;
  stats::OnlineSummary b;
  double cross = 0.0;
  constexpr int kDraws = 20000;
  std::vector<std::pair<double, double>> draws;
  draws.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    const std::vector<double> draw = sampler.sample(rng);
    a.add(draw[0]);
    b.add(draw[1]);
    draws.emplace_back(draw[0], draw[1]);
  }
  for (const auto& [x, y] : draws) cross += (x - a.mean()) * (y - b.mean());
  const double corr = cross / (kDraws * a.stddev() * b.stddev());
  EXPECT_NEAR(corr, 0.0, 0.03);
}

TEST(CorrelatedSampler, Validation) {
  const auto spec = sysmodel::paper_case(1);
  EXPECT_THROW(sysmodel::CorrelatedAvailabilitySampler(spec, -0.1), std::invalid_argument);
  EXPECT_THROW(sysmodel::CorrelatedAvailabilitySampler(spec, 1.1), std::invalid_argument);
}

// ------------------------------------------------------ correlated phi_1 --

class CorrelatedPhiTest : public ::testing::Test {
 protected:
  CorrelatedPhiTest()
      : example_(core::make_paper_example()),
        evaluator_(example_.batch, example_.cases.front(), example_.deadline) {}

  core::PaperExample example_;
  ra::RobustnessEvaluator evaluator_;
};

TEST_F(CorrelatedPhiTest, RhoZeroMatchesAnalyticProductForm) {
  const ra::Allocation robust = core::paper_robust_allocation();
  const double analytic = evaluator_.joint_probability(robust);
  const ra::CorrelatedPhiEstimate estimate = ra::correlated_phi1(
      example_.batch, robust, example_.cases.front(), 0.0, example_.deadline, 20000, 5);
  EXPECT_NEAR(estimate.probability, analytic, 4.0 * estimate.standard_error + 0.005);
}

TEST_F(CorrelatedPhiTest, RhoZeroMatchesAnalyticForNaiveToo) {
  const ra::Allocation naive = core::paper_naive_allocation();
  const double analytic = evaluator_.joint_probability(naive);
  const ra::CorrelatedPhiEstimate estimate = ra::correlated_phi1(
      example_.batch, naive, example_.cases.front(), 0.0, example_.deadline, 20000, 6);
  EXPECT_NEAR(estimate.probability, analytic, 4.0 * estimate.standard_error + 0.005);
}

TEST_F(CorrelatedPhiTest, PositiveCorrelationRaisesJointSurvivalHere) {
  // For the robust allocation the failure risk is concentrated in app 3
  // (the 25% type-2 availability pulse). Positive correlation aligns the
  // apps' good and bad periods, so the probability that ALL meet the
  // deadline cannot drop — the failure events overlap instead of adding.
  const ra::Allocation robust = core::paper_robust_allocation();
  const double independent =
      ra::correlated_phi1(example_.batch, robust, example_.cases.front(), 0.0,
                          example_.deadline, 30000, 7)
          .probability;
  const double coupled =
      ra::correlated_phi1(example_.batch, robust, example_.cases.front(), 0.9,
                          example_.deadline, 30000, 7)
          .probability;
  EXPECT_GE(coupled, independent - 0.01);
}

TEST_F(CorrelatedPhiTest, MonotoneScanIsWellBehaved) {
  const ra::Allocation robust = core::paper_robust_allocation();
  for (double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ra::CorrelatedPhiEstimate estimate = ra::correlated_phi1(
        example_.batch, robust, example_.cases.front(), rho, example_.deadline, 4000, 9);
    EXPECT_GE(estimate.probability, 0.0);
    EXPECT_LE(estimate.probability, 1.0);
    EXPECT_GT(estimate.standard_error, 0.0);
  }
}

TEST_F(CorrelatedPhiTest, Validation) {
  const ra::Allocation robust = core::paper_robust_allocation();
  EXPECT_THROW(ra::correlated_phi1(example_.batch, ra::Allocation({{0, 1}}),
                                   example_.cases.front(), 0.5, example_.deadline, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(ra::correlated_phi1(example_.batch, robust, example_.cases.front(), 1.5,
                                   example_.deadline, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(ra::correlated_phi1(example_.batch, robust, example_.cases.front(), 0.5,
                                   example_.deadline, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(ra::correlated_phi1(example_.batch, robust, example_.cases.front(), 0.5,
                                   example_.deadline, 10, 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf
