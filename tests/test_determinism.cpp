// Byte-level determinism of the serialized observability outputs: the
// report and trace documents for the same (scenario, seed) must be
// IDENTICAL bytes run after run and — for the replicated reduction —
// across thread counts. This is the regression net behind the
// unordered-iteration lint rule: a nondeterministically ordered container
// anywhere in the report/trace emission paths shows up here as a byte
// diff long before a human notices reordered JSON keys.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/loop_executor.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

constexpr std::uint64_t kSeed = 20260805;

sim::SimConfig traced_config() {
  sim::SimConfig config;
  config.collect_trace = true;
  return config;
}

sim::RunResult run_once() {
  return sim::simulate_loop(test::simple_app("app", 100, 2000, {5.0, 3.0}), 0, 4,
                            test::full_availability(2), dls::TechniqueId::kFAC,
                            traced_config(), kSeed);
}

TEST(Determinism, RunReportBytesAreIdenticalAcrossRepeatedRuns) {
  const std::string first = obs::make_run_report("det", run_once(), 5000.0).dump(1);
  const std::string second = obs::make_run_report("det", run_once(), 5000.0).dump(1);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, TraceBytesAreIdenticalAcrossRepeatedRuns) {
  auto render = [] {
    obs::TraceSink sink;
    obs::TraceSink::RunOptions options;
    options.pid = 0;
    options.process_name = "det";
    sink.append_run(run_once(), options);
    return sink.to_string();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Determinism, ReplicationSummaryReportBytesAreThreadCountInvariant) {
  auto render = [](std::size_t threads) {
    const sim::ReplicationSummary summary = sim::simulate_replicated(
        test::simple_app("app", 100, 2000, {5.0, 3.0}), 0, 4, test::full_availability(2),
        dls::TechniqueId::kAWF_B, sim::SimConfig{}, kSeed, 16, 4000.0, threads);
    return obs::to_json(summary, 4000.0).dump(1);
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(2));
  EXPECT_EQ(serial, render(4));
}

TEST(Determinism, MetricsSnapshotOrderIsInsertionOrderInvariant) {
  // Same metric names registered in different orders must serialize the
  // same way (snapshot maps are ordered by name, not by registration).
  obs::MetricsRegistry forward(true);
  forward.add("z.counter", 3);
  forward.set_gauge("m.gauge", 1.5);
  forward.add("a.counter", 7);
  forward.observe("h.hist", 0.25);

  obs::MetricsRegistry reverse(true);
  reverse.observe("h.hist", 0.25);
  reverse.add("a.counter", 7);
  reverse.set_gauge("m.gauge", 1.5);
  reverse.add("z.counter", 3);

  EXPECT_EQ(forward.snapshot().to_json().dump(1), reverse.snapshot().to_json().dump(1));
}

}  // namespace
}  // namespace cdsf
