// Tests for the diurnal availability process and its scheduling
// consequences (predictable drift defeats frozen weights).
#include <gtest/gtest.h>

#include <cmath>

#include "sysmodel/availability.hpp"
#include "sysmodel/cases.hpp"

namespace cdsf::sysmodel {
namespace {

TEST(Diurnal, OscillatesAroundTheMean) {
  DiurnalAvailability process(0.6, 0.3, 1000.0);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    const double a = process.availability_at(i * 1.0);
    lo = std::min(lo, a);
    hi = std::max(hi, a);
    sum += a;
  }
  EXPECT_NEAR(sum / kSamples, 0.6, 0.02);  // zero-mean sine over one period
  EXPECT_LT(lo, 0.35);
  EXPECT_GT(hi, 0.85);
  EXPECT_GT(lo, 0.0);
  EXPECT_LE(hi, 1.0);
}

TEST(Diurnal, PeriodicAcrossPeriods) {
  DiurnalAvailability process(0.5, 0.2, 400.0);
  for (double t : {13.0, 120.0, 333.0}) {
    EXPECT_NEAR(process.availability_at(t), process.availability_at(t + 400.0), 1e-12);
    EXPECT_NEAR(process.availability_at(t), process.availability_at(t + 4000.0), 1e-12);
  }
}

TEST(Diurnal, PhaseShiftsTheCycle) {
  DiurnalAvailability base(0.5, 0.2, 400.0, 0.0);
  DiurnalAvailability shifted(0.5, 0.2, 400.0, 100.0);
  EXPECT_NEAR(base.availability_at(150.0), shifted.availability_at(50.0), 1e-12);
}

TEST(Diurnal, PiecewiseConstantSteps) {
  DiurnalAvailability process(0.5, 0.2, 320.0, 0.0, 32);  // 10-unit steps
  const double a = process.availability_at(5.0);
  EXPECT_DOUBLE_EQ(process.availability_at(9.9), a);
  EXPECT_DOUBLE_EQ(process.next_change_after(5.0), 10.0);
  EXPECT_NE(process.availability_at(15.0), a);
}

TEST(Diurnal, WorkIntegralOverOnePeriodMatchesTheMean) {
  DiurnalAvailability process(0.55, 0.25, 500.0);
  EXPECT_NEAR(process.work_delivered(0.0, 500.0), 0.55 * 500.0, 0.5);
}

TEST(Diurnal, Validation) {
  EXPECT_THROW(DiurnalAvailability(0.5, 0.2, 0.0), std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.5, 0.2, 100.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.5, -0.1, 100.0), std::invalid_argument);
  EXPECT_THROW(DiurnalAvailability(0.2, 0.3, 100.0), std::invalid_argument);  // dips <= 0
  EXPECT_THROW(DiurnalAvailability(0.9, 0.3, 100.0), std::invalid_argument);  // exceeds 1
  EXPECT_NO_THROW(DiurnalAvailability(0.5, 0.5 - 1e-6, 100.0));
}

TEST(Diurnal, FinishTimeTracksTheCycle) {
  // Starting at the trough vs the crest of the cycle changes the finish
  // time of the same work.
  DiurnalAvailability process(0.5, 0.4, 1000.0);
  const double from_crest = process.finish_time(700.0, 50.0) - 700.0;   // high availability
  const double from_trough = process.finish_time(200.0, 50.0) - 200.0;  // low availability
  EXPECT_LT(from_crest, from_trough);
}

}  // namespace
}  // namespace cdsf::sysmodel

#include "sim/loop_executor.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

SimConfig diurnal_config() {
  SimConfig config;
  config.availability_mode = AvailabilityMode::kDiurnal;
  config.diurnal_amplitude = 0.35;
  config.diurnal_period = 1500.0;
  config.iteration_cov = 0.1;
  return config;
}

TEST(DiurnalSim, RunsToCompletionAndConserves) {
  const auto app = test::simple_app("d", 50, 1950, {2000.0});
  const RunResult run = simulate_loop(app, 0, 4, sysmodel::paper_case(1),
                                      dls::TechniqueId::kFAC, diurnal_config(), 3);
  std::int64_t total = 0;
  for (const WorkerStats& w : run.workers) total += w.iterations;
  EXPECT_EQ(total, 1950);
  EXPECT_GT(run.makespan, 0.0);
}

TEST(DiurnalSim, AdaptiveTracksTheCycleBetterThanFrozenWeights) {
  // Workers' phases are spread around the cycle: who is fast ROTATES during
  // the run. WF freezes the t = 0 snapshot; the chunk-adaptive techniques
  // re-estimate continuously and must win on average.
  const auto app = test::simple_app("d", 0, 8000, {8000.0});
  const SimConfig config = diurnal_config();
  const sysmodel::AvailabilitySpec half("half", {pmf::Pmf::delta(0.55)});
  double wf = 0.0;
  double awf_c = 0.0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    wf += simulate_loop(app, 0, 8, half, dls::TechniqueId::kWF, config, 100 + seed).makespan;
    awf_c += simulate_loop(app, 0, 8, half, dls::TechniqueId::kAWF_C, config, 100 + seed)
                 .makespan;
  }
  EXPECT_LT(awf_c, wf);
}

TEST(DiurnalSim, DeterministicGivenSeed) {
  const auto app = test::simple_app("d", 0, 1000, {1000.0});
  const RunResult a = simulate_loop(app, 0, 4, sysmodel::paper_case(1),
                                    dls::TechniqueId::kAF, diurnal_config(), 9);
  const RunResult b = simulate_loop(app, 0, 4, sysmodel::paper_case(1),
                                    dls::TechniqueId::kAF, diurnal_config(), 9);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(DiurnalSim, ConfigValidation) {
  const auto app = test::simple_app("d", 0, 10, {10.0});
  SimConfig bad = diurnal_config();
  bad.diurnal_period = 0.0;
  EXPECT_THROW(simulate_loop(app, 0, 2, sysmodel::paper_case(1), dls::TechniqueId::kSS, bad, 1),
               std::invalid_argument);
  bad = diurnal_config();
  bad.diurnal_amplitude = -0.1;
  EXPECT_THROW(simulate_loop(app, 0, 2, sysmodel::paper_case(1), dls::TechniqueId::kSS, bad, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sim
