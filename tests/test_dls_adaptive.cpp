#include <gtest/gtest.h>

#include <cmath>

#include "dls/adaptive.hpp"

namespace cdsf::dls {
namespace {

TechniqueParams params(std::size_t workers, std::int64_t total) {
  TechniqueParams p;
  p.workers = workers;
  p.total_iterations = total;
  return p;
}

SchedulingContext ctx(std::int64_t remaining, std::size_t worker) {
  return SchedulingContext{remaining, worker, 0.0};
}

ChunkResult chunk_result(std::size_t worker, std::int64_t iterations, double per_iter_time,
                         double overhead = 0.0) {
  const double exec = per_iter_time * static_cast<double>(iterations);
  return ChunkResult{worker, iterations, exec, exec + overhead};
}

// ---------------------------------------------------------------- names --

TEST(AwfVariants, Names) {
  EXPECT_EQ(awf_variant_name(AwfVariant::kTimestep), "AWF");
  EXPECT_EQ(awf_variant_name(AwfVariant::kBatch), "AWF-B");
  EXPECT_EQ(awf_variant_name(AwfVariant::kChunk), "AWF-C");
  EXPECT_EQ(awf_variant_name(AwfVariant::kBatchTotal), "AWF-D");
  EXPECT_EQ(awf_variant_name(AwfVariant::kChunkTotal), "AWF-E");
}

// ---------------------------------------------------------------- AWF-B --

TEST(AwfB, StartsLikeFactoring) {
  AdaptiveWeightedFactoring technique(params(4, 1000), AwfVariant::kBatch);
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 125);
}

TEST(AwfB, AdaptsWeightsAtBatchBoundary) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kBatch);
  // Batch 1: both workers take 250.
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 250);
  EXPECT_EQ(technique.next_chunk(ctx(750, 1)), 250);
  // Worker 0 is 4x faster (per-iteration time 1 vs 4).
  technique.record(chunk_result(0, 250, 1.0));
  technique.record(chunk_result(1, 250, 4.0));
  // Batch 2 (remaining 500, batch 250): weights 1.6 / 0.4.
  const std::int64_t fast = technique.next_chunk(ctx(500, 0));
  EXPECT_EQ(fast, 200);  // 250 * 1.6 / 2
  const std::int64_t slow = technique.next_chunk(ctx(500 - fast, 1));
  EXPECT_EQ(slow, 50);   // 250 * 0.4 / 2
}

TEST(AwfB, WeightsFrozenWithinBatch) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kBatch);
  const std::int64_t first = technique.next_chunk(ctx(1000, 0));
  // Feedback arrives mid-batch; the second chunk of the same batch must
  // still use the old (uniform) weights.
  technique.record(chunk_result(0, first, 0.1));
  EXPECT_EQ(technique.next_chunk(ctx(1000 - first, 1)), first);
}

TEST(AwfB, CurrentWeightsNormalizedMeanOne) {
  AdaptiveWeightedFactoring technique(params(3, 900), AwfVariant::kBatch);
  technique.next_chunk(ctx(900, 0));
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 2.0));
  technique.record(chunk_result(2, 100, 4.0));
  // Force weight refresh by draining the batch.
  technique.next_chunk(ctx(800, 1));
  technique.next_chunk(ctx(650, 2));
  technique.next_chunk(ctx(500, 0));
  const std::vector<double> weights = technique.current_weights();
  double sum = 0.0;
  for (double w : weights) sum += w;
  EXPECT_NEAR(sum, 3.0, 1e-9);
}

// ---------------------------------------------------------------- AWF-C --

TEST(AwfC, RefreshesEveryRequest) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kChunk);
  // No data: uniform weights, chunk = (1000/2) * 1 / 2 = 250.
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 250);
  technique.record(chunk_result(0, 250, 1.0));
  technique.record(chunk_result(1, 10, 5.0));
  // Worker 0 rate 1, worker 1 rate 0.2 -> weights 5/3 and 1/3.
  // Chunk for worker 0 at remaining 740: (370) * (5/3) / 2 ~ 308.
  const std::int64_t chunk = technique.next_chunk(ctx(740, 0));
  EXPECT_NEAR(static_cast<double>(chunk), 308.0, 2.0);
}

TEST(AwfC, SlowWorkerGetsSmallerChunksImmediately) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kChunk);
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 9.0));
  const std::int64_t fast = technique.next_chunk(ctx(1000, 0));
  const std::int64_t slow = technique.next_chunk(ctx(1000, 1));
  EXPECT_GT(fast, 5 * slow);
}

// ------------------------------------------------------------- AWF-D/E ---

TEST(AwfD, UsesTotalTimeIncludingOverhead) {
  AdaptiveWeightedFactoring by_exec(params(2, 1000), AwfVariant::kBatch);
  AdaptiveWeightedFactoring by_total(params(2, 1000), AwfVariant::kBatchTotal);
  // Same execution time, but worker 1 pays huge overhead.
  for (auto* technique : {&by_exec, &by_total}) {
    technique->next_chunk(ctx(1000, 0));
    technique->next_chunk(ctx(750, 1));
    technique->record(chunk_result(0, 250, 1.0, 0.0));
    technique->record(chunk_result(1, 250, 1.0, 500.0));
    technique->next_chunk(ctx(500, 0));  // start batch 2 -> refresh weights
  }
  // Execution-time variant sees equal workers; total-time variant penalizes
  // worker 1.
  EXPECT_NEAR(by_exec.current_weights()[1], 1.0, 1e-9);
  EXPECT_LT(by_total.current_weights()[1], 1.0);
}

TEST(AwfE, ChunkVariantUsesTotalTime) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kChunkTotal);
  technique.record(chunk_result(0, 100, 1.0, 0.0));
  technique.record(chunk_result(1, 100, 1.0, 300.0));
  const std::int64_t fast = technique.next_chunk(ctx(1000, 0));
  const std::int64_t slow = technique.next_chunk(ctx(1000, 1));
  EXPECT_GT(fast, slow);
}

// ------------------------------------------------------------------ AWF --

TEST(AwfTimestep, WeightsOnlyChangeAcrossTimesteps) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kTimestep);
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 3.0));
  // Within the timestep, weights stay uniform.
  EXPECT_DOUBLE_EQ(technique.current_weights()[0], 1.0);
  technique.advance_timestep();
  EXPECT_GT(technique.current_weights()[0], 1.0);
  EXPECT_LT(technique.current_weights()[1], 1.0);
}

TEST(AwfTimestep, ResetKeepsLearnedWeights) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kTimestep);
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 3.0));
  technique.advance_timestep();
  const std::vector<double> learned = technique.current_weights();
  technique.reset();  // new execution of the same timestep-based app
  EXPECT_EQ(technique.current_weights(), learned);
}

TEST(AwfB, ResetClearsMeasurements) {
  AdaptiveWeightedFactoring technique(params(2, 1000), AwfVariant::kBatch);
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 9.0));
  technique.reset();
  EXPECT_DOUBLE_EQ(technique.current_weights()[0], 1.0);
  EXPECT_DOUBLE_EQ(technique.current_weights()[1], 1.0);
}

TEST(Awf, RecordValidation) {
  AdaptiveWeightedFactoring technique(params(2, 100), AwfVariant::kBatch);
  EXPECT_THROW(technique.record(chunk_result(5, 10, 1.0)), std::out_of_range);
  // Zero iterations / non-positive time ignored, not fatal.
  EXPECT_NO_THROW(technique.record(ChunkResult{0, 0, 1.0, 1.0}));
  EXPECT_NO_THROW(technique.record(ChunkResult{0, 10, 0.0, 0.0}));
}

// ------------------------------------------------------------------- AF --

TEST(Af, ChunkForTargetSolvesQuadratic) {
  // K * mu + sigma * sqrt(K) = T must hold at the returned K.
  for (double mu : {0.5, 1.0, 2.0}) {
    for (double sigma : {0.0, 0.1, 1.0}) {
      for (double target : {10.0, 100.0, 5000.0}) {
        const double k = AdaptiveFactoring::chunk_for_target(mu, sigma, target);
        EXPECT_NEAR(k * mu + sigma * std::sqrt(k), target, 1e-6 * target)
            << "mu=" << mu << " sigma=" << sigma << " T=" << target;
      }
    }
  }
}

TEST(Af, ZeroVarianceReducesToDeterministicShare) {
  EXPECT_NEAR(AdaptiveFactoring::chunk_for_target(2.0, 0.0, 100.0), 50.0, 1e-9);
}

TEST(Af, HigherVarianceShrinksChunk) {
  const double low = AdaptiveFactoring::chunk_for_target(1.0, 0.1, 100.0);
  const double high = AdaptiveFactoring::chunk_for_target(1.0, 5.0, 100.0);
  EXPECT_LT(high, low);
}

TEST(Af, ChunkForTargetValidation) {
  EXPECT_THROW(AdaptiveFactoring::chunk_for_target(0.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveFactoring::chunk_for_target(1.0, -1.0, 10.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(AdaptiveFactoring::chunk_for_target(1.0, 1.0, 0.0), 0.0);
}

TEST(Af, BootstrapIsFactoringShare) {
  AdaptiveFactoring technique(params(4, 1000));
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 125);  // R / (2P)
}

TEST(Af, EqualWorkersGetFactoringLikeChunks) {
  AdaptiveFactoring technique(params(2, 1000));
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(0, 100, 1.0));
  technique.record(chunk_result(1, 100, 1.0));
  technique.record(chunk_result(1, 100, 1.0));
  // Both workers identical, zero observed variance: chunk ~ R/2 / 2 = 250.
  EXPECT_NEAR(static_cast<double>(technique.next_chunk(ctx(1000, 0))), 250.0, 3.0);
}

TEST(Af, SlowWorkerGetsSmallerChunk) {
  AdaptiveFactoring technique(params(2, 2000));
  for (int i = 0; i < 3; ++i) {
    technique.record(chunk_result(0, 100, 1.0));
    technique.record(chunk_result(1, 100, 5.0));
  }
  const std::int64_t fast = technique.next_chunk(ctx(2000, 0));
  const std::int64_t slow = technique.next_chunk(ctx(2000, 1));
  EXPECT_GT(fast, 3 * slow);
}

TEST(Af, NoisyWorkerGetsSmallerChunkThanSteadyOne) {
  AdaptiveFactoring technique(params(2, 2000));
  // Same mean rate, very different variability.
  for (int i = 0; i < 6; ++i) {
    technique.record(chunk_result(0, 100, 1.0));
    technique.record(chunk_result(1, 100, (i % 2 == 0) ? 0.2 : 1.8));
  }
  const std::int64_t steady = technique.next_chunk(ctx(2000, 0));
  const std::int64_t noisy = technique.next_chunk(ctx(2000, 1));
  EXPECT_LT(noisy, steady);
}

TEST(Af, ResetClearsEstimates) {
  AdaptiveFactoring technique(params(2, 1000));
  technique.record(chunk_result(0, 100, 9.0));
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 250);  // bootstrap again
}

TEST(Af, NeverExceedsRemaining) {
  AdaptiveFactoring technique(params(2, 100));
  technique.record(chunk_result(0, 10, 0.001));  // extremely fast worker
  const std::int64_t chunk = technique.next_chunk(ctx(7, 0));
  EXPECT_GE(chunk, 1);
  EXPECT_LE(chunk, 7);
}

}  // namespace
}  // namespace cdsf::dls
