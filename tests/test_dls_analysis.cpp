// Tests for the offline chunk-schedule analyzer and the new confidence
// interval statistics.
#include <gtest/gtest.h>

#include "dls/analysis.hpp"
#include "stats/summary.hpp"

namespace cdsf {
namespace {

// --------------------------------------------------------- schedule maps --

TEST(ScheduleAnalysis, StaticIsOneChunkPerWorker) {
  const dls::ScheduleAnalysis analysis =
      dls::analyze_schedule(dls::TechniqueId::kStatic, 1000, 4);
  EXPECT_EQ(analysis.chunk_count, 4u);
  EXPECT_EQ(analysis.largest_chunk, 250);
  EXPECT_EQ(analysis.smallest_chunk, 250);
  EXPECT_EQ(analysis.distinct_sizes, 1u);
  EXPECT_EQ(analysis.worker_chunk_imbalance, 0u);
}

TEST(ScheduleAnalysis, SsIsOneIterationPerChunk) {
  const dls::ScheduleAnalysis analysis = dls::analyze_schedule(dls::TechniqueId::kSS, 500, 4);
  EXPECT_EQ(analysis.chunk_count, 500u);
  EXPECT_EQ(analysis.largest_chunk, 1);
  EXPECT_EQ(analysis.distinct_sizes, 1u);
}

TEST(ScheduleAnalysis, FacShowsLogBatchStructure) {
  // FAC2 on 1024 iterations / 4 workers: chunk sizes 128, 64, 32, ..., 1 —
  // about log2(N / P) + 1 distinct sizes.
  const dls::ScheduleAnalysis analysis = dls::analyze_schedule(dls::TechniqueId::kFAC, 1024, 4);
  EXPECT_EQ(analysis.largest_chunk, 128);
  EXPECT_GE(analysis.distinct_sizes, 7u);
  EXPECT_LE(analysis.distinct_sizes, 9u);
}

TEST(ScheduleAnalysis, GssChunksAreRemainingOverWorkers) {
  const dls::ScheduleAnalysis analysis = dls::analyze_schedule(dls::TechniqueId::kGSS, 1000, 4);
  ASSERT_FALSE(analysis.chunks.empty());
  EXPECT_EQ(analysis.chunks.front().size, 250);
  for (const dls::ScheduledChunk& chunk : analysis.chunks) {
    EXPECT_EQ(chunk.size, (chunk.remaining_before + 3) / 4);
  }
}

TEST(ScheduleAnalysis, EveryTechniqueConservesIterations) {
  for (dls::TechniqueId id : dls::all_techniques()) {
    for (std::int64_t n : {13, 256, 4097}) {
      const dls::ScheduleAnalysis analysis = dls::analyze_schedule(id, n, 8);
      std::int64_t sum = 0;
      for (const dls::ScheduledChunk& chunk : analysis.chunks) sum += chunk.size;
      EXPECT_EQ(sum, n) << dls::technique_name(id) << " n=" << n;
      EXPECT_GE(analysis.smallest_chunk, 1) << dls::technique_name(id);
    }
  }
}

TEST(ScheduleAnalysis, ChunkCountOrderingMatchesOverheadIntuition) {
  // SS dispatches most, STATIC least; factoring sits in between.
  const auto ss = dls::analyze_schedule(dls::TechniqueId::kSS, 2048, 8);
  const auto fac = dls::analyze_schedule(dls::TechniqueId::kFAC, 2048, 8);
  const auto stat = dls::analyze_schedule(dls::TechniqueId::kStatic, 2048, 8);
  EXPECT_GT(ss.chunk_count, 10 * fac.chunk_count);
  EXPECT_GT(fac.chunk_count, stat.chunk_count);
}

TEST(ScheduleAnalysis, UniformFeedbackKeepsAdaptiveWeightsUniform) {
  // With perfectly uniform synthetic feedback, AWF-B must behave like FAC.
  const auto awfb = dls::analyze_schedule(dls::TechniqueId::kAWF_B, 4096, 8);
  const auto fac = dls::analyze_schedule(dls::TechniqueId::kFAC, 4096, 8);
  EXPECT_EQ(awfb.chunk_count, fac.chunk_count);
  EXPECT_EQ(awfb.largest_chunk, fac.largest_chunk);
}

TEST(ScheduleAnalysis, MeanChunkTimesCountIsTotal) {
  const auto analysis = dls::analyze_schedule(dls::TechniqueId::kTSS, 3000, 6);
  EXPECT_NEAR(analysis.mean_chunk * static_cast<double>(analysis.chunk_count), 3000.0, 1e-6);
}

TEST(ScheduleAnalysis, Validation) {
  EXPECT_THROW(dls::analyze_schedule(dls::TechniqueId::kSS, 0, 4), std::invalid_argument);
  EXPECT_THROW(dls::analyze_schedule(dls::TechniqueId::kSS, 100, 0), std::invalid_argument);
}

// ---------------------------------------------------- confidence intervals --

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::uint64_t successes : {0ull, 10ull, 50ull, 100ull}) {
    const auto ci = stats::wilson_interval(successes, 100);
    const double p = static_cast<double>(successes) / 100.0;
    EXPECT_TRUE(ci.contains(p)) << "p=" << p;
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
  }
}

TEST(WilsonInterval, KnownValue) {
  // 50/100 at 95%: Wilson gives roughly [0.404, 0.596].
  const auto ci = stats::wilson_interval(50, 100, 0.95);
  EXPECT_NEAR(ci.lower, 0.404, 0.002);
  EXPECT_NEAR(ci.upper, 0.596, 0.002);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpperBound) {
  const auto ci = stats::wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.15);
}

TEST(WilsonInterval, ShrinksWithSampleSize) {
  const auto small = stats::wilson_interval(5, 10);
  const auto large = stats::wilson_interval(500, 1000);
  EXPECT_LT(large.width(), small.width());
}

TEST(WilsonInterval, Validation) {
  EXPECT_THROW(stats::wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW(stats::wilson_interval(5, 4), std::invalid_argument);
  EXPECT_THROW(stats::wilson_interval(1, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(stats::wilson_interval(1, 10, 1.0), std::invalid_argument);
}

TEST(MeanInterval, SymmetricAroundMean) {
  const auto ci = stats::mean_interval(100.0, 10.0, 25);
  EXPECT_NEAR((ci.lower + ci.upper) / 2.0, 100.0, 1e-12);
  // margin = 1.96 * 10 / 5 = 3.92.
  EXPECT_NEAR(ci.upper - 100.0, 3.92, 0.01);
}

TEST(MeanInterval, HigherConfidenceIsWider) {
  const auto ci90 = stats::mean_interval(0.0, 1.0, 100, 0.90);
  const auto ci99 = stats::mean_interval(0.0, 1.0, 100, 0.99);
  EXPECT_GT(ci99.width(), ci90.width());
}

TEST(MeanInterval, Validation) {
  EXPECT_THROW(stats::mean_interval(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(stats::mean_interval(0.0, -1.0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf
