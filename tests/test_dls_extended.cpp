#include <gtest/gtest.h>

#include <numeric>

#include "dls/analysis.hpp"
#include "dls/extended.hpp"
#include "dls/nonadaptive.hpp"

namespace cdsf::dls {
namespace {

TechniqueParams params(std::size_t workers, std::int64_t total) {
  TechniqueParams p;
  p.workers = workers;
  p.total_iterations = total;
  return p;
}

SchedulingContext ctx(std::int64_t remaining, std::size_t worker) {
  return SchedulingContext{remaining, worker, 0.0};
}

// ------------------------------------------------------------------ TFSS --

TEST(Tfss, FirstBatchChunkIsAverageOfFirstPTssChunks) {
  // N = 1000, P = 4: TSS starts at 125 and decreases by ~1 per step; the
  // first TFSS plateau is the mean of the first 4 TSS chunks.
  TrapezoidSelfScheduling tss(params(4, 1000));
  double expected = 0.0;
  std::int64_t remaining = 1000;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t chunk = tss.next_chunk(ctx(remaining, 0));
    expected += static_cast<double>(chunk);
    remaining -= chunk;
  }
  TrapezoidFactoring tfss(params(4, 1000));
  EXPECT_NEAR(static_cast<double>(tfss.next_chunk(ctx(1000, 0))), expected / 4.0, 1.0);
}

TEST(Tfss, BatchPlateausDecrease) {
  TrapezoidFactoring technique(params(4, 2000));
  std::int64_t remaining = 2000;
  std::vector<std::int64_t> plateau_sizes;
  std::int64_t previous = 1 << 30;
  while (remaining > 0) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, 0));
    if (chunk != previous) {
      plateau_sizes.push_back(chunk);
      previous = chunk;
    }
    remaining -= chunk;
  }
  EXPECT_GE(plateau_sizes.size(), 3u);
  for (std::size_t i = 1; i < plateau_sizes.size(); ++i) {
    EXPECT_LE(plateau_sizes[i], plateau_sizes[i - 1]);
  }
}

TEST(Tfss, DrainsExactly) {
  const ScheduleAnalysis analysis = analyze_schedule(TechniqueId::kTFSS, 3333, 5);
  std::int64_t sum = 0;
  for (const ScheduledChunk& chunk : analysis.chunks) sum += chunk.size;
  EXPECT_EQ(sum, 3333);
}

TEST(Tfss, ResetRestartsSchedule) {
  TrapezoidFactoring technique(params(4, 1000));
  const std::int64_t first = technique.next_chunk(ctx(1000, 0));
  technique.next_chunk(ctx(800, 1));
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), first);
}

// ------------------------------------------------------------------- RND --

TEST(Rnd, ChunksStayWithinPublishedBounds) {
  RandomChunking technique(params(4, 10000));
  EXPECT_EQ(technique.lower_bound(), 25);    // N / (100 P)
  EXPECT_EQ(technique.upper_bound(), 1250);  // N / (2 P)
  for (int i = 0; i < 200; ++i) {
    const std::int64_t chunk = technique.next_chunk(ctx(10000, 0));
    EXPECT_GE(chunk, 25);
    EXPECT_LE(chunk, 1250);
  }
}

TEST(Rnd, DeterministicGivenSeedAndResettable) {
  TechniqueParams p = params(4, 10000);
  p.seed = 99;
  RandomChunking a(p);
  RandomChunking b(p);
  std::vector<std::int64_t> first;
  for (int i = 0; i < 20; ++i) {
    const std::int64_t chunk = a.next_chunk(ctx(10000, 0));
    EXPECT_EQ(chunk, b.next_chunk(ctx(10000, 0)));
    first.push_back(chunk);
  }
  a.reset();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_chunk(ctx(10000, 0)), first[i]);
}

TEST(Rnd, TinyLoopBoundsClampSanely) {
  RandomChunking technique(params(8, 10));
  EXPECT_EQ(technique.lower_bound(), 1);
  EXPECT_GE(technique.upper_bound(), 1);
  const std::int64_t chunk = technique.next_chunk(ctx(3, 0));
  EXPECT_GE(chunk, 1);
  EXPECT_LE(chunk, 3);
}

// ------------------------------------------------------------------- PLS --

TEST(Pls, StaticPrefixThenGuidedRemainder) {
  TechniqueParams p = params(4, 1000);
  p.static_workload_ratio = 0.5;
  PerformanceLoopScheduling technique(p);
  EXPECT_EQ(technique.static_chunk(), 125);  // 0.5 * 1000 / 4
  std::int64_t remaining = 1000;
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(technique.next_chunk(ctx(remaining, w)), 125) << "w=" << w;
    remaining -= 125;
  }
  // Remainder is GSS: ceil(500 / 4) = 125 for the first dynamic request.
  EXPECT_EQ(technique.next_chunk(ctx(remaining, 0)), 125);
  EXPECT_EQ(technique.next_chunk(ctx(300, 1)), 75);
}

TEST(Pls, SwrZeroDegradesToGss) {
  TechniqueParams p = params(4, 1000);
  p.static_workload_ratio = 0.0;
  PerformanceLoopScheduling pls(p);
  GuidedSelfScheduling gss(params(4, 1000));
  std::int64_t remaining = 1000;
  for (int i = 0; i < 10 && remaining > 0; ++i) {
    const std::size_t w = static_cast<std::size_t>(i) % 4;
    const std::int64_t a = pls.next_chunk(ctx(remaining, w));
    const std::int64_t b = gss.next_chunk(ctx(remaining, w));
    EXPECT_EQ(a, b);
    remaining -= a;
  }
}

TEST(Pls, SwrOneMatchesStaticShares) {
  TechniqueParams p = params(4, 1000);
  p.static_workload_ratio = 1.0;
  PerformanceLoopScheduling technique(p);
  std::int64_t remaining = 1000;
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(technique.next_chunk(ctx(remaining, w)), 250);
    remaining -= 250;
  }
  EXPECT_EQ(remaining, 0);
}

TEST(Pls, Validation) {
  TechniqueParams p = params(4, 1000);
  p.static_workload_ratio = 1.5;
  EXPECT_THROW(PerformanceLoopScheduling{p}, std::invalid_argument);
  PerformanceLoopScheduling ok(params(4, 1000));
  EXPECT_THROW(ok.next_chunk(ctx(10, 9)), std::out_of_range);
}

TEST(Pls, ResetRestoresStaticShares) {
  PerformanceLoopScheduling technique(params(2, 100));
  const std::int64_t first = technique.next_chunk(ctx(100, 0));
  technique.next_chunk(ctx(100 - first, 0));  // dynamic now
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(100, 0)), first);
}

}  // namespace
}  // namespace cdsf::dls
