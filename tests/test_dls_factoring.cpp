#include <gtest/gtest.h>

#include <numeric>

#include "dls/factoring.hpp"

namespace cdsf::dls {
namespace {

TechniqueParams params(std::size_t workers, std::int64_t total) {
  TechniqueParams p;
  p.workers = workers;
  p.total_iterations = total;
  return p;
}

SchedulingContext ctx(std::int64_t remaining, std::size_t worker) {
  return SchedulingContext{remaining, worker, 0.0};
}

// ------------------------------------------------------------------- FAC --

TEST(Fac, DefaultIsFactorTwo) {
  Factoring technique(params(4, 1000));
  EXPECT_DOUBLE_EQ(technique.batch_fraction(), 0.5);
}

TEST(Fac, FirstBatchChunksAreHalfShare) {
  Factoring technique(params(4, 1000));
  // First batch: 500 iterations -> 4 chunks of 125.
  std::int64_t remaining = 1000;
  for (std::size_t w = 0; w < 4; ++w) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, w));
    EXPECT_EQ(chunk, 125);
    remaining -= chunk;
  }
  // Second batch: 250 -> chunks of 63 (ceil).
  EXPECT_EQ(technique.next_chunk(ctx(remaining, 0)), 63);
}

TEST(Fac, BatchSizesHalve) {
  Factoring technique(params(2, 1024));
  std::int64_t remaining = 1024;
  std::vector<std::int64_t> firsts;
  while (remaining > 0) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, 0));
    firsts.push_back(chunk);
    remaining -= chunk;
  }
  // First chunk of each batch halves: 256, 256, 128, 128, 64, ...
  EXPECT_EQ(firsts[0], 256);
  EXPECT_EQ(firsts[1], 256);
  EXPECT_EQ(firsts[2], 128);
  EXPECT_EQ(firsts[3], 128);
  const std::int64_t scheduled = std::accumulate(firsts.begin(), firsts.end(), std::int64_t{0});
  EXPECT_EQ(scheduled, 1024);
}

TEST(Fac, ProbabilisticFractionRequiresOptIn) {
  TechniqueParams p = params(8, 7600);
  p.mean_iteration_time = 1.0;
  p.stddev_iteration_time = 0.3;
  Factoring fac2(p);
  EXPECT_DOUBLE_EQ(fac2.batch_fraction(), 0.5);

  p.probabilistic_factoring = true;
  Factoring fac_p(p);
  // Low iteration variance => fraction approaches 1 (near-static batches).
  EXPECT_GT(fac_p.batch_fraction(), 0.9);
  EXPECT_LE(fac_p.batch_fraction(), 1.0);
}

TEST(Fac, ProbabilisticFractionShrinksWithVariance) {
  TechniqueParams p = params(8, 7600);
  p.probabilistic_factoring = true;
  p.mean_iteration_time = 1.0;
  p.stddev_iteration_time = 0.3;
  const double low_var = Factoring(p).batch_fraction();
  p.stddev_iteration_time = 10.0;
  const double high_var = Factoring(p).batch_fraction();
  EXPECT_LT(high_var, low_var);
}

TEST(Fac, ResetStartsNewSchedule) {
  Factoring technique(params(4, 1000));
  technique.next_chunk(ctx(1000, 0));
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 125);
}

TEST(Fac, NeverExceedsRemaining) {
  Factoring technique(params(4, 10));
  std::int64_t remaining = 10;
  while (remaining > 0) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, 0));
    EXPECT_GE(chunk, 1);
    EXPECT_LE(chunk, remaining);
    remaining -= chunk;
  }
}

// -------------------------------------------------------------------- WF --

TEST(Wf, UniformWeightsMatchFactoring) {
  WeightedFactoring wf(params(4, 1000));
  Factoring fac(params(4, 1000));
  std::int64_t remaining = 1000;
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(wf.next_chunk(ctx(remaining, w)), fac.next_chunk(ctx(remaining, w)));
    remaining -= 125;
  }
}

TEST(Wf, WeightsScaleChunks) {
  TechniqueParams p = params(2, 1000);
  p.weights = {3.0, 1.0};  // worker 0 is 3x as capable
  WeightedFactoring technique(p);
  // Batch = 500; worker 0 share = 500 * (1.5/2) = 375, worker 1 = 125.
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 375);
  EXPECT_EQ(technique.next_chunk(ctx(625, 1)), 125);
}

TEST(Wf, WeightsExposedNormalizedToMeanOne) {
  TechniqueParams p = params(2, 100);
  p.weights = {2.0, 6.0};
  WeightedFactoring technique(p);
  ASSERT_EQ(technique.weights().size(), 2u);
  EXPECT_DOUBLE_EQ(technique.weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(technique.weights()[1], 1.5);
}

TEST(Wf, SlowWorkerStillGetsAtLeastOne) {
  TechniqueParams p = params(2, 100);
  p.weights = {1000.0, 0.001};
  WeightedFactoring technique(p);
  EXPECT_GE(technique.next_chunk(ctx(100, 1)), 1);
}

TEST(Wf, BatchBookkeepingDrainsExactly) {
  TechniqueParams p = params(3, 777);
  p.weights = {1.0, 2.0, 3.0};
  WeightedFactoring technique(p);
  std::int64_t remaining = 777;
  std::size_t w = 0;
  while (remaining > 0) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, w));
    ASSERT_GE(chunk, 1);
    ASSERT_LE(chunk, remaining);
    remaining -= chunk;
    w = (w + 1) % 3;
  }
  SUCCEED();
}

TEST(Wf, InvalidWeightsThrow) {
  TechniqueParams p = params(2, 100);
  p.weights = {1.0, -1.0};
  EXPECT_THROW(WeightedFactoring{p}, std::invalid_argument);
  p.weights = {1.0, 2.0, 3.0};  // wrong size
  EXPECT_THROW(WeightedFactoring{p}, std::invalid_argument);
}

// ------------------------------------------------------- params guards --

TEST(Params, ValidationCatchesDegenerates) {
  EXPECT_THROW(Factoring(params(0, 100)), std::invalid_argument);
  EXPECT_THROW(Factoring(params(4, 0)), std::invalid_argument);
  TechniqueParams p = params(2, 100);
  p.mean_iteration_time = -1.0;
  EXPECT_THROW(Factoring{p}, std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::dls
