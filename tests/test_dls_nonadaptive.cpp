#include <gtest/gtest.h>

#include "dls/nonadaptive.hpp"

namespace cdsf::dls {
namespace {

TechniqueParams params(std::size_t workers, std::int64_t total) {
  TechniqueParams p;
  p.workers = workers;
  p.total_iterations = total;
  return p;
}

SchedulingContext ctx(std::int64_t remaining, std::size_t worker) {
  return SchedulingContext{remaining, worker, 0.0};
}

/// Drains the technique round-robin and returns per-dispatch chunk sizes.
std::vector<std::int64_t> drain(Technique& technique, std::int64_t total, std::size_t workers) {
  std::vector<std::int64_t> chunks;
  std::int64_t remaining = total;
  std::size_t worker = 0;
  std::vector<bool> done(workers, false);
  std::size_t done_count = 0;
  while (remaining > 0 && done_count < workers) {
    if (!done[worker]) {
      const std::int64_t chunk = technique.next_chunk(ctx(remaining, worker));
      if (chunk <= 0) {
        done[worker] = true;
        ++done_count;
      } else {
        EXPECT_LE(chunk, remaining);
        chunks.push_back(chunk);
        remaining -= chunk;
      }
    }
    worker = (worker + 1) % workers;
  }
  EXPECT_EQ(remaining, 0) << "technique failed to schedule all iterations";
  return chunks;
}

// ---------------------------------------------------------------- STATIC --

TEST(Static, EqualSharesExactlyOnce) {
  StaticScheduling technique(params(4, 100));
  std::int64_t remaining = 100;
  for (std::size_t w = 0; w < 4; ++w) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, w));
    EXPECT_EQ(chunk, 25);
    remaining -= chunk;
  }
  EXPECT_EQ(remaining, 0);
  // Second request from any worker yields nothing.
  EXPECT_EQ(technique.next_chunk(ctx(10, 0)), 0);
}

TEST(Static, RemainderGoesToFirstWorkers) {
  StaticScheduling technique(params(4, 10));
  std::int64_t remaining = 10;
  std::vector<std::int64_t> shares;
  for (std::size_t w = 0; w < 4; ++w) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, w));
    shares.push_back(chunk);
    remaining -= chunk;
  }
  EXPECT_EQ(shares, (std::vector<std::int64_t>{3, 3, 2, 2}));
}

TEST(Static, MoreWorkersThanIterations) {
  StaticScheduling technique(params(8, 3));
  std::int64_t remaining = 3;
  int nonzero = 0;
  for (std::size_t w = 0; w < 8 && remaining > 0; ++w) {
    const std::int64_t chunk = technique.next_chunk(ctx(remaining, w));
    if (chunk > 0) {
      ++nonzero;
      remaining -= chunk;
    }
  }
  EXPECT_EQ(nonzero, 3);
  EXPECT_EQ(remaining, 0);
}

TEST(Static, ResetRestoresShares) {
  StaticScheduling technique(params(2, 10));
  EXPECT_EQ(technique.next_chunk(ctx(10, 0)), 5);
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(10, 0)), 5);
}

TEST(Static, BadWorkerIndexThrows) {
  StaticScheduling technique(params(2, 10));
  EXPECT_THROW(technique.next_chunk(ctx(10, 5)), std::out_of_range);
}

// -------------------------------------------------------------------- SS --

TEST(SelfScheduling, AlwaysOne) {
  SelfScheduling technique(params(4, 100));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(technique.next_chunk(ctx(100 - i, 0)), 1);
}

TEST(SelfScheduling, DrainsEverything) {
  SelfScheduling technique(params(3, 17));
  const auto chunks = drain(technique, 17, 3);
  EXPECT_EQ(chunks.size(), 17u);
}

// ------------------------------------------------------------------- FSC --

TEST(Fsc, KruskalWeissFormula) {
  TechniqueParams p = params(8, 10000);
  p.mean_iteration_time = 1.0;
  p.stddev_iteration_time = 0.5;
  p.scheduling_overhead = 2.0;
  FixedSizeChunking technique(p);
  // K = (sqrt(2) * 10000 * 2 / (0.5 * 8 * sqrt(ln 8)))^(2/3) ~ 289.
  EXPECT_NEAR(static_cast<double>(technique.chunk_size()), 289.0, 2.0);
}

TEST(Fsc, FallbackWithoutHints) {
  FixedSizeChunking technique(params(4, 1000));
  EXPECT_EQ(technique.chunk_size(), 125);  // N / (2P)
}

TEST(Fsc, ConstantChunksDrainAll) {
  TechniqueParams p = params(4, 1000);
  p.mean_iteration_time = 1.0;
  p.stddev_iteration_time = 0.3;
  p.scheduling_overhead = 0.5;
  FixedSizeChunking technique(p);
  const auto chunks = drain(technique, 1000, 4);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i], technique.chunk_size());
  }
  EXPECT_LE(chunks.back(), technique.chunk_size());
}

// ------------------------------------------------------------------- GSS --

TEST(Gss, CeilRemainingOverWorkers) {
  GuidedSelfScheduling technique(params(4, 100));
  EXPECT_EQ(technique.next_chunk(ctx(100, 0)), 25);
  EXPECT_EQ(technique.next_chunk(ctx(75, 1)), 19);  // ceil(75/4)
  EXPECT_EQ(technique.next_chunk(ctx(3, 2)), 1);
  EXPECT_EQ(technique.next_chunk(ctx(1, 3)), 1);
}

TEST(Gss, ChunksDecreaseMonotonically) {
  GuidedSelfScheduling technique(params(8, 4096));
  const auto chunks = drain(technique, 4096, 8);
  for (std::size_t i = 1; i < chunks.size(); ++i) EXPECT_LE(chunks[i], chunks[i - 1]);
}

TEST(Gss, SingleWorkerTakesAll) {
  GuidedSelfScheduling technique(params(1, 50));
  EXPECT_EQ(technique.next_chunk(ctx(50, 0)), 50);
}

// ------------------------------------------------------------------- TSS --

TEST(Tss, FirstChunkIsHalfShare) {
  TrapezoidSelfScheduling technique(params(4, 1000));
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), 125);  // N / (2P)
}

TEST(Tss, LinearDecrease) {
  TrapezoidSelfScheduling technique(params(4, 1000));
  const auto chunks = drain(technique, 1000, 4);
  for (std::size_t i = 1; i + 1 < chunks.size(); ++i) {
    EXPECT_LE(chunks[i], chunks[i - 1]);
    // Decrement is constant between full-size steps.
    if (i + 2 < chunks.size()) {
      EXPECT_NEAR(static_cast<double>(chunks[i - 1] - chunks[i]),
                  static_cast<double>(chunks[i] - chunks[i + 1]), 1.5);
    }
  }
}

TEST(Tss, ResetRestartsSchedule) {
  TrapezoidSelfScheduling technique(params(4, 1000));
  const std::int64_t first = technique.next_chunk(ctx(1000, 0));
  technique.next_chunk(ctx(875, 1));
  technique.reset();
  EXPECT_EQ(technique.next_chunk(ctx(1000, 0)), first);
}

TEST(Tss, TinyLoopStillWorks) {
  TrapezoidSelfScheduling technique(params(4, 4));
  const auto chunks = drain(technique, 4, 4);
  EXPECT_GE(chunks.size(), 4u);
}

}  // namespace
}  // namespace cdsf::dls
