#include <gtest/gtest.h>

#include "dls/registry.hpp"

namespace cdsf::dls {
namespace {

TechniqueParams params() {
  TechniqueParams p;
  p.workers = 4;
  p.total_iterations = 1000;
  return p;
}

TEST(Registry, AllTechniquesConstructAndReportTheirName) {
  for (TechniqueId id : all_techniques()) {
    const auto technique = make_technique(id, params());
    ASSERT_NE(technique, nullptr);
    EXPECT_EQ(technique->name(), technique_name(id));
  }
}

TEST(Registry, SixteenTechniques) { EXPECT_EQ(all_techniques().size(), 16u); }

TEST(Registry, NameRoundTrip) {
  for (TechniqueId id : all_techniques()) {
    EXPECT_EQ(technique_from_name(technique_name(id)), id);
  }
  EXPECT_THROW(technique_from_name("NOPE"), std::invalid_argument);
  EXPECT_THROW(technique_from_name("fac"), std::invalid_argument);  // case-sensitive
}

TEST(Registry, PaperRobustSetMatchesSectionFour) {
  const auto& set = paper_robust_set();
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0], TechniqueId::kFAC);
  EXPECT_EQ(set[1], TechniqueId::kWF);
  EXPECT_EQ(set[2], TechniqueId::kAWF_B);
  EXPECT_EQ(set[3], TechniqueId::kAF);
}

TEST(Registry, AdaptiveClassification) {
  EXPECT_FALSE(is_adaptive(TechniqueId::kStatic));
  EXPECT_FALSE(is_adaptive(TechniqueId::kFAC));
  EXPECT_FALSE(is_adaptive(TechniqueId::kWF));
  EXPECT_TRUE(is_adaptive(TechniqueId::kAWF_B));
  EXPECT_TRUE(is_adaptive(TechniqueId::kAF));
}

TEST(Registry, EveryTechniqueSchedulesAllIterations) {
  for (TechniqueId id : all_techniques()) {
    const auto technique = make_technique(id, params());
    std::int64_t remaining = 1000;
    std::size_t worker = 0;
    std::vector<bool> done(4, false);
    std::size_t done_count = 0;
    int guard = 0;
    while (remaining > 0 && done_count < 4 && ++guard < 100000) {
      if (!done[worker]) {
        const std::int64_t chunk =
            technique->next_chunk(SchedulingContext{remaining, worker, 0.0});
        if (chunk <= 0) {
          done[worker] = true;
          ++done_count;
        } else {
          ASSERT_LE(chunk, remaining) << technique_name(id);
          remaining -= chunk;
          technique->record(ChunkResult{worker, chunk, static_cast<double>(chunk),
                                        static_cast<double>(chunk) + 0.5});
        }
      }
      worker = (worker + 1) % 4;
    }
    EXPECT_EQ(remaining, 0) << technique_name(id);
  }
}

TEST(Registry, ResetAllowsRescheduling) {
  for (TechniqueId id : all_techniques()) {
    const auto technique = make_technique(id, params());
    const std::int64_t first = technique->next_chunk(SchedulingContext{1000, 0, 0.0});
    technique->reset();
    EXPECT_EQ(technique->next_chunk(SchedulingContext{1000, 0, 0.0}), first)
        << technique_name(id);
  }
}

}  // namespace
}  // namespace cdsf::dls
