// Tests for the real shared-memory DLS runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>

#include "dls/runtime.hpp"

namespace cdsf::dls {
namespace {

TEST(Runtime, EveryIndexExecutedExactlyOnce) {
  constexpr std::int64_t kN = 5000;
  for (TechniqueId id : {TechniqueId::kStatic, TechniqueId::kSS, TechniqueId::kGSS,
                         TechniqueId::kFAC, TechniqueId::kAF}) {
    std::vector<std::atomic<int>> visits(kN);
    const RuntimeResult result = run_parallel_loop(
        kN, id, [&](std::int64_t i) { ++visits[static_cast<std::size_t>(i)]; }, 4);
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << technique_name(id) << " i=" << i;
    }
    std::int64_t executed = 0;
    for (const RuntimeWorkerStats& w : result.workers) executed += w.iterations;
    EXPECT_EQ(executed, kN) << technique_name(id);
  }
}

TEST(Runtime, AllSixteenTechniquesCompleteAConcurrentSum) {
  constexpr std::int64_t kN = 2000;
  for (TechniqueId id : all_techniques()) {
    std::atomic<std::int64_t> sum{0};
    const RuntimeResult result =
        run_parallel_loop(kN, id, [&](std::int64_t i) { sum += i; }, 3);
    EXPECT_EQ(sum.load(), kN * (kN - 1) / 2) << technique_name(id);
    EXPECT_GT(result.total_chunks, 0u) << technique_name(id);
    EXPECT_GE(result.elapsed_seconds, 0.0);
  }
}

TEST(Runtime, SingleThreadIsSequential) {
  // With one worker, indices must arrive in strictly increasing order.
  std::int64_t last = -1;
  bool ordered = true;
  (void)run_parallel_loop(
      1000, TechniqueId::kFAC,
      [&](std::int64_t i) {
        if (i != last + 1) ordered = false;
        last = i;
      },
      1);
  EXPECT_TRUE(ordered);
  EXPECT_EQ(last, 999);
}

TEST(Runtime, StaticSharesMatchTheoreticalSplit) {
  const RuntimeResult result =
      run_parallel_loop(1000, TechniqueId::kStatic, [](std::int64_t) {}, 4);
  ASSERT_EQ(result.workers.size(), 4u);
  for (const RuntimeWorkerStats& w : result.workers) {
    EXPECT_EQ(w.chunks, 1u);
    EXPECT_EQ(w.iterations, 250);
  }
}

TEST(Runtime, ChunkCountsMatchTechniqueCharacter) {
  constexpr std::int64_t kN = 4096;
  const RuntimeResult ss = run_parallel_loop(kN, TechniqueId::kSS, [](std::int64_t) {}, 4);
  const RuntimeResult fac = run_parallel_loop(kN, TechniqueId::kFAC, [](std::int64_t) {}, 4);
  EXPECT_EQ(ss.total_chunks, static_cast<std::uint64_t>(kN));
  EXPECT_LT(fac.total_chunks, 100u);
}

TEST(Runtime, AdaptiveBalancesASkewedRealLoop) {
  // Iteration cost grows with the index (real computation, real threads).
  // STATIC's contiguous shares leave the last worker with the expensive
  // tail; AF rebalances. Compare compute-time imbalance, which is a
  // machine-speed-independent signal (wall-clock comparisons would flake).
  // Timing-based balance is only meaningful with real parallel hardware:
  // on a single core, per-chunk wall time measures the OS scheduler's
  // interleaving, not the DLS policy.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads for meaningful chunk timings";
  }
  constexpr std::int64_t kN = 1200;
  auto busy_work = [](std::int64_t i) {
    volatile double x = 0.0;
    const std::int64_t rounds = 20 + i;  // linearly increasing cost
    for (std::int64_t r = 0; r < rounds; ++r) x = x + std::sqrt(static_cast<double>(r + 1));
  };
  const RuntimeResult stat = run_parallel_loop(kN, TechniqueId::kStatic, busy_work, 4);
  const RuntimeResult af = run_parallel_loop(kN, TechniqueId::kAF, busy_work, 4);
  EXPECT_GT(stat.imbalance(), 1.25);  // last share ~1.75x the mean
  EXPECT_LT(af.imbalance(), stat.imbalance());
}

TEST(Runtime, BodyExceptionsPropagateAndStopTheLoop) {
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(
      (void)run_parallel_loop(
          100000, TechniqueId::kSS,
          [&](std::int64_t i) {
            if (i == 10) throw std::runtime_error("boom");
            ++executed;
          },
          4),
      std::runtime_error);
  // The pool is poisoned after the throw; far fewer than all iterations ran.
  EXPECT_LT(executed.load(), 100000);
}

TEST(Runtime, Validation) {
  EXPECT_THROW((void)run_parallel_loop(0, TechniqueId::kSS, [](std::int64_t) {}, 2),
               std::invalid_argument);
}

TEST(Runtime, CallerBuiltTechniqueVariant) {
  TechniqueParams params;
  params.workers = 3;
  params.total_iterations = 500;
  const auto technique = make_technique(TechniqueId::kTSS, params);
  std::atomic<std::int64_t> count{0};
  const RuntimeResult result =
      run_parallel_loop(500, *technique, [&](std::int64_t) { ++count; }, 3);
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(result.workers.size(), 3u);
}

}  // namespace
}  // namespace cdsf::dls
