#include <gtest/gtest.h>

#include "cdsf/dynamic_manager.hpp"
#include "sysmodel/cases.hpp"

namespace cdsf::core {
namespace {

DynamicConfig small_config() {
  DynamicConfig config;
  config.applications = 12;
  config.mean_interarrival = 1000.0;
  config.deadline_slack = 8000.0;
  config.application_spec.processor_types = 2;
  config.application_spec.min_total_iterations = 500;
  config.application_spec.max_total_iterations = 2000;
  config.application_spec.min_mean_time = 1500.0;
  config.application_spec.max_mean_time = 6000.0;
  return config;
}

class DynamicManagerTest : public ::testing::Test {
 protected:
  DynamicManagerTest()
      : platform_(sysmodel::paper_platform()),
        reference_(sysmodel::paper_case(1)),
        degraded_(sysmodel::paper_case(4)) {}

  sysmodel::Platform platform_;
  sysmodel::AvailabilitySpec reference_;
  sysmodel::AvailabilitySpec degraded_;
};

TEST_F(DynamicManagerTest, EveryApplicationIsServedExactlyOnce) {
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, reference_, small_config(), 3);
  ASSERT_EQ(result.outcomes.size(), 12u);
  for (const DynamicOutcome& outcome : result.outcomes) {
    EXPECT_GE(outcome.start_time, outcome.arrival_time);
    EXPECT_GT(outcome.completion_time, outcome.start_time);
    EXPECT_GE(outcome.group.processors, 1u);
    EXPECT_GE(outcome.probability, 0.0);
    EXPECT_LE(outcome.probability, 1.0);
  }
}

TEST_F(DynamicManagerTest, CapacityNeverExceeded) {
  // Replay the outcome intervals and check the concurrent processor usage
  // per type at every start event.
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, reference_, small_config(), 7);
  for (const DynamicOutcome& probe : result.outcomes) {
    std::vector<std::size_t> used(platform_.type_count(), 0);
    for (const DynamicOutcome& other : result.outcomes) {
      if (other.start_time <= probe.start_time && other.completion_time > probe.start_time) {
        used[other.group.processor_type] += other.group.processors;
      }
    }
    for (std::size_t j = 0; j < platform_.type_count(); ++j) {
      EXPECT_LE(used[j], platform_.processors_of_type(j)) << "type " << j;
    }
  }
}

TEST_F(DynamicManagerTest, DeterministicGivenSeed) {
  const DynamicRunResult a =
      run_dynamic_manager(platform_, reference_, reference_, small_config(), 11);
  const DynamicRunResult b =
      run_dynamic_manager(platform_, reference_, reference_, small_config(), 11);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].completion_time, b.outcomes[i].completion_time);
    EXPECT_EQ(a.outcomes[i].group, b.outcomes[i].group);
  }
}

TEST_F(DynamicManagerTest, SparseArrivalsStartImmediately) {
  DynamicConfig config = small_config();
  config.mean_interarrival = 100000.0;  // system always empty on arrival
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, reference_, config, 5);
  EXPECT_NEAR(result.mean_queueing_delay, 0.0, 1e-9);
  for (const DynamicOutcome& outcome : result.outcomes) {
    EXPECT_DOUBLE_EQ(outcome.start_time, outcome.arrival_time);
  }
}

TEST_F(DynamicManagerTest, SaturationBuildsQueueAndRaisesUtilization) {
  DynamicConfig sparse = small_config();
  sparse.mean_interarrival = 100000.0;
  DynamicConfig dense = small_config();
  dense.mean_interarrival = 50.0;
  const DynamicRunResult idle =
      run_dynamic_manager(platform_, reference_, reference_, sparse, 9);
  const DynamicRunResult congested =
      run_dynamic_manager(platform_, reference_, reference_, dense, 9);
  EXPECT_GT(congested.mean_queueing_delay, idle.mean_queueing_delay);
  EXPECT_GT(congested.utilization, idle.utilization);
}

TEST_F(DynamicManagerTest, DegradedRuntimeHurtsHitRate) {
  DynamicConfig config = small_config();
  config.deadline_slack = 5000.0;
  const double good =
      run_dynamic_manager(platform_, reference_, reference_, config, 13).deadline_hit_rate;
  const double bad =
      run_dynamic_manager(platform_, reference_, degraded_, config, 13).deadline_hit_rate;
  EXPECT_LE(bad, good);
}

TEST_F(DynamicManagerTest, Validation) {
  DynamicConfig config = small_config();
  config.applications = 0;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
  config = small_config();
  config.mean_interarrival = 0.0;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
  config = small_config();
  config.deadline_slack = 0.0;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
}

TEST_F(DynamicManagerTest, RejectsMpiOnlyGrayKnobs) {
  // Payload corruption needs the MPI executor's checksum framing; the
  // idealized loop would silently ignore it and misreport a hardened run.
  DynamicConfig config = small_config();
  config.sim.channel.corrupt_to_worker = 0.01;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
  config = small_config();
  config.sim.channel.corrupt_to_master = 0.01;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
  // Other channel faults are rejected too (pre-existing contract).
  config = small_config();
  config.sim.channel.drop_to_worker = 0.1;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
}

TEST_F(DynamicManagerTest, QuarantineKnobsAreHonoredNotRejected) {
  // simulate_loop implements the quarantine/audit machinery, so the
  // dynamic manager accepts it — and a disarmed config changes nothing.
  DynamicConfig config = small_config();
  config.sim.quarantine.enabled = true;
  config.sim.quarantine.audit_rate = 0.2;
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, reference_, config, 7);
  EXPECT_EQ(result.outcomes.size(), 12u);
}

// ---------------------------------------------- speculation escalation --

TEST_F(DynamicManagerTest, RiskFloorEscalatesSpeculationBeforeTheRemapCliff) {
  DynamicConfig config = small_config();
  config.escalate_speculation_on_risk = true;
  config.speculation_risk_floor = 1.0;  // every admission is "at risk"
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, degraded_, config, 17);
  ASSERT_EQ(result.outcomes.size(), 12u);
  // With the floor at 1.0 every allocation whose success probability is
  // below certainty runs speculatively.
  EXPECT_GE(result.speculation_escalations, 1u);
  // And the aggregate stats identity holds across the whole run.
  const sim::SpeculationStats& total = result.speculation_total;
  EXPECT_EQ(total.backups_launched,
            total.backups_won + total.backups_cancelled + total.backups_lost);
}

TEST_F(DynamicManagerTest, EscalationOffLeavesCountersZero) {
  const DynamicRunResult result =
      run_dynamic_manager(platform_, reference_, degraded_, small_config(), 17);
  EXPECT_EQ(result.speculation_escalations, 0u);
  EXPECT_EQ(result.speculation_total.backups_launched, 0u);
}

TEST_F(DynamicManagerTest, RiskFloorOutOfDomainIsRejected) {
  DynamicConfig config = small_config();
  config.escalate_speculation_on_risk = true;
  config.speculation_risk_floor = 0.0;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
  config.speculation_risk_floor = 1.5;
  EXPECT_THROW(run_dynamic_manager(platform_, reference_, reference_, config, 1),
               std::invalid_argument);
}

// ------------------------------------------------------- PMF risk metrics --

TEST(RiskMetrics, CvarKnownValues) {
  const pmf::Pmf p = pmf::Pmf::from_pulses({{1.0, 0.5}, {3.0, 0.25}, {11.0, 0.25}});
  EXPECT_NEAR(p.conditional_value_at_risk(0.0), p.expectation(), 1e-12);
  EXPECT_NEAR(p.conditional_value_at_risk(0.75), 11.0, 1e-12);   // worst quarter
  EXPECT_NEAR(p.conditional_value_at_risk(0.5), 7.0, 1e-12);     // (3 + 11) / 2
  // Straddling boundary: worst 40% = 11 (25%) + 3 (15%) -> (11*.25+3*.15)/.4
  EXPECT_NEAR(p.conditional_value_at_risk(0.6), (11.0 * 0.25 + 3.0 * 0.15) / 0.4, 1e-12);
  EXPECT_THROW(p.conditional_value_at_risk(1.0), std::invalid_argument);
  EXPECT_THROW(p.conditional_value_at_risk(-0.1), std::invalid_argument);
}

TEST(RiskMetrics, CvarMonotoneInAlpha) {
  const pmf::Pmf p = pmf::Pmf::uniform_over({1, 2, 3, 4, 5, 6, 7, 8});
  double prev = p.expectation();
  for (double alpha = 0.1; alpha < 0.95; alpha += 0.1) {
    const double cvar = p.conditional_value_at_risk(alpha);
    EXPECT_GE(cvar, prev - 1e-12);
    prev = cvar;
  }
}

TEST(RiskMetrics, ExpectedTardiness) {
  const pmf::Pmf p = pmf::Pmf::from_pulses({{100.0, 0.5}, {300.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.expected_tardiness(300.0), 0.0);
  EXPECT_DOUBLE_EQ(p.expected_tardiness(200.0), 50.0);
  EXPECT_DOUBLE_EQ(p.expected_tardiness(0.0), 200.0);
  EXPECT_DOUBLE_EQ(p.expected_tardiness(1000.0), 0.0);
}

}  // namespace
}  // namespace cdsf::core
