// Systematic edge-case coverage across modules: degenerate sizes, boundary
// values, and pathological-but-legal inputs.
#include <gtest/gtest.h>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "pmf/ops.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

// --------------------------------------------------------- 1-sized worlds --

TEST(EdgeCases, OneIterationOneWorkerEveryTechnique) {
  const auto app = test::simple_app("tiny", 0, 1, {1.0});
  for (dls::TechniqueId id : dls::all_techniques()) {
    sim::SimConfig config;
    config.iteration_cov = 0.0;
    config.availability_mode = sim::AvailabilityMode::kConstantMean;
    const sim::RunResult run =
        sim::simulate_loop(app, 0, 1, test::full_availability(1), id, config, 1);
    EXPECT_NEAR(run.makespan, 1.0 + config.scheduling_overhead, 1e-9)
        << dls::technique_name(id);
    EXPECT_EQ(run.total_chunks, 1u) << dls::technique_name(id);
  }
}

TEST(EdgeCases, OneApplicationBatchThroughTheFramework) {
  workload::Batch batch;
  batch.add(test::simple_app("solo", 100, 900, {1000.0, 2000.0}));
  const core::Framework framework(batch, sysmodel::paper_platform(), sysmodel::paper_case(1),
                                  5000.0);
  const core::StageOneResult stage1 = framework.run_stage_one(ra::ExhaustiveOptimal());
  EXPECT_EQ(stage1.allocation.size(), 1u);
  EXPECT_GT(stage1.phi1, 0.0);
  core::StageTwoConfig config;
  config.replications = 5;
  const core::StageTwoResult stage2 = framework.run_stage_two(
      stage1.allocation, sysmodel::paper_case(1), {dls::TechniqueId::kAF}, config);
  EXPECT_EQ(stage2.outcomes.size(), 1u);
}

TEST(EdgeCases, SingleProcessorPlatform) {
  workload::Batch batch;
  batch.add(test::simple_app("solo", 10, 90, {100.0}));
  const sysmodel::Platform platform({{"only", 1}});
  const sysmodel::AvailabilitySpec avail("a", {pmf::Pmf::delta(1.0)});
  const ra::RobustnessEvaluator evaluator(batch, avail, 200.0);
  const ra::Allocation allocation =
      ra::ExhaustiveOptimal().allocate(evaluator, platform, ra::CountRule::kAny);
  EXPECT_EQ(allocation.at(0), (ra::GroupAssignment{0, 1}));
  EXPECT_NEAR(evaluator.joint_probability(allocation), 1.0, 1e-9);
}

// -------------------------------------------------------- boundary values --

TEST(EdgeCases, PmfSinglePulseEverything) {
  const pmf::Pmf p = pmf::Pmf::delta(5.0);
  EXPECT_DOUBLE_EQ(p.variance(), 0.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.conditional_value_at_risk(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.expected_tardiness(5.0), 0.0);
  EXPECT_EQ(p.compacted(1), p);
  EXPECT_EQ(pmf::independent_max(p, p).size(), 1u);
  EXPECT_EQ(pmf::convolve_sum(p, p).value(0), 10.0);
}

TEST(EdgeCases, PmfExtremeValueMagnitudes) {
  const pmf::Pmf p = pmf::Pmf::from_pulses({{1e-9, 0.5}, {1e9, 0.5}});
  EXPECT_NEAR(p.expectation(), 5e8, 1.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.0), 0.5);
  const pmf::Pmf c = p.compacted(1);
  EXPECT_NEAR(c.value(0), 5e8, 1.0);
}

TEST(EdgeCases, AvailabilityPulseAtExactlyOne) {
  EXPECT_NO_THROW(sysmodel::AvailabilitySpec("edge", {pmf::Pmf::delta(1.0)}));
  EXPECT_NO_THROW(sysmodel::ConstantAvailability(1.0));
}

TEST(EdgeCases, DeadlineExactlyAtAPulse) {
  // CDF at a pulse includes it: a deadline exactly on a completion value
  // counts as meeting it (<=, per the paper's Pr(Psi <= Delta)).
  const pmf::Pmf p = pmf::Pmf::from_pulses({{100.0, 0.5}, {200.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.cdf(100.0), 0.5);
  EXPECT_DOUBLE_EQ(p.cdf(200.0), 1.0);
}

// ------------------------------------------------------ framework corners --

TEST(EdgeCases, ZeroSerialIterationsThroughEverything) {
  workload::Batch batch;
  batch.add(workload::Application(
      "nos", 0, 1000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 1000.0, 0.1},
                       workload::TimeLaw{workload::TimeLawKind::kNormal, 2000.0, 0.1}}));
  const core::Framework framework(batch, sysmodel::paper_platform(), sysmodel::paper_case(1),
                                  3000.0);
  const core::StageOneResult stage1 = framework.run_stage_one(ra::GreedyRobustness());
  EXPECT_DOUBLE_EQ(batch.at(0).split().serial_fraction, 0.0);
  EXPECT_GT(stage1.phi1, 0.0);
}

TEST(EdgeCases, HugeDeadlineSaturatesEverything) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(), 1e15);
  for (const auto& heuristic : ra::all_heuristics(true)) {
    const ra::Allocation allocation =
        heuristic->allocate(evaluator, example.platform, ra::CountRule::kPowerOfTwo);
    EXPECT_NEAR(evaluator.joint_probability(allocation), 1.0, 1e-9) << heuristic->name();
  }
}

TEST(EdgeCases, ImpossibleDeadlineGivesZeroEverywhere) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(), 1.0);
  const std::vector<ra::Allocation> all =
      ra::enumerate_feasible(3, example.platform, ra::CountRule::kPowerOfTwo);
  for (const ra::Allocation& allocation : all) {
    EXPECT_DOUBLE_EQ(evaluator.joint_probability(allocation), 0.0);
  }
  // Heuristics still return SOME feasible allocation (all are equally bad).
  const ra::Allocation chosen = ra::GreedyRobustness().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  EXPECT_TRUE(chosen.fits(example.platform));
}

TEST(EdgeCases, RobustnessReportWithEmptyCaseList) {
  const auto example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  core::ScenarioResult scenario;
  scenario.stage_one = framework.describe_allocation(core::paper_robust_allocation(), "x");
  const core::RobustnessReport report = framework.robustness_report(scenario, {});
  EXPECT_EQ(report.rho2_case, -1);
  EXPECT_LT(report.rho2, 0.0);
}

// ---------------------------------------------------- simulator boundary --

TEST(EdgeCases, OverheadDominatedRegime) {
  // Overhead 100x an iteration: SS makespan is essentially chunks * h.
  const auto app = test::simple_app("o", 0, 100, {100.0});
  sim::SimConfig config;
  config.iteration_cov = 0.0;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.scheduling_overhead = 100.0;
  const sim::RunResult run =
      sim::simulate_loop(app, 0, 4, test::full_availability(1), dls::TechniqueId::kSS,
                         config, 1);
  // 25 chunks per worker, each costing ~101.
  EXPECT_NEAR(run.makespan, 25.0 * 101.0, 5.0);
}

TEST(EdgeCases, EpochBoundaryExactlyAtChunkEnd) {
  // A chunk whose work exactly fills one epoch must finish at the boundary.
  sysmodel::TraceAvailability trace({0.0, 100.0}, {0.5, 1.0});
  EXPECT_DOUBLE_EQ(trace.finish_time(0.0, 50.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.finish_time(0.0, 50.0 + 1.0), 101.0);
}

TEST(EdgeCases, WorkerCountEqualsIterationCount) {
  const auto app = test::simple_app("eq", 0, 8, {8.0});
  for (dls::TechniqueId id : {dls::TechniqueId::kStatic, dls::TechniqueId::kFAC,
                              dls::TechniqueId::kAF, dls::TechniqueId::kTSS}) {
    sim::SimConfig config;
    config.iteration_cov = 0.0;
    config.availability_mode = sim::AvailabilityMode::kConstantMean;
    config.scheduling_overhead = 0.0;
    const sim::RunResult run =
        sim::simulate_loop(app, 0, 8, test::full_availability(1), id, config, 2);
    std::int64_t total = 0;
    for (const auto& w : run.workers) total += w.iterations;
    EXPECT_EQ(total, 8) << dls::technique_name(id);
  }
}

}  // namespace
}  // namespace cdsf
