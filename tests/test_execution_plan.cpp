#include <gtest/gtest.h>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"

namespace cdsf::core {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : example_(make_paper_example()),
        framework_(example_.batch, example_.platform, example_.cases.front(),
                   example_.deadline) {
    StageTwoConfig config;
    config.replications = 21;
    config.seed = 7;
    scenario_ = framework_.run_scenario("plan-test", ra::ExhaustiveOptimal(),
                                        dls::paper_robust_set(), example_.cases, config);
  }

  PaperExample example_;
  Framework framework_;
  ScenarioResult scenario_;
};

TEST_F(PlanTest, PlanCarriesAllocationAndWinners) {
  const Framework::ExecutionPlan plan = framework_.make_plan(scenario_, 0);
  EXPECT_EQ(plan.allocation, paper_robust_allocation());
  ASSERT_EQ(plan.techniques.size(), 3u);
  EXPECT_NEAR(plan.phi1, 0.745, 0.01);
  // At the reference case every application has a deadline-meeting winner,
  // so every planned technique is from the robust set.
  for (dls::TechniqueId id : plan.techniques) {
    const auto& set = dls::paper_robust_set();
    EXPECT_NE(std::find(set.begin(), set.end(), id), set.end());
  }
}

TEST_F(PlanTest, FallbackUsedWhereNoTechniqueMeets) {
  // Case 4: app 2 has no deadline-meeting technique; the plan falls back.
  const Framework::ExecutionPlan plan =
      framework_.make_plan(scenario_, 3, dls::TechniqueId::kAWF_C);
  EXPECT_EQ(plan.techniques[1], dls::TechniqueId::kAWF_C);
}

TEST_F(PlanTest, ExecutePlanRunsTheWholeBatch) {
  const Framework::ExecutionPlan plan = framework_.make_plan(scenario_, 0);
  const sim::BatchRunResult run =
      framework_.execute_plan(plan, example_.cases.front(), sim::SimConfig{}, 11);
  ASSERT_EQ(run.app_makespans.size(), 3u);
  EXPECT_GT(run.system_makespan, 0.0);
  // Deterministic given the seed.
  const sim::BatchRunResult again =
      framework_.execute_plan(plan, example_.cases.front(), sim::SimConfig{}, 11);
  EXPECT_EQ(run.app_makespans, again.app_makespans);
}

TEST_F(PlanTest, DescribePlanNamesEverything) {
  const Framework::ExecutionPlan plan = framework_.make_plan(scenario_, 0);
  const std::string text = framework_.describe_plan(plan);
  EXPECT_NE(text.find("app1"), std::string::npos);
  EXPECT_NE(text.find("type2"), std::string::npos);
  EXPECT_NE(text.find("phi_1"), std::string::npos);
}

TEST_F(PlanTest, BadCaseIndexThrows) {
  EXPECT_THROW(framework_.make_plan(scenario_, 9), std::out_of_range);
}

}  // namespace
}  // namespace cdsf::core
