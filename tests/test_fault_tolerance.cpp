// Fault-tolerant Stage II: crash-kind failures, chunk re-dispatch,
// timeout-driven detection in the MPI model, and the rho_2-triggered
// Stage I re-mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cdsf/framework.hpp"
#include "dls/adaptive.hpp"
#include "ra/heuristics.hpp"
#include "sim/loop_executor.hpp"
#include "sim/master_worker.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

constexpr std::int64_t kIterations = 4000;

workload::Application steady_app() {
  return test::simple_app("steady", 0, kIterations, {4000.0});
}

sim::SimConfig crash_config(std::size_t worker, double time,
                            sim::SimConfig::FailureKind kind =
                                sim::SimConfig::FailureKind::kCrash,
                            double recovery = std::numeric_limits<double>::infinity()) {
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.collect_trace = true;
  sim::SimConfig::Failure failure;
  failure.worker = worker;
  failure.time = time;
  failure.kind = kind;
  failure.recovery_time = recovery;
  config.failures.push_back(failure);
  return config;
}

std::int64_t completed_iterations(const sim::RunResult& run) {
  std::int64_t total = 0;
  for (const sim::WorkerStats& worker : run.workers) total += worker.iterations;
  return total;
}

// ------------------------------------------------ idealized executor (crash) --

TEST(FaultTolerance, CrashRunCompletesAllIterationsAcrossTechniques) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::SimConfig config = crash_config(1, 200.0);
  for (dls::TechniqueId id :
       {dls::TechniqueId::kStatic, dls::TechniqueId::kSS, dls::TechniqueId::kGSS,
        dls::TechniqueId::kTSS, dls::TechniqueId::kFAC, dls::TechniqueId::kAWF_B,
        dls::TechniqueId::kAF}) {
    const sim::RunResult run = sim::simulate_loop(app, 0, 4, full, id, config, 7);
    EXPECT_TRUE(std::isfinite(run.makespan)) << dls::technique_name(id);
    // Every iteration is eventually executed by a surviving worker.
    EXPECT_EQ(completed_iterations(run), kIterations) << dls::technique_name(id);
    EXPECT_EQ(run.faults.workers_crashed, 1u) << dls::technique_name(id);
    EXPECT_EQ(run.faults.workers_recovered, 0u) << dls::technique_name(id);
    // Fault accounting matches the trace exactly.
    std::uint64_t lost_chunks = 0;
    std::int64_t lost_iterations = 0;
    for (const sim::ChunkTraceEntry& entry : run.trace) {
      if (!entry.lost) continue;
      ++lost_chunks;
      lost_iterations += entry.iterations;
      EXPECT_EQ(entry.worker, 1u) << dls::technique_name(id);
    }
    EXPECT_EQ(run.faults.chunks_lost, lost_chunks) << dls::technique_name(id);
    EXPECT_EQ(run.faults.iterations_reexecuted, lost_iterations) << dls::technique_name(id);
    // The worker was mid-chunk at t = 200, so something was lost and redone.
    EXPECT_GE(run.faults.chunks_lost, 1u) << dls::technique_name(id);
    EXPECT_GT(run.faults.wasted_work, 0.0) << dls::technique_name(id);
    // The idealized executor observes the crash event directly.
    EXPECT_DOUBLE_EQ(run.faults.detection_latency_total, 0.0) << dls::technique_name(id);
  }
}

TEST(FaultTolerance, CrashAtTimeZeroNeverDispatchesToTheDeadWorker) {
  const sim::RunResult run =
      sim::simulate_loop(steady_app(), 0, 4, test::full_availability(1),
                         dls::TechniqueId::kFAC, crash_config(1, 0.0), 3);
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_EQ(run.workers[1].iterations, 0);
  EXPECT_EQ(run.workers[1].chunks, 0u);
  EXPECT_EQ(run.faults.chunks_lost, 0u);  // nothing was in flight at t = 0
  EXPECT_DOUBLE_EQ(run.faults.wasted_work, 0.0);
}

TEST(FaultTolerance, CrashRecoverWorkerRejoinsAndContributes) {
  const sim::RunResult run = sim::simulate_loop(
      steady_app(), 0, 4, test::full_availability(1), dls::TechniqueId::kSS,
      crash_config(1, 100.0, sim::SimConfig::FailureKind::kCrashRecover, 300.0), 11);
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_EQ(run.faults.workers_crashed, 1u);
  EXPECT_EQ(run.faults.workers_recovered, 1u);
  // SS still has pending iterations at t = 300, so the rejoined worker
  // completes chunks after its outage.
  EXPECT_GT(run.workers[1].iterations, 0);
}

TEST(FaultTolerance, AllWorkersCrashingThrowsInsteadOfDeadlocking) {
  sim::SimConfig config = crash_config(0, 10.0);
  for (std::size_t w = 1; w < 4; ++w) {
    sim::SimConfig::Failure failure;
    failure.worker = w;
    failure.time = 10.0;
    failure.kind = sim::SimConfig::FailureKind::kCrash;
    config.failures.push_back(failure);
  }
  EXPECT_THROW(sim::simulate_loop(steady_app(), 0, 4, test::full_availability(1),
                                  dls::TechniqueId::kFAC, config, 5),
               std::runtime_error);
}

TEST(FaultTolerance, MasterCrashDuringSerialPhaseThrows) {
  const workload::Application app = test::simple_app("serial-heavy", 400, 400, {800.0});
  EXPECT_THROW(sim::simulate_loop(app, 0, 4, test::full_availability(1),
                                  dls::TechniqueId::kFAC, crash_config(0, 1.0), 5),
               std::runtime_error);
}

TEST(FaultTolerance, DegradeFailureKeepsFaultStatsZero) {
  sim::SimConfig config;
  config.failures.push_back({1, 200.0, 0.02});
  const sim::RunResult run = sim::simulate_loop(steady_app(), 0, 4,
                                                test::full_availability(1),
                                                dls::TechniqueId::kFAC, config, 9);
  EXPECT_EQ(run.faults.workers_crashed, 0u);
  EXPECT_EQ(run.faults.chunks_lost, 0u);
  EXPECT_EQ(run.faults.iterations_reexecuted, 0);
  EXPECT_DOUBLE_EQ(run.faults.wasted_work, 0.0);
}

TEST(FaultTolerance, CrashRunsAreBitReproducible) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::SimConfig config =
      crash_config(2, 150.0, sim::SimConfig::FailureKind::kCrashRecover, 500.0);
  const sim::RunResult a = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kAF, config, 21);
  const sim::RunResult b = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kAF, config, 21);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.faults.chunks_lost, b.faults.chunks_lost);
  EXPECT_EQ(a.faults.iterations_reexecuted, b.faults.iterations_reexecuted);
  EXPECT_DOUBLE_EQ(a.faults.wasted_work, b.faults.wasted_work);
}

// ------------------------------------------------------ duplicate failures --

TEST(FaultTolerance, DuplicateFailuresForOneWorkerAreRejected) {
  sim::SimConfig config;
  config.failures.push_back({1, 100.0, 0.5});
  sim::SimConfig::Failure crash;
  crash.worker = 1;
  crash.time = 300.0;
  crash.kind = sim::SimConfig::FailureKind::kCrash;
  config.failures.push_back(crash);

  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  EXPECT_THROW(sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 1),
               std::invalid_argument);
  EXPECT_THROW(sim::simulate_loop_mixed(app, {0, 0, 0, 0}, full, dls::TechniqueId::kFAC,
                                        config, 1),
               std::invalid_argument);
  EXPECT_THROW(sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kFAC, config,
                                      sim::MessageModel{}, 1),
               std::invalid_argument);
}

// ------------------------------------------------- adaptive-weight hygiene --

TEST(FaultTolerance, LostChunksDoNotPoisonAwfWeights) {
  dls::TechniqueParams params;
  params.workers = 4;
  params.total_iterations = kIterations;
  params.mean_iteration_time = 1.0;
  dls::AdaptiveWeightedFactoring awf(params, dls::AwfVariant::kChunk);  // AWF-C

  const sim::RunResult run =
      sim::simulate_loop(steady_app(), 0, 4, test::full_availability(1), awf,
                         crash_config(1, 10.0), 13);
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.faults.chunks_lost, 1u);
  // The crashed worker's first chunk was lost, so it never reported a
  // measurement: its weight must stay at the neutral fallback instead of
  // collapsing toward zero as if it had reported a near-infinite time.
  const std::vector<double> weights = awf.current_weights();
  ASSERT_EQ(weights.size(), 4u);
  EXPECT_GT(weights[1], 0.5);
}

// ------------------------------------------------------- MPI master model --

TEST(FaultTolerance, MpiTimeoutDetectionRedispatchesLostChunk) {
  sim::SimConfig config = crash_config(1, 200.0);
  config.collect_trace = false;
  const sim::MpiRunResult result =
      sim::simulate_loop_mpi(steady_app(), 0, 4, test::full_availability(1),
                             dls::TechniqueId::kFAC, config, sim::MessageModel{}, 17);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(completed_iterations(result.run), kIterations);
  EXPECT_GE(result.run.faults.chunks_lost, 1u);
  // The master only sees a missing report, so detection takes real time.
  EXPECT_GT(result.run.faults.detection_latency_total, 0.0);
  EXPECT_GT(result.run.faults.max_detection_latency, 0.0);
}

TEST(FaultTolerance, MpiDetectionDisabledThrowsOnStrandedIterations) {
  sim::SimConfig config = crash_config(1, 200.0);
  config.fault_detection.enabled = false;
  EXPECT_THROW(sim::simulate_loop_mpi(steady_app(), 0, 4, test::full_availability(1),
                                      dls::TechniqueId::kFAC, config, sim::MessageModel{}, 17),
               std::runtime_error);
}

TEST(FaultTolerance, MpiRecoveryRevealsTheLossEvenWithoutDetection) {
  sim::SimConfig config =
      crash_config(1, 100.0, sim::SimConfig::FailureKind::kCrashRecover, 400.0);
  config.fault_detection.enabled = false;
  const sim::MpiRunResult result =
      sim::simulate_loop_mpi(steady_app(), 0, 4, test::full_availability(1),
                             dls::TechniqueId::kFAC, config, sim::MessageModel{}, 19);
  EXPECT_EQ(completed_iterations(result.run), kIterations);
  EXPECT_EQ(result.run.faults.workers_recovered, 1u);
  EXPECT_GE(result.run.faults.chunks_lost, 1u);
}

TEST(FaultTolerance, MpiCrashRunsAreBitReproducible) {
  const sim::SimConfig config = crash_config(2, 300.0);
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::MpiRunResult a = sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kAWF_B,
                                                     config, sim::MessageModel{}, 23);
  const sim::MpiRunResult b = sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kAWF_B,
                                                     config, sim::MessageModel{}, 23);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.faults.chunks_lost, b.run.faults.chunks_lost);
  EXPECT_DOUBLE_EQ(a.run.faults.detection_latency_total, b.run.faults.detection_latency_total);
}

// ------------------------------------------------- rho_2-triggered remap --

struct RemapFixture {
  sysmodel::Platform platform{{{"fast", 8}, {"slow", 8}}};
  sysmodel::AvailabilitySpec reference{"reference",
                                       {pmf::Pmf::delta(1.0), pmf::Pmf::delta(0.9)}};
  sysmodel::AvailabilitySpec realized{"realized",
                                      {pmf::Pmf::delta(0.3), pmf::Pmf::delta(0.9)}};
  workload::Batch batch;
  double deadline = 600.0;

  RemapFixture() { batch.add(test::simple_app("loop", 0, 4096, {2400.0, 3600.0})); }
};

TEST(FaultTolerance, RemapNotTriggeredWithinTheCertificate) {
  const RemapFixture fx;
  const core::Framework framework(fx.batch, fx.platform, fx.reference, fx.deadline);
  const ra::ExhaustiveOptimal heuristic;
  const core::StageOneResult stage_one = framework.run_stage_one(heuristic);
  core::Framework::ExecutionPlan plan;
  plan.allocation = stage_one.allocation;
  plan.phi1 = stage_one.phi1;
  plan.techniques.assign(fx.batch.size(), dls::TechniqueId::kFAC);

  core::Framework::RemapPolicy policy;
  policy.rho2 = 0.10;
  const core::Framework::RemapDecision decision =
      framework.remap_on_availability(plan, fx.reference, heuristic, policy);
  EXPECT_FALSE(decision.triggered);
  EXPECT_NEAR(decision.realized_decrease, 0.0, 1e-12);
  EXPECT_EQ(decision.plan.allocation.at(0), plan.allocation.at(0));
  EXPECT_DOUBLE_EQ(decision.phi1_realized_before, decision.phi1_realized_after);
}

TEST(FaultTolerance, RemapBeyondRho2MeetsDeadlineStrictlyMoreOften) {
  const RemapFixture fx;
  const core::Framework framework(fx.batch, fx.platform, fx.reference, fx.deadline);
  const ra::ExhaustiveOptimal heuristic;
  const core::StageOneResult stage_one = framework.run_stage_one(heuristic);
  core::Framework::ExecutionPlan plan;
  plan.allocation = stage_one.allocation;
  plan.phi1 = stage_one.phi1;
  plan.techniques.assign(fx.batch.size(), dls::TechniqueId::kFAC);

  core::Framework::RemapPolicy policy;
  policy.rho2 = 0.10;
  const core::Framework::RemapDecision decision =
      framework.remap_on_availability(plan, fx.realized, heuristic, policy);
  ASSERT_TRUE(decision.triggered);
  EXPECT_GT(decision.realized_decrease, policy.rho2);
  EXPECT_GT(decision.phi1_realized_after, decision.phi1_realized_before);
  // The re-mapping moved the application off the degraded type.
  EXPECT_NE(decision.plan.allocation.at(0).processor_type,
            plan.allocation.at(0).processor_type);

  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  std::size_t hits_original = 0;
  std::size_t hits_remapped = 0;
  constexpr std::size_t kSeeds = 30;
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    if (framework.execute_plan(plan, fx.realized, config, seed).system_makespan <=
        fx.deadline) {
      ++hits_original;
    }
    if (framework.execute_plan(decision.plan, fx.realized, config, seed).system_makespan <=
        fx.deadline) {
      ++hits_remapped;
    }
  }
  EXPECT_GT(hits_remapped, hits_original);
  EXPECT_EQ(hits_remapped, kSeeds);  // 500 vs 600: the remapped plan always meets it
}

}  // namespace
}  // namespace cdsf
