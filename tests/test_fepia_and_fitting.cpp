// Tests for the FePIA robustness radius (reference [3] of the paper) and
// the Markov-model fitting from availability traces.
#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "ra/robustness.hpp"
#include "sysmodel/trace_io.hpp"

namespace cdsf {
namespace {

// ----------------------------------------------------------- FePIA radius --

class FepiaTest : public ::testing::Test {
 protected:
  FepiaTest()
      : example_(core::make_paper_example()),
        evaluator_(example_.batch, example_.cases.front(), example_.deadline) {}

  core::PaperExample example_;
  ra::RobustnessEvaluator evaluator_;
};

TEST_F(FepiaTest, SlacksMatchHandComputation) {
  // Robust allocation, case 1: r_i = E[a_type] - T_par,i / 3250.
  const std::vector<double> slacks =
      evaluator_.fepia_slacks(core::paper_robust_allocation());
  ASSERT_EQ(slacks.size(), 3u);
  EXPECT_NEAR(slacks[0], 0.875 - 1170.0 / 3250.0, 1e-3);   // app1: 2 x type1
  EXPECT_NEAR(slacks[1], 0.875 - 1680.0 / 3250.0, 1e-3);   // app2: 2 x type1
  EXPECT_NEAR(slacks[2], 0.6875 - 1350.0 / 3250.0, 1e-3);  // app3: 8 x type2
}

TEST_F(FepiaTest, RadiusIsTheMinimumSlack) {
  const ra::Allocation robust = core::paper_robust_allocation();
  const std::vector<double> slacks = evaluator_.fepia_slacks(robust);
  const double radius = evaluator_.fepia_robustness_radius(robust);
  EXPECT_DOUBLE_EQ(radius, *std::min_element(slacks.begin(), slacks.end()));
  EXPECT_GT(radius, 0.0);  // robust mapping has positive headroom
}

TEST_F(FepiaTest, RobustMappingHasLargerRadiusThanNaive) {
  EXPECT_GT(evaluator_.fepia_robustness_radius(core::paper_robust_allocation()),
            evaluator_.fepia_robustness_radius(core::paper_naive_allocation()));
}

TEST_F(FepiaTest, NaiveMappingRadiusIsNegative) {
  // Naive IM: app3 on 4 x type2 needs 2300/3250 = 0.708 availability but
  // type 2 offers only 0.6875 in expectation — negative slack.
  EXPECT_LT(evaluator_.fepia_robustness_radius(core::paper_naive_allocation()), 0.0);
}

TEST_F(FepiaTest, Validation) {
  EXPECT_THROW(evaluator_.fepia_slacks(ra::Allocation({{0, 1}})), std::invalid_argument);
}

// --------------------------------------------------------- Markov fitting --

TEST(MarkovFitting, PersistentTraceFitsHighPersistence) {
  // Availability holds for 10 epochs at a time.
  std::string text = "0,1.0\n";
  for (int block = 1; block < 10; ++block) {
    text += std::to_string(block * 1000) + "," + (block % 2 ? "0.5" : "1.0") + "\n";
  }
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text(text);
  const sysmodel::FittedMarkov fitted = sysmodel::fit_markov_model(trace, 100.0, 10000.0);
  EXPECT_GT(fitted.persistence, 0.85);
  EXPECT_NEAR(fitted.law.expectation(), 0.75, 0.01);
  EXPECT_DOUBLE_EQ(fitted.epoch_length, 100.0);
}

TEST(MarkovFitting, FastFlippingTraceFitsLowPersistence) {
  // Availability alternates every epoch.
  std::string text = "0,1.0\n";
  for (int e = 1; e < 100; ++e) {
    text += std::to_string(e * 100) + "," + (e % 2 ? "0.5" : "1.0") + "\n";
  }
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text(text);
  const sysmodel::FittedMarkov fitted = sysmodel::fit_markov_model(trace, 100.0, 10000.0);
  EXPECT_LT(fitted.persistence, 0.15);
}

TEST(MarkovFitting, ConstantTraceClampsPersistence) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text("0,0.8\n");
  const sysmodel::FittedMarkov fitted = sysmodel::fit_markov_model(trace, 50.0, 1000.0);
  EXPECT_NEAR(fitted.persistence, 0.999, 1e-9);  // clamped below 1
  EXPECT_DOUBLE_EQ(fitted.law.expectation(), 0.8);
}

TEST(MarkovFitting, FittedModelDrivesTheSimulatorProcess) {
  const sysmodel::ParsedTrace trace =
      sysmodel::parse_trace_text("0,1.0\n500,0.5\n1500,1.0\n2500,0.25\n");
  const sysmodel::FittedMarkov fitted = sysmodel::fit_markov_model(trace, 250.0, 3000.0);
  // The fitted pieces must be directly consumable.
  sysmodel::MarkovEpochAvailability process(fitted.law, fitted.epoch_length,
                                            fitted.persistence, 42);
  EXPECT_GT(process.availability_at(100.0), 0.0);
}

TEST(MarkovFitting, Validation) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text("0,0.5\n10,1.0\n");
  EXPECT_THROW(sysmodel::fit_markov_model(trace, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(sysmodel::fit_markov_model(trace, 100.0, 150.0), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf
