#include <gtest/gtest.h>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"

namespace cdsf::core {
namespace {

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest()
      : example_(make_paper_example()),
        framework_(example_.batch, example_.platform, example_.cases.front(),
                   example_.deadline) {}

  static StageTwoConfig fast_config() {
    StageTwoConfig config;
    config.replications = 41;
    config.seed = 7;
    return config;
  }

  PaperExample example_;
  Framework framework_;
};

// ---------------------------------------------------------------- stage I --

TEST_F(FrameworkTest, StageOneRobustMatchesPaper) {
  const StageOneResult result = framework_.run_stage_one(ra::ExhaustiveOptimal());
  EXPECT_EQ(result.allocation, paper_robust_allocation());
  EXPECT_NEAR(result.phi1, 0.745, 0.01);
  ASSERT_EQ(result.expected_times.size(), 3u);
  EXPECT_NEAR(result.expected_times[2], 2700.0, 10.0);
}

TEST_F(FrameworkTest, DescribeAllocationValidates) {
  EXPECT_THROW(framework_.describe_allocation(ra::Allocation({{0, 1}}), "x"),
               std::invalid_argument);
  EXPECT_THROW(framework_.describe_allocation(ra::Allocation({{0, 9}, {0, 1}, {1, 1}}), "x"),
               std::invalid_argument);
  const StageOneResult described =
      framework_.describe_allocation(paper_naive_allocation(), "naive");
  EXPECT_EQ(described.heuristic_name, "naive");
  EXPECT_NEAR(described.phi1, 0.26, 0.01);
}

// --------------------------------------------------------------- stage II --

TEST_F(FrameworkTest, StageTwoProducesOutcomesPerAppAndTechnique) {
  const auto techniques = dls::paper_robust_set();
  const StageTwoResult result = framework_.run_stage_two(
      paper_robust_allocation(), example_.cases.front(), techniques, fast_config());
  ASSERT_EQ(result.outcomes.size(), 3u);
  for (const auto& per_app : result.outcomes) {
    ASSERT_EQ(per_app.size(), techniques.size());
    for (const auto& outcome : per_app) {
      EXPECT_GT(outcome.summary.mean_makespan, 0.0);
      EXPECT_EQ(outcome.summary.replications, 41u);
    }
  }
  EXPECT_EQ(result.case_name, "case1");
}

TEST_F(FrameworkTest, StageTwoReferenceCaseMeetsDeadline) {
  const StageTwoResult result =
      framework_.run_stage_two(paper_robust_allocation(), example_.cases.front(),
                               dls::paper_robust_set(), fast_config());
  EXPECT_TRUE(result.all_meet_deadline);
  for (int best : result.best_technique) EXPECT_GE(best, 0);
  EXPECT_LE(result.system_makespan, example_.deadline);
}

TEST_F(FrameworkTest, StageTwoCaseFourViolatesForAppTwo) {
  const StageTwoResult result =
      framework_.run_stage_two(paper_robust_allocation(), example_.cases[3],
                               dls::paper_robust_set(), fast_config());
  // Paper: app 2 misses the deadline under every DLS technique in case 4
  // (2 processors of type 1 at E[a] = 41.25% cannot finish 1680 dedicated
  // time units of work before 3250).
  EXPECT_EQ(result.best_technique[1], -1);
  EXPECT_FALSE(result.all_meet_deadline);
}

TEST_F(FrameworkTest, StageTwoDeterministicGivenSeed) {
  const StageTwoResult a = framework_.run_stage_two(
      paper_robust_allocation(), example_.cases[1], dls::paper_robust_set(), fast_config());
  const StageTwoResult b = framework_.run_stage_two(
      paper_robust_allocation(), example_.cases[1], dls::paper_robust_set(), fast_config());
  for (std::size_t app = 0; app < 3; ++app) {
    for (std::size_t k = 0; k < a.outcomes[app].size(); ++k) {
      EXPECT_DOUBLE_EQ(a.outcomes[app][k].summary.mean_makespan,
                       b.outcomes[app][k].summary.mean_makespan);
    }
  }
}

TEST_F(FrameworkTest, StageTwoValidation) {
  EXPECT_THROW(framework_.run_stage_two(ra::Allocation({{0, 1}}), example_.cases.front(),
                                        dls::paper_robust_set(), fast_config()),
               std::invalid_argument);
  EXPECT_THROW(framework_.run_stage_two(paper_robust_allocation(), example_.cases.front(), {},
                                        fast_config()),
               std::invalid_argument);
}

// -------------------------------------------------------------- scenarios --

TEST_F(FrameworkTest, ScenarioFourIsRobustThroughCaseThree) {
  const ScenarioResult scenario =
      framework_.run_scenario("robust-robust", ra::ExhaustiveOptimal(),
                              dls::paper_robust_set(), example_.cases, fast_config());
  ASSERT_EQ(scenario.per_case.size(), 4u);
  EXPECT_TRUE(scenario.per_case[0].all_meet_deadline);
  // Case 2's app 2 is a borderline cell (its median availability path alone
  // costs ~3253 > 3250); apps 1 and 3 meet comfortably, app 2 must at least
  // be within 5% of the deadline. See EXPERIMENTS.md.
  EXPECT_GE(scenario.per_case[1].best_technique[0], 0);
  EXPECT_GE(scenario.per_case[1].best_technique[2], 0);
  double case2_app2_best = 1e18;
  for (const auto& outcome : scenario.per_case[1].outcomes[1]) {
    case2_app2_best = std::min(case2_app2_best, outcome.summary.median_makespan);
  }
  EXPECT_LT(case2_app2_best, 1.05 * example_.deadline);
  EXPECT_TRUE(scenario.per_case[2].all_meet_deadline);
  EXPECT_FALSE(scenario.per_case[3].all_meet_deadline);

  const RobustnessReport report = framework_.robustness_report(scenario, example_.cases);
  EXPECT_NEAR(report.rho1, 0.745, 0.01);
  EXPECT_NEAR(report.rho2, 0.308, 0.005);  // paper: 30.77% (rounded inputs: 30.89%)
  EXPECT_EQ(report.rho2_case, 2);          // case 3
}

TEST_F(FrameworkTest, ScenarioOneNaiveNaiveIsNotRobust) {
  const ScenarioResult scenario =
      framework_.run_scenario("naive-naive", ra::NaiveLoadBalance(),
                              {dls::TechniqueId::kStatic}, example_.cases, fast_config());
  EXPECT_NEAR(scenario.stage_one.phi1, 0.26, 0.01);
  for (const StageTwoResult& per_case : scenario.per_case) {
    EXPECT_FALSE(per_case.all_meet_deadline) << per_case.case_name;
  }
  const RobustnessReport report = framework_.robustness_report(scenario, example_.cases);
  EXPECT_LT(report.rho2, 0.0);  // not robust even at the reference case
  EXPECT_EQ(report.rho2_case, -1);
}

TEST_F(FrameworkTest, RobustnessReportValidation) {
  ScenarioResult scenario;
  scenario.per_case.resize(2);
  EXPECT_THROW(framework_.robustness_report(scenario, example_.cases), std::invalid_argument);
}

// ---------------------------------------------------------------- analytic --

TEST_F(FrameworkTest, AnalyticStaticTimesMatchFigureThree) {
  // Figure 3 values are the Table V expected values under case 1.
  const ra::Allocation naive = paper_naive_allocation();
  EXPECT_NEAR(framework_.analytic_static_time(0, naive.at(0), example_.cases.front()),
              3800.02, 15.0);
  EXPECT_NEAR(framework_.analytic_static_time(1, naive.at(1), example_.cases.front()),
              1306.39, 10.0);
  EXPECT_NEAR(framework_.analytic_static_time(2, naive.at(2), example_.cases.front()),
              4599.76, 15.0);
}

TEST_F(FrameworkTest, AnalyticStaticTimesGrowAsAvailabilityDrops) {
  const ra::Allocation robust = paper_robust_allocation();
  for (std::size_t app = 0; app < 3; ++app) {
    const double reference =
        framework_.analytic_static_time(app, robust.at(app), example_.cases.front());
    for (std::size_t k = 1; k < example_.cases.size(); ++k) {
      EXPECT_GT(framework_.analytic_static_time(app, robust.at(app), example_.cases[k]),
                0.9 * reference)
          << "app=" << app << " case=" << k;
    }
  }
}

// ------------------------------------------------------------ construction --

TEST(Framework, ConstructionValidation) {
  const PaperExample example = make_paper_example();
  EXPECT_THROW(Framework(example.batch, example.platform, example.cases.front(), 0.0),
               std::invalid_argument);
  const sysmodel::Platform wrong({{"only", 4}});
  EXPECT_THROW(Framework(example.batch, wrong, example.cases.front(), 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::core
