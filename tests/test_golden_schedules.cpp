// Golden chunk-sequence regression tests: the exact dispatch sequences of
// the closed-form techniques on canonical inputs. Any change to a chunk
// rule — intended or not — shows up here first.
#include <gtest/gtest.h>

#include "dls/analysis.hpp"

namespace cdsf::dls {
namespace {

std::vector<std::int64_t> sizes(TechniqueId id, std::int64_t n, std::size_t p) {
  std::vector<std::int64_t> out;
  for (const ScheduledChunk& chunk : analyze_schedule(id, n, p).chunks) {
    out.push_back(chunk.size);
  }
  return out;
}

TEST(GoldenSchedules, Gss1000x4) {
  // ceil(R/4) cascade.
  const std::vector<std::int64_t> expected = {250, 188, 141, 106, 79, 59, 45, 33, 25, 19,
                                              14,  11,  8,   6,   4,  3,  3,  2,  1,  1,
                                              1,   1};
  EXPECT_EQ(sizes(TechniqueId::kGSS, 1000, 4), expected);
}

TEST(GoldenSchedules, Fac1024x4) {
  // FAC2: batches of half the remaining, four equal chunks per batch; the
  // final eight iterations drain as two all-ones batches.
  const std::vector<std::int64_t> expected = {128, 128, 128, 128, 64, 64, 64, 64, 32, 32,
                                              32,  32,  16,  16,  16, 16, 8,  8,  8,  8,
                                              4,   4,   4,   4,   2,  2,  2,  2,  1,  1,
                                              1,   1,   1,   1,   1,  1};
  EXPECT_EQ(sizes(TechniqueId::kFAC, 1024, 4), expected);
}

TEST(GoldenSchedules, Tss1000x4FirstAndLast) {
  const std::vector<std::int64_t> chunks = sizes(TechniqueId::kTSS, 1000, 4);
  EXPECT_EQ(chunks.front(), 125);  // N / 2P
  EXPECT_LE(chunks.back(), 8);     // decayed to near the minimum
  // Linear decrease: first differences are constant to within rounding
  // (the final clamped chunk excluded).
  for (std::size_t i = 2; i + 2 < chunks.size(); ++i) {
    const std::int64_t d1 = chunks[i - 1] - chunks[i];
    const std::int64_t d2 = chunks[i] - chunks[i + 1];
    EXPECT_NEAR(static_cast<double>(d1), static_cast<double>(d2), 1.5) << "i=" << i;
  }
}

TEST(GoldenSchedules, Static1000x4) {
  EXPECT_EQ(sizes(TechniqueId::kStatic, 1000, 4),
            (std::vector<std::int64_t>{250, 250, 250, 250}));
}

TEST(GoldenSchedules, Fsc1000x4Fallback) {
  // Without sigma/h hints FSC uses N / 2P = 125 fixed.
  const std::vector<std::int64_t> chunks = sizes(TechniqueId::kFSC, 1000, 4);
  ASSERT_EQ(chunks.size(), 8u);
  for (const std::int64_t chunk : chunks) EXPECT_EQ(chunk, 125);
}

TEST(GoldenSchedules, UniformFeedbackAwfBEqualsFac) {
  EXPECT_EQ(sizes(TechniqueId::kAWF_B, 1024, 4), sizes(TechniqueId::kFAC, 1024, 4));
}

TEST(GoldenSchedules, UniformFeedbackAfDecaysSmoothly) {
  // AF re-solves its batch target at EVERY request, so with uniform
  // feedback the sequence decays geometrically per request (128, 112, 98,
  // ...) rather than in FAC's four-chunk plateaus.
  const std::vector<std::int64_t> af = sizes(TechniqueId::kAF, 1024, 4);
  EXPECT_EQ(af.front(), 128);  // bootstrap = R / 2P
  for (std::size_t i = 1; i < af.size(); ++i) {
    EXPECT_LE(af[i], af[i - 1]) << "i=" << i;
  }
}

TEST(GoldenSchedules, Pls1000x4) {
  const std::vector<std::int64_t> chunks = sizes(TechniqueId::kPLS, 1000, 4);
  // 4 static shares of 125 (SWR = 0.5), then GSS on the remaining 500.
  ASSERT_GE(chunks.size(), 5u);
  EXPECT_EQ(chunks[0], 125);
  EXPECT_EQ(chunks[1], 125);
  EXPECT_EQ(chunks[2], 125);
  EXPECT_EQ(chunks[3], 125);
  EXPECT_EQ(chunks[4], 125);  // ceil(500 / 4)
}

TEST(GoldenSchedules, StableAcrossRuns) {
  for (TechniqueId id : all_techniques()) {
    EXPECT_EQ(sizes(id, 777, 3), sizes(id, 777, 3)) << technique_name(id);
  }
}

}  // namespace
}  // namespace cdsf::dls
