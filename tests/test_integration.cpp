// Cross-module integration tests beyond the paper example: random batches
// through the full Stage I -> Stage II pipeline on larger platforms.
#include <gtest/gtest.h>

#include "cdsf/framework.hpp"
#include "dls/adaptive.hpp"
#include "ra/heuristics.hpp"
#include "sysmodel/cases.hpp"
#include "workload/generator.hpp"

namespace cdsf {
namespace {

/// A 3-type, 28-processor platform for scale-up tests.
sysmodel::Platform large_platform() {
  return sysmodel::Platform({{"fast", 4}, {"mid", 8}, {"slow", 16}});
}

sysmodel::AvailabilitySpec mixed_availability(const std::string& name, double shift) {
  auto law = [&](double lo, double hi) {
    return pmf::Pmf::from_pulses({{std::max(0.05, lo - shift), 0.5},
                                  {std::min(1.0, hi - shift), 0.5}});
  };
  return sysmodel::AvailabilitySpec(name, {law(0.7, 1.0), law(0.5, 0.9), law(0.3, 0.8)});
}

workload::Batch large_batch(std::uint64_t seed) {
  workload::BatchSpec spec;
  spec.applications = 6;
  spec.processor_types = 3;
  spec.min_total_iterations = 400;
  spec.max_total_iterations = 2000;
  spec.min_mean_time = 2000.0;
  spec.max_mean_time = 10000.0;
  return workload::generate_batch(spec, seed);
}

TEST(Integration, FullPipelineOnRandomLargeInstance) {
  const workload::Batch batch = large_batch(31);
  const auto reference = mixed_availability("ref", 0.0);
  const core::Framework framework(batch, large_platform(), reference, 25000.0);

  const auto stage1 = framework.run_stage_one(ra::GreedyRobustness());
  EXPECT_TRUE(stage1.allocation.fits(large_platform()));
  EXPECT_GT(stage1.phi1, 0.0);

  core::StageTwoConfig config;
  config.replications = 3;
  const auto stage2 = framework.run_stage_two(
      stage1.allocation, mixed_availability("degraded", 0.15), dls::paper_robust_set(), config);
  ASSERT_EQ(stage2.outcomes.size(), batch.size());
  for (const auto& per_app : stage2.outcomes) {
    for (const auto& outcome : per_app) EXPECT_GT(outcome.summary.mean_makespan, 0.0);
  }
}

TEST(Integration, GreedyTracksExhaustiveOnSmallRandomInstances) {
  // On instances small enough to enumerate, greedy must come close to the
  // optimum (within 10% relative phi_1 across several seeds).
  const sysmodel::Platform platform({{"a", 4}, {"b", 4}});
  workload::BatchSpec spec;
  spec.applications = 3;
  spec.processor_types = 2;
  spec.min_mean_time = 2000.0;
  spec.max_mean_time = 9000.0;
  for (std::uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
    const workload::Batch batch = workload::generate_batch(spec, seed);
    const sysmodel::AvailabilitySpec avail(
        "two-type", {pmf::Pmf::from_pulses({{0.6, 0.5}, {1.0, 0.5}}),
                     pmf::Pmf::from_pulses({{0.4, 0.5}, {0.9, 0.5}})});
    const ra::RobustnessEvaluator evaluator(batch, avail, 12000.0);
    const double optimal = evaluator.joint_probability(
        ra::ExhaustiveOptimal().allocate(evaluator, platform, ra::CountRule::kPowerOfTwo));
    const double greedy = evaluator.joint_probability(
        ra::GreedyRobustness().allocate(evaluator, platform, ra::CountRule::kPowerOfTwo));
    EXPECT_GE(greedy, 0.9 * optimal) << "seed=" << seed;
  }
}

TEST(Integration, StageTwoBestTechniqueIsActuallyFastestAmongMeeting) {
  const workload::Batch batch = large_batch(77);
  const auto reference = mixed_availability("ref", 0.0);
  const core::Framework framework(batch, large_platform(), reference, 30000.0);
  const auto stage1 = framework.run_stage_one(ra::MinMinExpected());
  core::StageTwoConfig config;
  config.replications = 3;
  const auto stage2 =
      framework.run_stage_two(stage1.allocation, reference, dls::paper_robust_set(), config);
  for (std::size_t app = 0; app < batch.size(); ++app) {
    const int best = stage2.best_technique[app];
    if (best < 0) continue;
    const double best_time =
        stage2.outcomes[app][static_cast<std::size_t>(best)].summary.median_makespan;
    for (const auto& outcome : stage2.outcomes[app]) {
      if (outcome.meets_deadline) {
        EXPECT_LE(best_time, outcome.summary.median_makespan + 1e-9);
      }
    }
  }
}

TEST(Integration, TimestepApplicationWithAwf) {
  // AWF's cross-timestep adaptation: run the same loop twice; the second
  // execution (with learned weights) on a persistently heterogeneous group
  // must not be slower on average than the first.
  const auto app = workload::Application(
      "ts", 0, 4000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}});
  sim::SimConfig config;
  config.iteration_cov = 0.2;

  double first_sum = 0.0;
  double second_sum = 0.0;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    dls::TechniqueParams params;
    params.workers = 8;
    params.total_iterations = 4000;
    dls::AdaptiveWeightedFactoring awf(params, dls::AwfVariant::kTimestep);
    // Same seed for both timesteps => identical availability draws, so the
    // learned weights are exactly right for the second run.
    const auto seed = 9000 + rep;
    first_sum +=
        sim::simulate_loop(app, 0, 8, sysmodel::paper_case(4), awf, config, seed).makespan;
    awf.advance_timestep();
    second_sum +=
        sim::simulate_loop(app, 0, 8, sysmodel::paper_case(4), awf, config, seed).makespan;
  }
  EXPECT_LE(second_sum, first_sum * 1.02);
}

TEST(Integration, CountRuleAnyExpandsChoicesAtScale) {
  const workload::Batch batch = large_batch(41);
  const auto reference = mixed_availability("ref", 0.0);
  const ra::RobustnessEvaluator evaluator(batch, reference, 25000.0);
  const double pow2 = evaluator.joint_probability(
      ra::GreedyRobustness().allocate(evaluator, large_platform(), ra::CountRule::kPowerOfTwo));
  const double any = evaluator.joint_probability(
      ra::GreedyRobustness().allocate(evaluator, large_platform(), ra::CountRule::kAny));
  EXPECT_GE(any, pow2 - 1e-9);
}

}  // namespace
}  // namespace cdsf
