// Intrinsic (algorithmic) imbalance: iteration costs varying with the
// iteration index — the other half of the paper's imbalance taxonomy
// (Section I distinguishes intrinsic from extrinsic/availability-driven
// imbalance). These tests run on FULLY DEDICATED processors so any
// imbalance observed is purely algorithmic.
#include <gtest/gtest.h>

#include "sim/loop_executor.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"
#include "workload/application.hpp"
#include "workload/generator.hpp"

namespace cdsf {
namespace {

using test::full_availability;
using workload::Application;
using workload::IterationProfile;
using workload::TimeLaw;
using workload::TimeLawKind;

Application profiled_app(IterationProfile profile, std::int64_t parallel = 1000,
                         double mean = 1000.0) {
  return Application("p", 0, parallel, {TimeLaw{TimeLawKind::kNormal, mean, 0.1}}, profile);
}

sim::SimConfig dedicated() {
  sim::SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  return config;
}

// ------------------------------------------------------ profile functions --

TEST(Profile, WorkFractionsAreCdfs) {
  for (IterationProfile profile :
       {IterationProfile::kFlat, IterationProfile::kIncreasing, IterationProfile::kDecreasing,
        IterationProfile::kParabolic}) {
    EXPECT_DOUBLE_EQ(workload::profile_work_fraction(profile, 0.0), 0.0)
        << to_string(profile);
    EXPECT_DOUBLE_EQ(workload::profile_work_fraction(profile, 1.0), 1.0)
        << to_string(profile);
    double prev = 0.0;
    for (double x = 0.05; x <= 1.0; x += 0.05) {
      const double f = workload::profile_work_fraction(profile, x);
      EXPECT_GE(f, prev - 1e-12) << to_string(profile) << " x=" << x;
      prev = f;
    }
  }
}

TEST(Profile, KnownValues) {
  EXPECT_DOUBLE_EQ(workload::profile_work_fraction(IterationProfile::kFlat, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(workload::profile_work_fraction(IterationProfile::kIncreasing, 0.5), 0.25);
  EXPECT_DOUBLE_EQ(workload::profile_work_fraction(IterationProfile::kDecreasing, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(workload::profile_work_fraction(IterationProfile::kParabolic, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(workload::profile_work_fraction(IterationProfile::kFlat, 2.0), 1.0);  // clamp
}

TEST(Profile, Names) {
  EXPECT_EQ(to_string(IterationProfile::kFlat), "flat");
  EXPECT_EQ(to_string(IterationProfile::kIncreasing), "increasing");
}

// ------------------------------------------------- work-in-range queries --

TEST(Profile, WorkInRangeSumsToParallelTotal) {
  const Application app = profiled_app(IterationProfile::kIncreasing);
  double total = 0.0;
  for (std::int64_t first = 0; first < 1000; first += 100) {
    total += app.parallel_work_in_range(0, first, 100);
  }
  EXPECT_NEAR(total, 1000.0, 1e-9);  // serial fraction 0 => all work parallel
}

TEST(Profile, IncreasingBackLoadedFrontCheap) {
  const Application app = profiled_app(IterationProfile::kIncreasing);
  const double front = app.parallel_work_in_range(0, 0, 250);
  const double back = app.parallel_work_in_range(0, 750, 250);
  EXPECT_LT(front, back);
  EXPECT_NEAR(front, 1000.0 * 0.0625, 1e-9);  // F(0.25) = 0.0625
  EXPECT_NEAR(back, 1000.0 * (1.0 - 0.5625), 1e-9);
}

TEST(Profile, RangeValidation) {
  const Application app = profiled_app(IterationProfile::kFlat);
  EXPECT_THROW(app.parallel_work_in_range(0, -1, 10), std::invalid_argument);
  EXPECT_THROW(app.parallel_work_in_range(0, 995, 10), std::invalid_argument);
  EXPECT_DOUBLE_EQ(app.parallel_work_in_range(0, 0, 0), 0.0);
}

// -------------------------------------------------- simulated consequences --

TEST(IntrinsicImbalance, StaticSuffersOnIncreasingLoop) {
  // STATIC gives worker 3 the last quarter of an increasing loop:
  // F(1) - F(0.75) = 0.4375 of the work => makespan = 437.5 on 4 dedicated
  // workers (flat would be 250).
  const Application app = profiled_app(IterationProfile::kIncreasing);
  const sim::RunResult run = sim::simulate_loop(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kStatic, dedicated(), 1);
  EXPECT_NEAR(run.makespan, 437.5, 1e-6);
}

TEST(IntrinsicImbalance, FlatProfileUnchangedByTheFeature) {
  // kFlat must reproduce the historical behavior bit-for-bit.
  const Application flat("p", 300, 700, {TimeLaw{TimeLawKind::kNormal, 1000.0, 0.1}});
  sim::SimConfig config;  // stochastic defaults
  const double a =
      sim::simulate_loop(flat, 0, 4, sysmodel::paper_case(1), dls::TechniqueId::kFAC, config, 5)
          .makespan;
  const Application same("p", 300, 700, {TimeLaw{TimeLawKind::kNormal, 1000.0, 0.1}},
                         IterationProfile::kFlat);
  const double b =
      sim::simulate_loop(same, 0, 4, sysmodel::paper_case(1), dls::TechniqueId::kFAC, config, 5)
          .makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(IntrinsicImbalance, DynamicTechniquesAbsorbTheProfile) {
  // On dedicated processors, self-scheduling redistributes the expensive
  // tail: every dynamic technique must beat STATIC on the increasing loop.
  const Application app = profiled_app(IterationProfile::kIncreasing, 4000, 4000.0);
  const double static_time = sim::simulate_loop(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kStatic, dedicated(), 3)
                                 .makespan;
  for (dls::TechniqueId id : {dls::TechniqueId::kSS, dls::TechniqueId::kGSS,
                              dls::TechniqueId::kTSS, dls::TechniqueId::kFAC,
                              dls::TechniqueId::kAF}) {
    const double dynamic_time =
        sim::simulate_loop(app, 0, 4, full_availability(1), id, dedicated(), 3).makespan;
    EXPECT_LT(dynamic_time, static_time) << dls::technique_name(id);
  }
}

TEST(IntrinsicImbalance, FirstChunkSizeDecidesTheDecreasingLoop) {
  // On a decreasing-cost loop the FRONT of the index space is expensive:
  // GSS's giant first chunk (N/P = 250 iterations = 43.75% of the work on
  // one worker) is a self-inflicted bottleneck, while TSS/FAC's first
  // chunks (N/2P) stay below it and SS balances almost perfectly.
  const Application app = profiled_app(IterationProfile::kDecreasing);
  const double gss = sim::simulate_loop(app, 0, 4, full_availability(1),
                                        dls::TechniqueId::kGSS, dedicated(), 3)
                         .makespan;
  EXPECT_NEAR(gss, 437.5, 10.0);  // hostage to its first chunk
  for (dls::TechniqueId id :
       {dls::TechniqueId::kSS, dls::TechniqueId::kTSS, dls::TechniqueId::kFAC}) {
    const double makespan =
        sim::simulate_loop(app, 0, 4, full_availability(1), id, dedicated(), 3).makespan;
    EXPECT_LT(makespan, gss * 0.75) << dls::technique_name(id);
  }
}

TEST(IntrinsicImbalance, IterationsConservedUnderEveryProfile) {
  for (IterationProfile profile :
       {IterationProfile::kIncreasing, IterationProfile::kDecreasing,
        IterationProfile::kParabolic}) {
    const Application app = profiled_app(profile, 997);
    for (dls::TechniqueId id : {dls::TechniqueId::kFAC, dls::TechniqueId::kAF}) {
      sim::SimConfig config;
      config.iteration_cov = 0.2;
      const sim::RunResult run =
          sim::simulate_loop(app, 0, 4, sysmodel::paper_case(1), id, config, 7);
      std::int64_t total = 0;
      for (const sim::WorkerStats& w : run.workers) total += w.iterations;
      EXPECT_EQ(total, 997) << to_string(profile) << " " << dls::technique_name(id);
    }
  }
}

TEST(IntrinsicImbalance, TotalWorkIndependentOfProfile) {
  // Same loop, same technique, dedicated processors, zero noise: the SUM of
  // busy time across workers equals the loop's total work (1000) for every
  // profile — the profile moves work around, never creates or destroys it.
  for (IterationProfile profile :
       {IterationProfile::kFlat, IterationProfile::kIncreasing,
        IterationProfile::kDecreasing, IterationProfile::kParabolic}) {
    const Application app = profiled_app(profile);
    const sim::RunResult run = sim::simulate_loop(app, 0, 4, full_availability(1),
                                                  dls::TechniqueId::kFAC, dedicated(), 2);
    double busy = 0.0;
    for (const sim::WorkerStats& w : run.workers) busy += w.busy_time;
    EXPECT_NEAR(busy, 1000.0, 1e-6) << to_string(profile);
  }
}

TEST(IntrinsicImbalance, GeneratorPropagatesProfile) {
  workload::BatchSpec spec;
  spec.applications = 3;
  spec.profile = IterationProfile::kParabolic;
  const workload::Batch batch = workload::generate_batch(spec, 1);
  for (const Application& app : batch) {
    EXPECT_EQ(app.profile(), IterationProfile::kParabolic);
  }
}

}  // namespace
}  // namespace cdsf
