// cdsf_lint engine + rules + CLI contract.
//
// Three layers:
//   1. Scrubber / suppression parsing on in-memory sources.
//   2. Rule semantics on synthetic sources with controlled paths.
//   3. The fixture files under tests/lint_fixtures/ (exact diagnostics) and
//      the installed cdsf_lint binary (exact exit codes, --json shape).
//
// CDSF_LINT_FIXTURES and CDSF_LINT_BINARY are injected by tests/CMakeLists.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"
#include "obs/json.hpp"

namespace {

using cdsf::lint::Diagnostic;
using cdsf::lint::LintResult;
using cdsf::lint::SourceFile;

LintResult lint_text(const std::string& path, const std::string& text) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string(path, text));
  return cdsf::lint::run_rules(files, cdsf::lint::default_rules());
}

std::vector<std::pair<std::string, std::size_t>> rule_lines(const std::vector<Diagnostic>& ds) {
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(ds.size());
  for (const Diagnostic& d : ds) out.emplace_back(d.rule, d.line);
  return out;
}

// --- scrubber ---------------------------------------------------------------

TEST(LintSource, BlanksCommentsAndLiteralsPreservingOffsets) {
  const std::string text =
      "int a = 1; // rand()\n"
      "const char* s = \"rand()\";\n"
      "/* system_clock */ int b = 2;\n"
      "const char c = 'x';\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  ASSERT_EQ(file.scrubbed().size(), file.raw().size());
  EXPECT_EQ(file.scrubbed().find("rand"), std::string::npos);
  EXPECT_EQ(file.scrubbed().find("system_clock"), std::string::npos);
  EXPECT_NE(file.scrubbed().find("int a = 1;"), std::string::npos);
  EXPECT_NE(file.scrubbed().find("int b = 2;"), std::string::npos);
  // Quotes stay so string boundaries remain visible; contents are blanked.
  EXPECT_NE(file.scrubbed().find("\"      \""), std::string::npos);
}

TEST(LintSource, HandlesRawStringsAndDigitSeparators) {
  const std::string text =
      "auto j = R\"json({\"x\": \"rand()\"})json\";\n"
      "int big = 1'000'000;\n"
      "int after = 3;\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  EXPECT_EQ(file.scrubbed().find("rand"), std::string::npos);
  // The digit separator must not open a char literal and swallow the rest.
  EXPECT_NE(file.scrubbed().find("int after = 3;"), std::string::npos);
}

TEST(LintSource, HandlesCustomDelimiterAndPrefixedRawStrings) {
  const std::string text =
      "auto a = R\"x(rand() \")\" still inside)x\";\n"
      "auto b = u8R\"(system_clock)\";\n"
      "auto c = LR\"d!(mt19937)d!\";\n"
      "int after = 7;\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  EXPECT_EQ(file.scrubbed().find("rand"), std::string::npos);
  EXPECT_EQ(file.scrubbed().find("system_clock"), std::string::npos);
  EXPECT_EQ(file.scrubbed().find("mt19937"), std::string::npos);
  // A custom delimiter means `")` inside the literal must NOT close it.
  EXPECT_NE(file.scrubbed().find("int after = 7;"), std::string::npos);
}

TEST(LintSource, HandlesPrefixedCharLiterals) {
  const std::string text =
      "char32_t a = U'x';\n"
      "wchar_t b = L')';\n"
      "auto c = u8'\"';\n"
      "int big = 1'000'000;\n"  // digit separators still must not open a literal
      "int after = 9;\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  EXPECT_NE(file.scrubbed().find("int after = 9;"), std::string::npos);
  // The quote inside L')' is blanked, so it cannot unbalance bracket matching.
  EXPECT_EQ(file.scrubbed().find("')'"), std::string::npos);
}

TEST(LintSource, LineCommentContinuesAcrossBackslashSplice) {
  const std::string text =
      "// first line \\\n"
      "rand() still commented\n"
      "int live = rand_limit;\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  EXPECT_EQ(file.scrubbed().find("rand()"), std::string::npos);
  EXPECT_NE(file.scrubbed().find("int live = rand_limit;"), std::string::npos);
}

TEST(LintSource, ParsesLineAndFileSuppressions) {
  const std::string text =
      "// cdsf-lint: allow-file(wall-clock)\n"
      "int a;\n"
      "int b; // cdsf-lint: allow(rng-source)\n"
      "// cdsf-lint: allow(bare-mutex-lock)\n"
      "int c;\n";
  const SourceFile file = SourceFile::from_string("x.cpp", text);
  ASSERT_EQ(file.suppressions().size(), 3u);
  EXPECT_TRUE(file.suppressed("wall-clock", 1));
  EXPECT_TRUE(file.suppressed("wall-clock", 999));  // file-wide
  EXPECT_TRUE(file.suppressed("rng-source", 3));
  EXPECT_FALSE(file.suppressed("rng-source", 4));
  EXPECT_TRUE(file.suppressed("bare-mutex-lock", 5));  // own-line -> next line
  EXPECT_FALSE(file.suppressed("bare-mutex-lock", 3));
}

TEST(LintSource, PlaceholderRuleNamesAreDiscarded) {
  const SourceFile file =
      SourceFile::from_string("x.cpp", "// syntax: cdsf-lint: allow(<rule>)\n");
  EXPECT_TRUE(file.suppressions().empty());
}

// --- rules ------------------------------------------------------------------

TEST(LintRules, RngSourceFlagsRawEnginesEverywhereButRngHpp) {
  const std::string text =
      "#include <random>\n"
      "int roll() { return rand() % 6; }\n"
      "std::mt19937 engine{std::random_device{}()};\n";
  const LintResult hit = lint_text("src/stats/x.cpp", text);
  EXPECT_EQ(rule_lines(hit.violations),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"rng-source", 2}, {"rng-source", 3}, {"rng-source", 3}}));
  const LintResult exempt = lint_text("src/util/rng.hpp", text);
  EXPECT_TRUE(exempt.violations.empty());
}

TEST(LintRules, WallClockOnlyFiresInDeterministicPaths) {
  const std::string text =
      "#include <chrono>\n"
      "auto t = std::chrono::system_clock::now();\n"
      "long u = time(nullptr);\n"
      "long v = event.time();\n";  // member call: not libc time()
  const LintResult sim_hit = lint_text("src/sim/x.cpp", text);
  EXPECT_EQ(rule_lines(sim_hit.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"wall-clock", 2},
                                                              {"wall-clock", 3}}));
  EXPECT_TRUE(lint_text("src/obs/x.cpp", text).violations.empty());
  EXPECT_TRUE(lint_text("bench/x.cpp", text).violations.empty());
}

TEST(LintRules, SvcWallClockFiresEverywhereInSvcButTheVirtualTimeSource) {
  const std::string text =
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "long u = time(nullptr);\n"
      "long v = clock.now();\n";  // member call: the VirtualClock, not libc
  const LintResult svc_hit = lint_text("src/svc/service.cpp", text);
  EXPECT_EQ(rule_lines(svc_hit.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"svc-wall-clock", 2},
                                                              {"svc-wall-clock", 3}}));
  // The one sanctioned time source is exempt; non-svc paths are not this
  // rule's business (src/sim etc. are WallClockRule's).
  EXPECT_TRUE(lint_text("src/svc/virtual_time.hpp", text).violations.empty());
  EXPECT_TRUE(lint_text("src/obs/x.cpp", text).violations.empty());
  const LintResult sim_hit = lint_text("src/sim/x.cpp", text);
  for (const Diagnostic& diagnostic : sim_hit.violations) {
    EXPECT_EQ(diagnostic.rule, "wall-clock");
  }
}

TEST(LintRules, UnorderedIterationFlagsRangeForAndBeginButNotLookup) {
  const std::string text =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : table) s += v;\n"
      "  auto it = table.begin();\n"
      "  return s + (table.find(0) != table.end() ? 1 : 0);\n"
      "}\n";
  const LintResult result = lint_text("src/obs/x.cpp", text);
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"unordered-iteration", 5},
                                                              {"unordered-iteration", 6}}));
}

TEST(LintRules, BareMutexLockFlagsMemberCallsButNotWeakPtrOrGuards) {
  const std::string text =
      "void f(std::mutex& m, std::weak_ptr<int>& weak) {\n"
      "  m.lock();\n"
      "  m.unlock();\n"
      "  std::scoped_lock lock(m);\n"
      "  auto strong = weak.lock();\n"
      "}\n";
  const LintResult result = lint_text("src/sim/x.cpp", text);
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"bare-mutex-lock", 2},
                                                              {"bare-mutex-lock", 3}}));
}

TEST(LintRules, ReportSchemaTagRequiresSetSchemaInObsReportBuilders) {
  const std::string text =
      "Json make_x_report(int v) {\n"
      "  Json doc = Json::object();\n"
      "  doc.set(\"value\", v);\n"
      "  return doc;\n"
      "}\n"
      "Json make_y_report(int v);\n"  // declaration: ignored
      "Json make_widget(int v) { return Json(); }\n";  // not a report builder
  const LintResult obs_hit = lint_text("src/obs/report.cpp", text);
  EXPECT_EQ(rule_lines(obs_hit.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"report-schema-tag", 1}}));
  EXPECT_TRUE(lint_text("src/sim/report.cpp", text).violations.empty());
}

TEST(LintRules, MetricNameEnforcesSubsystemPrefixOutsideTests) {
  const std::string text =
      "void f(obs::MetricsRegistry& metrics, stats::StreamingSummary& summary) {\n"
      "  metrics.add(\"sim.chunks\");\n"
      "  metrics.add(\"chunks\");\n"
      "  metrics.observe(\"sim.Makespan\", 1.0);\n"
      "  metrics.set_gauge(\"cdsf.stage1.phi1\", 0.5);\n"
      "  metrics.set_histogram_bounds(\"obs.q\", {1.0, 2.0});\n"
      "  metrics.add(computed_name);\n"  // non-literal name: out of scope
      "  summary.add(4.0);\n"            // different API entirely
      "  obs::ScopedTimer timer(metrics, \"stage2.seconds\");\n"
      "}\n";
  const LintResult hit = lint_text("src/sim/x.cpp", text);
  EXPECT_EQ(rule_lines(hit.violations),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"metric-name", 3}, {"metric-name", 4}, {"metric-name", 9}}))
      << cdsf::lint::to_text(hit);
  // Unit tests name throwaway local-registry series freely.
  EXPECT_TRUE(lint_text("tests/test_x.cpp", text).violations.empty());
}

TEST(LintRules, UnknownSuppressionIsAViolation) {
  const LintResult result =
      lint_text("src/x.cpp", "int a; // cdsf-lint: allow(no-such-rule)\n");
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"unknown-suppression", 1}}));
}

// --- fixtures ---------------------------------------------------------------

std::string fixture(const std::string& name) {
  return std::string(CDSF_LINT_FIXTURES) + "/" + name;
}

LintResult lint_fixture(const std::string& name) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::load(fixture(name)));
  return cdsf::lint::run_rules(files, cdsf::lint::default_rules());
}

TEST(LintFixtures, CleanFileHasNoFindings) {
  const LintResult result = lint_fixture("clean.cxx");
  EXPECT_TRUE(result.violations.empty()) << cdsf::lint::to_text(result);
  EXPECT_TRUE(result.suppressed.empty());
}

TEST(LintFixtures, ViolationsFileTripsEachPathIndependentRule) {
  const LintResult result = lint_fixture("violations.cxx");
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{
                {"rng-source", 11},
                {"rng-source", 13},
                {"rng-source", 13},
                {"unordered-iteration", 19},
                {"bare-mutex-lock", 26},
                {"bare-mutex-lock", 27}}))
      << cdsf::lint::to_text(result);
}

TEST(LintFixtures, WallClockFixtureTripsOnlyInsideSimPath) {
  const LintResult result = lint_fixture("sim/wall_clock.cxx");
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"wall-clock", 10},
                                                              {"wall-clock", 14}}))
      << cdsf::lint::to_text(result);
}

TEST(LintFixtures, UntaggedReportFixtureTripsSchemaRule) {
  const LintResult result = lint_fixture("obs/untagged_report.cxx");
  EXPECT_EQ(rule_lines(result.violations),
            (std::vector<std::pair<std::string, std::size_t>>{{"report-schema-tag", 8}}))
      << cdsf::lint::to_text(result);
}

TEST(LintFixtures, ScrubEdgeCasesFileIsClean) {
  // Raw strings with custom delimiters and encoding prefixes, a
  // line-spliced comment, and prefixed char literals — every rule token in
  // the file is inside a literal or comment. Re-rooted under src/sim/ so
  // the path-gated wall-clock rule is armed too.
  std::ifstream in(fixture("scrub_edges.cxx"));
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string("src/sim/scrub_edges.cxx", text));
  const LintResult result = cdsf::lint::run_rules(files, cdsf::lint::default_rules());
  EXPECT_TRUE(result.violations.empty()) << cdsf::lint::to_text(result);
  EXPECT_TRUE(result.suppressed.empty());
}

TEST(LintFixtures, SuppressedFileIsCleanWithListedSuppressions) {
  const LintResult result = lint_fixture("suppressed.cxx");
  EXPECT_TRUE(result.violations.empty()) << cdsf::lint::to_text(result);
  EXPECT_EQ(rule_lines(result.suppressed),
            (std::vector<std::pair<std::string, std::size_t>>{{"rng-source", 12},
                                                              {"bare-mutex-lock", 17},
                                                              {"bare-mutex-lock", 18}}));
  EXPECT_EQ(result.exit_code(), 0);
}

// --- binary contract --------------------------------------------------------

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_binary(const std::string& args) {
  const std::string command = std::string(CDSF_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  CommandResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) result.output.append(buffer, n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(LintBinary, ExitCodesFollowTheContract) {
  EXPECT_EQ(run_binary(fixture("clean.cxx")).exit_code, 0);
  EXPECT_EQ(run_binary(fixture("suppressed.cxx")).exit_code, 0);
  EXPECT_EQ(run_binary(fixture("violations.cxx")).exit_code, 1);
  EXPECT_EQ(run_binary(fixture("sim/wall_clock.cxx")).exit_code, 1);
  EXPECT_EQ(run_binary("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_binary(fixture("missing.cxx")).exit_code, 2);
  EXPECT_EQ(run_binary("--rule no-such-rule " + fixture("clean.cxx")).exit_code, 2);
}

TEST(LintBinary, TextOutputCarriesExactDiagnostics) {
  const CommandResult result = run_binary(fixture("violations.cxx"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("violations.cxx:11: error: [rng-source]"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("violations.cxx:19: error: [unordered-iteration]"),
            std::string::npos);
  EXPECT_NE(result.output.find("violations.cxx:26: error: [bare-mutex-lock]"),
            std::string::npos);
  EXPECT_NE(result.output.find("6 violation(s), 0 suppressed"), std::string::npos);
}

TEST(LintBinary, JsonOutputParsesAndCountsMatch) {
  const CommandResult result =
      run_binary("--json " + fixture("violations.cxx") + " " + fixture("suppressed.cxx"));
  EXPECT_EQ(result.exit_code, 1);
  const cdsf::obs::Json doc = cdsf::obs::Json::parse(result.output);
  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.lint_report/2");
  EXPECT_EQ(doc.at("files_scanned").as_int(), 2);
  EXPECT_EQ(doc.at("violation_count").as_int(), 6);
  EXPECT_EQ(doc.at("suppression_count").as_int(), 3);
  EXPECT_FALSE(doc.at("clean").as_bool());
  EXPECT_EQ(doc.at("violations").size(), 6u);
  EXPECT_EQ(doc.at("suppressions").size(), 3u);
}

TEST(LintBinary, RuleFilterRunsOnlyTheNamedRule) {
  const CommandResult result = run_binary("--rule rng-source " + fixture("violations.cxx"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("3 violation(s)"), std::string::npos) << result.output;
  EXPECT_EQ(result.output.find("bare-mutex-lock"), std::string::npos);
}

}  // namespace
