// Project-wide lint passes: index construction, include-layering,
// lock-order, determinism-taint, registry-sync, engine pass routing, and
// the cdsf_lint binary's project-mode flags.
//
// Three layers, mirroring test_lint.cpp:
//   1. Pass semantics on in-memory sources with controlled paths.
//   2. Engine-level suppression routing (allow(<pass-id>) markers).
//   3. The installed binary against the real tree's manifests — the same
//      invocation the lint_tree CI gate runs, so the tree itself is pinned
//      clean from inside the test suite.
//
// CDSF_LINT_FIXTURES, CDSF_LINT_BINARY, and CDSF_SOURCE_ROOT are injected
// by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/engine.hpp"
#include "lint/index.hpp"
#include "lint/layering.hpp"
#include "lint/lockorder.hpp"
#include "lint/registry_check.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"
#include "lint/taint.hpp"
#include "obs/json.hpp"

namespace {

using cdsf::lint::build_index;
using cdsf::lint::Diagnostic;
using cdsf::lint::LayeringManifest;
using cdsf::lint::LintResult;
using cdsf::lint::ProjectIndex;
using cdsf::lint::ProjectOptions;
using cdsf::lint::SourceFile;

std::vector<SourceFile> sources(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::vector<SourceFile> files;
  files.reserve(entries.size());
  for (const auto& [path, text] : entries) files.push_back(SourceFile::from_string(path, text));
  return files;
}

/// Writes `text` under the gtest temp dir and returns the absolute path.
std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

std::string diag_text(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.pass + "] " + d.message + "\n";
  }
  return out;
}

// --- index ------------------------------------------------------------------

TEST(LintIndex, ResolvesIncludesPreferringSameDirectoryThenSuffix) {
  const auto files = sources({
      {"src/a/x.hpp", "int ax;\n"},
      {"src/b/x.hpp", "int bx;\n"},
      {"src/a/y.cpp", "#include \"x.hpp\"\n#include \"b/x.hpp\"\n#include \"gone.hpp\"\n"},
  });
  const ProjectIndex index = build_index(files);
  ASSERT_EQ(index.includes.size(), 3u);
  EXPECT_EQ(index.includes[0].to_file, index.file_id("src/a/x.hpp"));  // same dir wins
  EXPECT_EQ(index.includes[1].to_file, index.file_id("src/b/x.hpp"));  // suffix match
  EXPECT_EQ(index.includes[2].to_file, ProjectIndex::npos);            // external
  EXPECT_EQ(index.includes[1].line, 2u);
}

TEST(LintIndex, FindsFunctionBodiesAndFirstCallPerName) {
  const auto files = sources({{"src/a/f.cpp",
                               "int helper(int v) { return v + 1; }\n"
                               "auto trailing(int v) -> int {\n"
                               "  helper(v);\n"
                               "  helper(v + 2);\n"  // second call: deduplicated
                               "  return helper(3);\n"
                               "}\n"
                               "Widget::Widget(int v) : value_(v), name_(\"w\") {\n"
                               "  helper(v);\n"
                               "}\n"
                               "int declared(int v);\n"}});
  const ProjectIndex index = build_index(files);
  std::vector<std::string> names;
  for (const auto& def : index.functions) names.push_back(def.name);
  EXPECT_EQ(names, (std::vector<std::string>{"helper", "trailing", "Widget"}));
  std::size_t trailing_calls = 0;
  for (const auto& call : index.calls) {
    if (index.functions[call.caller].name == "trailing") {
      ++trailing_calls;
      EXPECT_EQ(call.name, "helper");
      EXPECT_EQ(call.line, 3u);  // first occurrence only
    }
  }
  EXPECT_EQ(trailing_calls, 1u);
}

TEST(LintIndex, FindsMutexDeclarationsAndGuardSites) {
  const auto files = sources({{"src/a/m.cpp",
                               "std::mutex mu_a;\n"
                               "std::recursive_mutex mu_r;\n"
                               "void f() {\n"
                               "  std::scoped_lock both(mu_a, mu_r);\n"
                               "  std::unique_lock<std::mutex> lazy(mu_a, std::defer_lock);\n"
                               "}\n"}});
  const ProjectIndex index = build_index(files);
  ASSERT_EQ(index.mutexes.size(), 2u);
  EXPECT_FALSE(index.mutexes[0].recursive);
  EXPECT_TRUE(index.mutexes[1].recursive);
  ASSERT_EQ(index.locks.size(), 1u);  // defer_lock site not recorded
  EXPECT_EQ(index.locks[0].guard, "scoped_lock");
  EXPECT_EQ(index.locks[0].mutexes, (std::vector<std::string>{"mu_a", "mu_r"}));
  EXPECT_EQ(index.functions[index.locks[0].function].name, "f");
}

// --- include-layering -------------------------------------------------------

std::string manifest_json(const std::string& layers) {
  return "{\"schema\": \"cdsf.layering/1\", \"layers\": [" + layers + "]}";
}

TEST(LintLayering, ParseRejectsMalformedManifests) {
  EXPECT_THROW(LayeringManifest::parse("{\"schema\": \"cdsf.layering/9\", \"layers\": []}"),
               std::runtime_error);
  EXPECT_THROW(  // duplicate layer name
      LayeringManifest::parse(manifest_json(
          R"({"name": "a", "match": ["src/a"], "allow": []},
             {"name": "a", "match": ["src/b"], "allow": []})")),
      std::runtime_error);
  EXPECT_THROW(  // allow names an unknown layer
      LayeringManifest::parse(
          manifest_json(R"({"name": "a", "match": ["src/a"], "allow": ["ghost"]})")),
      std::runtime_error);
  EXPECT_THROW(  // cyclic allow graph: the manifest must order the architecture
      LayeringManifest::parse(manifest_json(
          R"({"name": "a", "match": ["src/a"], "allow": ["b"]},
             {"name": "b", "match": ["src/b"], "allow": ["a"]})")),
      std::runtime_error);
}

TEST(LintLayering, FirstMatchingLayerWinsAndPatternsHandleAbsolutePaths) {
  const LayeringManifest manifest = LayeringManifest::parse(manifest_json(
      R"({"name": "special", "match": ["src/obs/report.hpp"], "allow": []},
         {"name": "obs", "match": ["src/obs"], "allow": []},
         {"name": "harness", "match": ["tests"], "allow": ["*"]})"));
  EXPECT_EQ(manifest.layers[manifest.layer_of("src/obs/report.hpp")].name, "special");
  EXPECT_EQ(manifest.layers[manifest.layer_of("src/obs/metrics.hpp")].name, "obs");
  EXPECT_EQ(manifest.layers[manifest.layer_of("/abs/checkout/src/obs/json.hpp")].name, "obs");
  EXPECT_EQ(manifest.layers[manifest.layer_of("tests/test_x.cpp")].name, "harness");
  EXPECT_EQ(manifest.layer_of("bench/bench_x.cpp"), LayeringManifest::npos);
}

TEST(LintLayering, FlagsIllegalEdgeAtTheIncludeSite) {
  const auto files = sources({
      {"src/util/helper.hpp", "#include \"sim/engine.hpp\"\nint h;\n"},
      {"src/sim/engine.hpp", "#include \"util/helper.hpp\"\nint e;\n"},
  });
  const ProjectIndex index = build_index(files);
  const LayeringManifest manifest = LayeringManifest::parse(manifest_json(
      R"({"name": "util", "match": ["src/util"], "allow": []},
         {"name": "sim", "match": ["src/sim"], "allow": ["util"]})"));
  const auto result = cdsf::lint::check_layering(index, manifest);
  // util→sim is illegal; sim→util is declared. The cycle the two files form
  // is reported separately.
  bool found_edge = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.message.find("layer 'util' must not include layer 'sim'") != std::string::npos) {
      found_edge = true;
      EXPECT_EQ(d.file, "src/util/helper.hpp");
      EXPECT_EQ(d.line, 1u);
      EXPECT_EQ(d.pass, cdsf::lint::kLayeringPass);
    }
  }
  EXPECT_TRUE(found_edge) << diag_text(result.diagnostics);
  EXPECT_EQ(result.edges_checked, 2u);
}

TEST(LintLayering, FlagsUnmatchedFilesAndIncludeCycles) {
  const auto files = sources({
      {"src/a/one.hpp", "#include \"two.hpp\"\n"},
      {"src/a/two.hpp", "#include \"one.hpp\"\n"},
      {"scripts/loose.hpp", "int l;\n"},
  });
  const ProjectIndex index = build_index(files);
  const LayeringManifest manifest = LayeringManifest::parse(
      manifest_json(R"({"name": "a", "match": ["src/a"], "allow": []})"));
  const auto result = cdsf::lint::check_layering(index, manifest);
  EXPECT_EQ(result.files_unmatched, 1u);
  bool unmatched = false;
  bool cycle = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.file == "scripts/loose.hpp" && d.line == 1) unmatched = true;
    if (d.message.find("include cycle") != std::string::npos) cycle = true;
  }
  EXPECT_TRUE(unmatched) << diag_text(result.diagnostics);
  EXPECT_TRUE(cycle) << diag_text(result.diagnostics);
}

TEST(LintLayering, ReportsUnusedAllowEdgesAsNotes) {
  const auto files = sources({{"src/a/x.hpp", "int x;\n"}, {"src/b/y.hpp", "int y;\n"}});
  const ProjectIndex index = build_index(files);
  const LayeringManifest manifest = LayeringManifest::parse(manifest_json(
      R"({"name": "b", "match": ["src/b"], "allow": []},
         {"name": "a", "match": ["src/a"], "allow": ["b"]})"));
  const auto result = cdsf::lint::check_layering(index, manifest);
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  ASSERT_EQ(result.notes.size(), 1u);
  EXPECT_NE(result.notes[0].find("declared but no include uses it"), std::string::npos)
      << result.notes[0];
  EXPECT_NE(result.notes[0].find("a -> b"), std::string::npos) << result.notes[0];
}

TEST(LintLayering, DotRendersLayersObservedAndUnusedEdges) {
  const auto files = sources({
      {"src/a/x.hpp", "#include \"b/y.hpp\"\n"},
      {"src/b/y.hpp", "int y;\n"},
      {"src/c/z.hpp", "#include \"b/y.hpp\"\n"},  // illegal: c allows nothing
  });
  const ProjectIndex index = build_index(files);
  const LayeringManifest manifest = LayeringManifest::parse(manifest_json(
      R"({"name": "b", "match": ["src/b"], "allow": []},
         {"name": "a", "match": ["src/a"], "allow": ["b"]},
         {"name": "c", "match": ["src/c"], "allow": []},
         {"name": "d", "match": ["src/d"], "allow": ["b"]})"));
  const std::string dot = cdsf::lint::layering_dot(index, manifest);
  EXPECT_NE(dot.find("digraph layering"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"b\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("red"), std::string::npos) << dot;     // the illegal c→b edge
  EXPECT_NE(dot.find("dashed"), std::string::npos) << dot;  // the unused d→b allow
}

// --- lock-order -------------------------------------------------------------

TEST(LintLockOrder, FlagsInversionAcrossFunctionsOncePerPair) {
  const auto files = sources({{"src/x/locks.cpp",
                               "std::mutex mu_a;\n"
                               "std::mutex mu_b;\n"
                               "void forward() {\n"
                               "  std::scoped_lock l1(mu_a);\n"
                               "  std::scoped_lock l2(mu_b);\n"
                               "}\n"
                               "void backward() {\n"
                               "  std::scoped_lock l1(mu_b);\n"
                               "  std::scoped_lock l2(mu_a);\n"
                               "}\n"}});
  const auto result = cdsf::lint::check_lock_order(build_index(files));
  EXPECT_EQ(result.edges, 2u);
  ASSERT_EQ(result.diagnostics.size(), 1u) << diag_text(result.diagnostics);
  // Anchored at the (mu_b, mu_a) orientation — the second-sorting pair.
  EXPECT_EQ(result.diagnostics[0].file, "src/x/locks.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 9u);
  EXPECT_NE(result.diagnostics[0].message.find(
                "'mu_b' then 'mu_a' here, but 'mu_a' then 'mu_b' at src/x/locks.cpp:5"),
            std::string::npos)
      << result.diagnostics[0].message;
}

TEST(LintLockOrder, ScopeExitReleasesGuardsSoNoEdgeForms) {
  const auto files = sources({{"src/x/locks.cpp",
                               "std::mutex mu_a;\n"
                               "std::mutex mu_b;\n"
                               "void sequential() {\n"
                               "  { std::scoped_lock l1(mu_a); }\n"  // released here
                               "  std::scoped_lock l2(mu_b);\n"
                               "}\n"
                               "void backward() {\n"
                               "  std::scoped_lock l1(mu_b);\n"
                               "  std::scoped_lock l2(mu_a);\n"
                               "}\n"}});
  const auto result = cdsf::lint::check_lock_order(build_index(files));
  EXPECT_EQ(result.edges, 1u);  // only backward's b→a
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
}

TEST(LintLockOrder, MultiMutexScopedLockAcquiresAtomically) {
  const auto files = sources({{"src/x/locks.cpp",
                               "std::mutex mu_a;\n"
                               "std::mutex mu_b;\n"
                               "void forward() { std::scoped_lock l(mu_a, mu_b); }\n"
                               "void backward() { std::scoped_lock l(mu_b, mu_a); }\n"}});
  const auto result = cdsf::lint::check_lock_order(build_index(files));
  // std::scoped_lock's deadlock-avoidance makes argument order irrelevant.
  EXPECT_EQ(result.edges, 0u);
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  EXPECT_EQ(result.sites, 2u);
}

TEST(LintLockOrder, FlagsSelfReacquisitionExceptRecursiveAndSharedPairs) {
  const auto files = sources({{"src/x/locks.cpp",
                               "std::mutex mu_a;\n"
                               "std::recursive_mutex mu_r;\n"
                               "std::shared_mutex mu_s;\n"
                               "void deadlocks() {\n"
                               "  std::scoped_lock l1(mu_a);\n"
                               "  std::scoped_lock l2(mu_a);\n"
                               "}\n"
                               "void recursive_ok() {\n"
                               "  std::scoped_lock l1(mu_r);\n"
                               "  std::scoped_lock l2(mu_r);\n"
                               "}\n"
                               "void shared_ok() {\n"
                               "  std::shared_lock l1(mu_s);\n"
                               "  std::shared_lock l2(mu_s);\n"
                               "}\n"}});
  const auto result = cdsf::lint::check_lock_order(build_index(files));
  ASSERT_EQ(result.diagnostics.size(), 1u) << diag_text(result.diagnostics);
  EXPECT_EQ(result.diagnostics[0].line, 6u);
  EXPECT_NE(result.diagnostics[0].message.find("re-acquired while already held"),
            std::string::npos);
  EXPECT_NE(result.diagnostics[0].message.find("src/x/locks.cpp:5"), std::string::npos);
}

TEST(LintLockOrder, SameNameInDifferentDirectoriesIsADifferentLock) {
  const auto files = sources({
      {"src/x/one.cpp",
       "std::mutex mu_;\nstd::mutex other_;\n"
       "void f() { std::scoped_lock l1(mu_); std::scoped_lock l2(other_); }\n"},
      {"src/y/two.cpp",
       "std::mutex mu_;\nstd::mutex other_;\n"
       "void g() { std::scoped_lock l1(other_); std::scoped_lock l2(mu_); }\n"},
  });
  const auto result = cdsf::lint::check_lock_order(build_index(files));
  // src/x:mu_ and src/y:mu_ are distinct identities — no inversion.
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  EXPECT_EQ(result.edges, 2u);
}

// --- determinism-taint ------------------------------------------------------

TEST(LintTaint, FlagsLaunderedClockReachingSimWithFullChain) {
  const auto files = sources({
      {"src/util/timing.hpp",
       "inline double now_seconds() {\n"
       "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
       "}\n"
       "inline double stamp() { return now_seconds(); }\n"},
      {"src/sim/engine.cpp",
       "#include \"util/timing.hpp\"\n"
       "double step() { return stamp(); }\n"},
  });
  const auto result = cdsf::lint::check_determinism_taint(build_index(files));
  ASSERT_EQ(result.diagnostics.size(), 1u) << diag_text(result.diagnostics);
  EXPECT_EQ(result.diagnostics[0].file, "src/sim/engine.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 2u);  // at step()'s definition
  EXPECT_NE(result.diagnostics[0].message.find("step -> stamp -> now_seconds"),
            std::string::npos)
      << result.diagnostics[0].message;
  EXPECT_NE(result.diagnostics[0].message.find("steady_clock"), std::string::npos);
  EXPECT_EQ(result.seeds, 1u);
  EXPECT_EQ(result.tainted, 3u);  // now_seconds (the seed), stamp, step
}

TEST(LintTaint, TrustedObsCallersAbsorbTaint) {
  const auto files = sources({
      {"src/util/timing.hpp", "inline double now_seconds() { return clock(); }\n"},
      {"src/obs/flight.cpp", "double annotate() { return now_seconds(); }\n"},
  });
  const auto result = cdsf::lint::check_determinism_taint(build_index(files));
  // obs/ timestamps are observability metadata: the call is absorbed, never
  // flagged, and taint does not continue through the trusted caller.
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  EXPECT_EQ(result.seeds, 1u);
}

TEST(LintTaint, AmbiguousCalleeNamesResolveToNothing) {
  const auto files = sources({
      {"src/util/a.hpp", "inline double helper() { return clock(); }\n"},
      {"src/stats/b.hpp", "inline double helper() { return 0.0; }\n"},
      {"src/sim/engine.cpp", "double step() { return helper(); }\n"},
  });
  const auto result = cdsf::lint::check_determinism_taint(build_index(files));
  // Two unrelated helper() definitions: guessing would fabricate findings.
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
}

TEST(LintTaint, SuppressedSeedLinesDoNotSeed) {
  const auto files = sources({
      {"src/util/timing.hpp",
       "inline double now_seconds() {\n"
       "  return clock();  // cdsf-lint: allow(wall-clock)\n"
       "}\n"},
      {"src/sim/engine.cpp",
       "#include \"util/timing.hpp\"\n"
       "double step() { return now_seconds(); }\n"},
  });
  const auto result = cdsf::lint::check_determinism_taint(build_index(files));
  // The underlying lexical finding was deliberately waived; the taint pass
  // must not resurrect it transitively.
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  EXPECT_EQ(result.seeds, 0u);
}

// --- registry-sync ----------------------------------------------------------

cdsf::lint::RegistryInput registry_input(const std::string& registry_text,
                                         const std::string& doc_text) {
  cdsf::lint::RegistryInput input;
  if (!registry_text.empty()) {
    input.registry_path = "tools/obs_registry.json";
    input.registry_text = registry_text;
  }
  if (!doc_text.empty()) {
    input.doc_path = "docs/observability.md";
    input.doc_text = doc_text;
  }
  return input;
}

const char* const kRegistryOk =
    "{\"schema\": \"cdsf.obs_registry/1\",\n"
    " \"schemas\": [\"cdsf.run_report/1\"],\n"
    " \"metrics\": [\"sim.makespan\"]}";

TEST(LintRegistry, CleanWhenCodeRegistryAndDocAgree) {
  const auto files = sources({{"src/obs/report.cpp",
                               "void f(obs::MetricsRegistry& m) {\n"
                               "  doc.set(\"schema\", \"cdsf.run_report/1\");\n"
                               "  m.add(\"sim.makespan\");\n"
                               "}\n"}});
  const std::string doc =
      "| `cdsf.run_report/1` | run report |\n| `sim.makespan` | counter |\n";
  const auto result =
      cdsf::lint::check_registry(build_index(files), registry_input(kRegistryOk, doc));
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
  EXPECT_EQ(result.code_schemas, 1u);
  EXPECT_EQ(result.code_metrics, 1u);
}

TEST(LintRegistry, FlagsUndocumentedEmissionsAtTheEmittingLine) {
  const auto files = sources({{"src/sim/engine.cpp",
                               "void f(obs::MetricsRegistry& m) {\n"
                               "  m.add(\"sim.new_series\");\n"
                               "  doc.set(\"schema\", \"cdsf.new_report/1\");\n"
                               "}\n"}});
  const auto result =
      cdsf::lint::check_registry(build_index(files), registry_input(kRegistryOk, ""));
  // The new metric and schema are undocumented; the registry's entries are
  // now orphaned (nothing in this scan set emits them).
  ASSERT_EQ(result.diagnostics.size(), 4u) << diag_text(result.diagnostics);
  bool metric_hit = false;
  bool schema_hit = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.file == "src/sim/engine.cpp" && d.line == 2) metric_hit = true;
    if (d.file == "src/sim/engine.cpp" && d.line == 3) schema_hit = true;
  }
  EXPECT_TRUE(metric_hit) << diag_text(result.diagnostics);
  EXPECT_TRUE(schema_hit) << diag_text(result.diagnostics);
}

TEST(LintRegistry, FlagsOrphanedRegistryEntriesAtTheirRegistryLine) {
  const auto files = sources({{"src/obs/report.cpp",
                               "void f() { doc.set(\"schema\", \"cdsf.run_report/1\"); }\n"}});
  const auto result =
      cdsf::lint::check_registry(build_index(files), registry_input(kRegistryOk, ""));
  // sim.makespan is registered but nothing emits it.
  ASSERT_EQ(result.diagnostics.size(), 1u) << diag_text(result.diagnostics);
  EXPECT_EQ(result.diagnostics[0].file, "tools/obs_registry.json");
  EXPECT_EQ(result.diagnostics[0].line, 3u);  // the "metrics" line of kRegistryOk
  EXPECT_NE(result.diagnostics[0].message.find("sim.makespan"), std::string::npos);
}

TEST(LintRegistry, FlagsVersionSkewOnceInsteadOfOrphanPlusUndocumented) {
  const auto files = sources({{"src/obs/report.cpp",
                               "void f(obs::MetricsRegistry& m) {\n"
                               "  doc.set(\"schema\", \"cdsf.run_report/2\");\n"
                               "  m.add(\"sim.makespan\");\n"
                               "}\n"}});
  const auto result =
      cdsf::lint::check_registry(build_index(files), registry_input(kRegistryOk, ""));
  ASSERT_EQ(result.diagnostics.size(), 1u) << diag_text(result.diagnostics);
  EXPECT_EQ(result.diagnostics[0].file, "src/obs/report.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 2u);
  EXPECT_NE(result.diagnostics[0].message.find("cdsf.run_report/2"), std::string::npos);
  EXPECT_NE(result.diagnostics[0].message.find("registers version 1"), std::string::npos);
}

TEST(LintRegistry, TestSourcesMayMintThrowawayNames) {
  const auto files = sources({
      {"src/obs/report.cpp",
       "void f(obs::MetricsRegistry& m) {\n"
       "  doc.set(\"schema\", \"cdsf.run_report/1\");\n"
       "  m.add(\"sim.makespan\");\n"
       "}\n"},
      {"tests/test_x.cpp", "void g(obs::MetricsRegistry& m) { m.add(\"sim.scratch\"); }\n"},
  });
  const auto result =
      cdsf::lint::check_registry(build_index(files), registry_input(kRegistryOk, ""));
  EXPECT_TRUE(result.diagnostics.empty()) << diag_text(result.diagnostics);
}

// --- engine pass routing ----------------------------------------------------

LintResult run_project(const std::vector<SourceFile>& files, const ProjectOptions& options) {
  return cdsf::lint::run_project(files, cdsf::lint::default_rules(), options);
}

TEST(LintEngine, DefaultPassesSkipAnalysesWithoutInputs) {
  const auto files = sources({{"src/a/x.cpp", "int x;\n"}});
  const LintResult result = run_project(files, {});
  ASSERT_EQ(result.passes.size(), 5u);
  for (const auto& pass : result.passes) {
    const bool needs_input =
        pass.name == cdsf::lint::kLayeringPass || pass.name == cdsf::lint::kRegistryPass;
    EXPECT_EQ(pass.ran, !needs_input) << pass.name;
  }
}

TEST(LintEngine, ExplicitPassWithoutItsInputThrows) {
  const auto files = sources({{"src/a/x.cpp", "int x;\n"}});
  ProjectOptions layering_only;
  layering_only.passes = {cdsf::lint::kLayeringPass};
  EXPECT_THROW((void)run_project(files, layering_only), std::runtime_error);
  ProjectOptions registry_only;
  registry_only.passes = {cdsf::lint::kRegistryPass};
  EXPECT_THROW((void)run_project(files, registry_only), std::runtime_error);
  ProjectOptions dot_without_layering;
  dot_without_layering.want_dot = true;
  EXPECT_THROW((void)run_project(files, dot_without_layering), std::runtime_error);
  ProjectOptions unknown;
  unknown.passes = {"no-such-pass"};
  EXPECT_THROW((void)run_project(files, unknown), std::runtime_error);
}

TEST(LintEngine, PassDiagnosticsHonorAllowSuppressions) {
  const std::string manifest_path = write_temp(
      "lint_layering_manifest.json",
      manifest_json(R"({"name": "util", "match": ["src/util"], "allow": []},
                       {"name": "sim", "match": ["src/sim"], "allow": ["util"]})"));
  const auto files = sources({
      {"src/util/h.hpp",
       "#include \"sim/e.hpp\"  // cdsf-lint: allow(include-layering)\n"},
      {"src/sim/e.hpp",
       "// cdsf-lint: allow-file(include-layering)\n"  // waives the cycle report
       "#include \"util/h.hpp\"\n"
       "std::mutex mu_a;\n"
       "std::mutex mu_b;\n"
       "void forward() {\n"
       "  std::scoped_lock l1(mu_a);\n"
       "  std::scoped_lock l2(mu_b);\n"
       "}\n"
       "void backward() {\n"
       "  std::scoped_lock l1(mu_b);\n"
       "  // cdsf-lint: allow(lock-order)\n"
       "  std::scoped_lock l2(mu_a);\n"
       "}\n"},
  });
  ProjectOptions options;
  options.layering_path = manifest_path;
  const LintResult result = run_project(files, options);
  EXPECT_TRUE(result.violations.empty()) << cdsf::lint::to_text(result);
  // The illegal util→sim edge, the include cycle, and the inversion all
  // landed in `suppressed` rather than vanishing.
  std::size_t layering = 0;
  std::size_t lock_order = 0;
  for (const Diagnostic& d : result.suppressed) {
    if (d.pass == cdsf::lint::kLayeringPass) ++layering;
    if (d.pass == cdsf::lint::kLockOrderPass) ++lock_order;
  }
  EXPECT_EQ(layering, 2u) << cdsf::lint::to_text(result);
  EXPECT_EQ(lock_order, 1u) << cdsf::lint::to_text(result);
}

TEST(LintEngine, PassIdTyposInSuppressionsAreViolations) {
  const auto files = sources({{"src/a/x.cpp",
                               "int a;  // cdsf-lint: allow(lock-ordr)\n"
                               "int b;  // cdsf-lint: allow(determinism-taint)\n"}});
  const LintResult result = run_project(files, {});
  ASSERT_EQ(result.violations.size(), 1u) << cdsf::lint::to_text(result);
  EXPECT_EQ(result.violations[0].rule, "unknown-suppression");
  EXPECT_EQ(result.violations[0].line, 1u);
  EXPECT_NE(result.violations[0].message.find("lock-ordr"), std::string::npos);
}

TEST(LintEngine, JsonV2CarriesPassBlocksAndPerDiagnosticPass) {
  const auto files = sources({{"src/x/locks.cpp",
                               "std::mutex mu_a;\n"
                               "std::mutex mu_b;\n"
                               "void forward() {\n"
                               "  std::scoped_lock l1(mu_a);\n"
                               "  std::scoped_lock l2(mu_b);\n"
                               "}\n"
                               "void backward() {\n"
                               "  std::scoped_lock l1(mu_b);\n"
                               "  std::scoped_lock l2(mu_a);\n"
                               "}\n"}});
  const LintResult result = run_project(files, {});
  const cdsf::obs::Json doc = cdsf::lint::to_json(result);
  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.lint_report/2");
  ASSERT_NE(doc.find("passes"), nullptr);
  bool lock_order_block = false;
  for (const auto& entry : doc.at("passes").items()) {
    if (entry.at("name").as_string() == cdsf::lint::kLockOrderPass) {
      lock_order_block = true;
      EXPECT_TRUE(entry.at("ran").as_bool());
      EXPECT_EQ(entry.at("violation_count").as_int(), 1);
    }
  }
  EXPECT_TRUE(lock_order_block);
  ASSERT_EQ(doc.at("violations").size(), 1u);
  EXPECT_EQ(doc.at("violations").items()[0].at("pass").as_string(),
            cdsf::lint::kLockOrderPass);
}

// --- binary contract --------------------------------------------------------

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_binary(const std::string& args) {
  const std::string command = std::string(CDSF_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  CommandResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof buffer, pipe)) > 0) result.output.append(buffer, n);
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string root(const std::string& rel) { return std::string(CDSF_SOURCE_ROOT) + "/" + rel; }

TEST(LintProjectBinary, ListsAllPassesAndValidatesFlags) {
  const CommandResult listing = run_binary("--list-passes");
  EXPECT_EQ(listing.exit_code, 0);
  for (const std::string& pass : cdsf::lint::all_pass_ids()) {
    EXPECT_NE(listing.output.find(pass), std::string::npos) << pass;
  }
  // Project flags are validated up front: exit 2, not a crash or a pass.
  const std::string fixture = std::string(CDSF_LINT_FIXTURES) + "/clean.cxx";
  EXPECT_EQ(run_binary("--pass include-layering " + fixture).exit_code, 2);
  EXPECT_EQ(run_binary("--pass no-such-pass " + fixture).exit_code, 2);
  EXPECT_EQ(run_binary("--graph-dot /tmp/x.dot " + fixture).exit_code, 2);
  EXPECT_EQ(run_binary("--layering no/such/manifest.json " + fixture).exit_code, 2);
}

TEST(LintProjectBinary, RealTreeIsCleanUnderAllPasses) {
  // The exact lint_tree CI invocation: every pass, every scanned root, the
  // checked-in manifests. The tree must stay at zero active violations.
  const CommandResult result = run_binary(
      "--json --layering " + root("tools/layering.json") + " --registry " +
      root("tools/obs_registry.json") + " --metrics-doc " + root("docs/observability.md") +
      " " + root("src") + " " + root("tests") + " " + root("examples") + " " + root("bench"));
  ASSERT_EQ(result.exit_code, 0) << result.output;
  const cdsf::obs::Json doc = cdsf::obs::Json::parse(result.output);
  EXPECT_TRUE(doc.at("clean").as_bool());
  ASSERT_EQ(doc.at("passes").size(), 5u);
  for (const auto& pass : doc.at("passes").items()) {
    EXPECT_TRUE(pass.at("ran").as_bool()) << pass.at("name").as_string();
    EXPECT_EQ(pass.at("violation_count").as_int(), 0) << pass.at("name").as_string();
  }
}

TEST(LintProjectBinary, WritesTheLayeringDotExport) {
  const std::string dot_path = ::testing::TempDir() + "lint_layering.dot";
  std::remove(dot_path.c_str());
  const CommandResult result = run_binary("--layering " + root("tools/layering.json") +
                                          " --graph-dot " + dot_path + " " + root("src"));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  std::ifstream in(dot_path);
  ASSERT_TRUE(in.good());
  std::string dot((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(dot.find("digraph layering"), std::string::npos);
  EXPECT_NE(dot.find("\"svc\" -> \"cdsf\""), std::string::npos) << dot;
}

}  // namespace
