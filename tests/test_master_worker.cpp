// Tests for the message-passing master-worker model and failure injection.
#include <gtest/gtest.h>

#include "sim/master_worker.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using test::full_availability;
using test::simple_app;

SimConfig deterministic_config() {
  SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = AvailabilityMode::kConstantMean;
  return config;
}

// -------------------------------------------- reduction to the ideal model --

TEST(MpiModel, ZeroCostsReduceToIdealExecutor) {
  const auto app = simple_app("a", 100, 900, {1000.0});
  const MessageModel free_messages{0.0, 0.0};
  for (dls::TechniqueId id :
       {dls::TechniqueId::kStatic, dls::TechniqueId::kFAC, dls::TechniqueId::kAF}) {
    const RunResult ideal = simulate_loop(app, 0, 4, full_availability(1), id,
                                          deterministic_config(), 3);
    const MpiRunResult mpi = simulate_loop_mpi(app, 0, 4, full_availability(1), id,
                                               deterministic_config(), free_messages, 3);
    EXPECT_NEAR(mpi.run.makespan, ideal.makespan, 1e-9) << dls::technique_name(id);
    EXPECT_EQ(mpi.run.total_chunks, ideal.total_chunks) << dls::technique_name(id);
  }
}

TEST(MpiModel, LatencyDelaysEveryChunk) {
  const auto app = simple_app("a", 0, 1000, {1000.0});
  const MessageModel slow{5.0, 0.0};
  const MpiRunResult with_latency = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                      dls::TechniqueId::kFAC,
                                                      deterministic_config(), slow, 3);
  const MpiRunResult without = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                 dls::TechniqueId::kFAC,
                                                 deterministic_config(), {0.0, 0.0}, 3);
  EXPECT_GT(with_latency.run.makespan, without.run.makespan);
  // Each chunk costs >= 2 latencies (request + assign) on its critical path.
  const double per_worker_chunks = 250.0 / 125.0;  // FAC: ~5-6 chunks per worker
  EXPECT_GT(with_latency.run.makespan - without.run.makespan, 2.0 * 5.0 * per_worker_chunks);
}

TEST(MpiModel, MasterAccountingIsConsistent) {
  const auto app = simple_app("a", 0, 500, {500.0});
  const MessageModel messages{0.5, 0.2};
  const MpiRunResult result = simulate_loop_mpi(app, 0, 4, full_availability(1),
                                                dls::TechniqueId::kGSS,
                                                deterministic_config(), messages, 7);
  // One request per chunk, plus one final "no work" request per worker.
  EXPECT_EQ(result.master.requests_handled, result.run.total_chunks + 4);
  EXPECT_NEAR(result.master.busy_time,
              0.2 * static_cast<double>(result.master.requests_handled), 1e-9);
  EXPECT_GE(result.master.queue_wait_time, 0.0);
  EXPECT_GE(result.master.max_queue_wait, 0.0);
}

TEST(MpiModel, AllIterationsExecutedExactlyOnce) {
  const auto app = simple_app("a", 10, 990, {1000.0});
  const MessageModel messages{0.3, 0.1};
  for (dls::TechniqueId id : dls::all_techniques()) {
    SimConfig config;
    config.iteration_cov = 0.2;
    const MpiRunResult result =
        simulate_loop_mpi(app, 0, 4, sysmodel::paper_case(1), id, config, messages, 11);
    std::int64_t total = 0;
    for (const WorkerStats& w : result.run.workers) total += w.iterations;
    EXPECT_EQ(total, 990) << dls::technique_name(id);
  }
}

TEST(MpiModel, SelfSchedulingSaturatesTheMaster) {
  // 16 workers, tiny iterations, nonzero service time: SS floods the master
  // (one request per iteration) while FAC's requests are sparse. The master
  // queue wait must dominate for SS and the makespan gap must be large.
  const auto app = simple_app("a", 0, 4000, {400.0});  // 0.1 per iteration
  const MessageModel messages{0.05, 0.05};
  const MpiRunResult ss = simulate_loop_mpi(app, 0, 16, full_availability(1),
                                            dls::TechniqueId::kSS, deterministic_config(),
                                            messages, 5);
  const MpiRunResult fac = simulate_loop_mpi(app, 0, 16, full_availability(1),
                                             dls::TechniqueId::kFAC, deterministic_config(),
                                             messages, 5);
  EXPECT_GT(ss.master.queue_wait_time, 50.0 * fac.master.queue_wait_time);
  EXPECT_GT(ss.run.makespan, 2.0 * fac.run.makespan);
  // SS's master is essentially saturated: busy nearly the whole run.
  EXPECT_GT(ss.master.busy_time / ss.run.makespan, 0.8);
}

TEST(MpiModel, FeedbackArrivesWithReportLatency) {
  // AWF-B adapts from completion reports; with enormous report latency the
  // technique keeps scheduling blind, so its behavior approaches FAC's.
  const auto app = simple_app("a", 0, 2000, {2000.0, 2000.0});
  SimConfig config;
  config.iteration_cov = 0.1;
  const MessageModel instant{0.0, 0.0};
  const MpiRunResult adaptive = simulate_loop_mpi(app, 1, 8, sysmodel::paper_case(4),
                                                  dls::TechniqueId::kAWF_B, config, instant, 21);
  EXPECT_GT(adaptive.run.total_chunks, 0u);  // smoke: runs to completion
}

TEST(MpiModel, Validation) {
  const auto app = simple_app("a", 0, 10, {10.0});
  EXPECT_THROW(simulate_loop_mpi(app, 0, 2, full_availability(1), dls::TechniqueId::kSS,
                                 deterministic_config(), {-1.0, 0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_loop_mpi(app, 0, 2, full_availability(1), dls::TechniqueId::kSS,
                                 deterministic_config(), {0.0, -1.0}, 1),
               std::invalid_argument);
}

// --------------------------------------------------------- failure injection --

TEST(FailureInjection, FailedWorkerStallsStatic) {
  // STATIC cannot reassign: a worker failing mid-run drags the makespan by
  // roughly share_remaining / residual.
  const auto app = simple_app("a", 0, 800, {800.0});
  SimConfig healthy = deterministic_config();
  SimConfig failing = deterministic_config();
  failing.failures.push_back({0, 100.0, 0.01});
  const double base = simulate_loop(app, 0, 4, full_availability(1),
                                    dls::TechniqueId::kStatic, healthy, 3)
                          .makespan;
  const double failed = simulate_loop(app, 0, 4, full_availability(1),
                                      dls::TechniqueId::kStatic, failing, 3)
                            .makespan;
  EXPECT_NEAR(base, 200.0, 1e-6);
  // Worker 0 had 100 iterations left at t = 100; at 1% availability they
  // take 10000 more time units.
  EXPECT_NEAR(failed, 100.0 + 100.0 / 0.01, 1.0);
}

TEST(FailureInjection, DynamicTechniquesRouteAroundTheFailure) {
  // Execution is non-preemptive: whatever chunk is IN FLIGHT on the dying
  // worker cannot be reassigned. Dynamic techniques therefore lose at most
  // that one chunk; STATIC additionally loses the dead worker's entire
  // remaining share. Fail worker 2 at t = 600, after the first (largest)
  // chunks have shrunk: 8000 iterations / 8 workers => STATIC has ~400
  // iterations stranded, the factoring family an in-flight chunk of ~150.
  const auto app = simple_app("a", 0, 8000, {8000.0});
  SimConfig failing = deterministic_config();
  failing.failures.push_back({2, 600.0, 0.02});
  const double static_time = simulate_loop(app, 0, 8, full_availability(1),
                                           dls::TechniqueId::kStatic, failing, 9)
                                 .makespan;
  EXPECT_NEAR(static_time, 600.0 + 400.0 / 0.02, 2.0);
  for (dls::TechniqueId id : {dls::TechniqueId::kSS, dls::TechniqueId::kTSS,
                              dls::TechniqueId::kFAC, dls::TechniqueId::kAF}) {
    const double dynamic_time =
        simulate_loop(app, 0, 8, full_availability(1), id, failing, 9).makespan;
    EXPECT_LT(dynamic_time, 0.6 * static_time) << dls::technique_name(id);
  }
  // SS (one-iteration chunks) is nearly unaffected.
  const double ss_time =
      simulate_loop(app, 0, 8, full_availability(1), dls::TechniqueId::kSS, failing, 9)
          .makespan;
  EXPECT_LT(ss_time, 0.1 * static_time);
}

TEST(FailureInjection, SmallerChunksLimitTheBlastRadius) {
  // The chunk in flight on the dying worker is lost at 0.1% speed; SS
  // (1-iteration chunks) loses almost nothing, FAC's big first chunk hurts.
  const auto app = simple_app("a", 0, 4000, {4000.0});
  SimConfig failing = deterministic_config();
  failing.failures.push_back({1, 50.0, 0.001});
  const double ss = simulate_loop(app, 0, 8, full_availability(1), dls::TechniqueId::kSS,
                                  failing, 13)
                        .makespan;
  const double fac = simulate_loop(app, 0, 8, full_availability(1), dls::TechniqueId::kFAC,
                                   failing, 13)
                         .makespan;
  EXPECT_LT(ss, fac);
}

TEST(FailureInjection, FailureAfterCompletionIsHarmless) {
  const auto app = simple_app("a", 0, 400, {400.0});
  SimConfig config = deterministic_config();
  config.failures.push_back({0, 1e9, 0.001});
  const double with_late_failure = simulate_loop(app, 0, 4, full_availability(1),
                                                 dls::TechniqueId::kFAC, config, 5)
                                       .makespan;
  const double without = simulate_loop(app, 0, 4, full_availability(1),
                                       dls::TechniqueId::kFAC, deterministic_config(), 5)
                             .makespan;
  EXPECT_NEAR(with_late_failure, without, 1e-9);
}

TEST(FailureInjection, Validation) {
  const auto app = simple_app("a", 0, 10, {10.0});
  SimConfig config = deterministic_config();
  config.failures.push_back({9, 1.0, 0.5});  // unknown worker
  EXPECT_THROW(simulate_loop(app, 0, 2, full_availability(1), dls::TechniqueId::kSS, config, 1),
               std::invalid_argument);
  EXPECT_THROW(sysmodel::FailingAvailability(nullptr, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(sysmodel::FailingAvailability(
                   std::make_unique<sysmodel::ConstantAvailability>(1.0), -1.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(sysmodel::FailingAvailability(
                   std::make_unique<sysmodel::ConstantAvailability>(1.0), 1.0, 0.0),
               std::invalid_argument);
}

TEST(FailureInjection, DecoratorSemantics) {
  sysmodel::FailingAvailability process(
      std::make_unique<sysmodel::ConstantAvailability>(0.8), 10.0, 0.01);
  EXPECT_DOUBLE_EQ(process.availability_at(5.0), 0.8);
  EXPECT_DOUBLE_EQ(process.availability_at(10.0), 0.01);
  EXPECT_DOUBLE_EQ(process.availability_at(1000.0), 0.01);
  EXPECT_DOUBLE_EQ(process.next_change_after(5.0), 10.0);
  EXPECT_TRUE(std::isinf(process.next_change_after(10.0)));
  // Work integral across the failure boundary: 8 units before the failure
  // (10 time units at 0.8), remainder at 0.01.
  EXPECT_NEAR(process.finish_time(0.0, 9.0), 10.0 + 1.0 / 0.01, 1e-9);
}

}  // namespace
}  // namespace cdsf::sim
