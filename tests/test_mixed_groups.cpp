// Tests for mixed-type groups (speed heterogeneity inside one group — the
// relaxation of the paper's single-type-group restriction).
#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "sim/loop_executor.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using test::simple_app;

/// App with a 1:4 speed ratio between the two types.
workload::Application two_speed_app(std::int64_t parallel = 2000) {
  return simple_app("mixed", 0, parallel,
                    {static_cast<double>(parallel), static_cast<double>(parallel) * 4.0});
}

SimConfig dedicated() {
  SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = AvailabilityMode::kConstantMean;
  return config;
}

sysmodel::AvailabilitySpec full2() {
  return sysmodel::AvailabilitySpec("full", {pmf::Pmf::delta(1.0), pmf::Pmf::delta(1.0)});
}

TEST(MixedGroups, HomogeneousGroupMatchesSingleTypeExecutor) {
  const auto app = simple_app("h", 100, 900, {1000.0, 2000.0});
  const RunResult mixed = simulate_loop_mixed(app, {0, 0, 0, 0}, full2(),
                                              dls::TechniqueId::kStatic, dedicated(), 5);
  const RunResult plain =
      simulate_loop(app, 0, 4, full2(), dls::TechniqueId::kStatic, dedicated(), 5);
  EXPECT_NEAR(mixed.makespan, plain.makespan, 1e-9);
}

TEST(MixedGroups, AllIterationsExecutedExactlyOnce) {
  const auto app = two_speed_app();
  for (dls::TechniqueId id : {dls::TechniqueId::kSS, dls::TechniqueId::kGSS,
                              dls::TechniqueId::kWF, dls::TechniqueId::kAWF_B,
                              dls::TechniqueId::kAF}) {
    SimConfig config;
    config.iteration_cov = 0.2;
    const RunResult run =
        simulate_loop_mixed(app, {0, 0, 1, 1}, sysmodel::paper_case(1), id, config, 7);
    std::int64_t total = 0;
    for (const WorkerStats& w : run.workers) total += w.iterations;
    EXPECT_EQ(total, 2000) << dls::technique_name(id);
  }
}

TEST(MixedGroups, FastWorkersAbsorbMoreIterationsUnderSelfScheduling) {
  // Two fast (type 0) + two 4x-slower (type 1) workers, dedicated: dynamic
  // scheduling should give the fast pair roughly 4x the iterations.
  const auto app = two_speed_app(4000);
  const RunResult run = simulate_loop_mixed(app, {0, 0, 1, 1}, full2(),
                                            dls::TechniqueId::kSS, dedicated(), 3);
  const double fast =
      static_cast<double>(run.workers[0].iterations + run.workers[1].iterations);
  const double slow =
      static_cast<double>(run.workers[2].iterations + run.workers[3].iterations);
  EXPECT_NEAR(fast / slow, 4.0, 0.4);
}

TEST(MixedGroups, WfWeightsEncodeTheSpeedRatio) {
  // WF's executor-provided weights fold speed in: the fast workers' chunks
  // should be ~4x the slow workers' in the first batch.
  const auto app = two_speed_app(4000);
  SimConfig config = dedicated();
  config.collect_trace = true;
  const RunResult run = simulate_loop_mixed(app, {0, 0, 1, 1}, full2(),
                                            dls::TechniqueId::kWF, dedicated(), 3);
  // Makespan near the heterogeneous ideal: total rate = 2*1 + 2*0.25 = 2.5
  // iterations per time unit => 1600; STATIC-like equal split would leave
  // the slow pair with 1000 iterations at 4 time units each = 4000.
  EXPECT_LT(run.makespan, 2100.0);
}

TEST(MixedGroups, DynamicBeatsStaticUnderSpeedHeterogeneity) {
  const auto app = two_speed_app(4000);
  const double static_time = simulate_loop_mixed(app, {0, 0, 1, 1}, full2(),
                                                 dls::TechniqueId::kStatic, dedicated(), 9)
                                 .makespan;
  for (dls::TechniqueId id : {dls::TechniqueId::kGSS, dls::TechniqueId::kWF,
                              dls::TechniqueId::kAWF_B, dls::TechniqueId::kAF}) {
    const double dynamic_time =
        simulate_loop_mixed(app, {0, 0, 1, 1}, full2(), id, dedicated(), 9).makespan;
    EXPECT_LT(dynamic_time, 0.8 * static_time) << dls::technique_name(id);
  }
}

TEST(MixedGroups, SerialPhaseRunsOnWorkerZeroType) {
  // Worker 0 slow (type 1): serial cost = serial_iterations * 4 time units.
  const auto app = simple_app("s", 100, 100, {100.0, 400.0});
  const RunResult slow_master = simulate_loop_mixed(app, {1, 0}, full2(),
                                                    dls::TechniqueId::kStatic, dedicated(), 2);
  const RunResult fast_master = simulate_loop_mixed(app, {0, 1}, full2(),
                                                    dls::TechniqueId::kStatic, dedicated(), 2);
  EXPECT_NEAR(slow_master.serial_end, 200.0, 1e-9);  // 100 iters at 2.0 each
  EXPECT_NEAR(fast_master.serial_end, 50.0, 1e-9);   // 100 iters at 0.5 each
}

TEST(MixedGroups, Validation) {
  const auto app = two_speed_app();
  EXPECT_THROW(simulate_loop_mixed(app, {}, full2(), dls::TechniqueId::kSS, dedicated(), 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_loop_mixed(app, {0, 5}, full2(), dls::TechniqueId::kSS, dedicated(), 1),
               std::invalid_argument);
  SimConfig bad = dedicated();
  bad.failures.push_back({9, 1.0, 0.5});
  EXPECT_THROW(simulate_loop_mixed(app, {0, 1}, full2(), dls::TechniqueId::kSS, bad, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sim
