#include <gtest/gtest.h>

#include "cdsf/multi_batch.hpp"
#include "sysmodel/cases.hpp"

namespace cdsf::core {
namespace {

MultiBatchConfig small_config() {
  MultiBatchConfig config;
  config.batches = 4;
  config.mean_interarrival = 3000.0;
  config.deadline_slack = 9000.0;
  config.batch_spec.applications = 3;
  config.batch_spec.processor_types = 2;
  config.batch_spec.min_total_iterations = 500;
  config.batch_spec.max_total_iterations = 2000;
  config.batch_spec.min_mean_time = 2000.0;
  config.batch_spec.max_mean_time = 8000.0;
  config.stage_two.replications = 5;
  return config;
}

class MultiBatchTest : public ::testing::Test {
 protected:
  MultiBatchTest()
      : platform_(sysmodel::paper_platform()),
        reference_(sysmodel::paper_case(1)),
        degraded_(sysmodel::paper_case(3)) {}

  sysmodel::Platform platform_;
  sysmodel::AvailabilitySpec reference_;
  sysmodel::AvailabilitySpec degraded_;
};

TEST_F(MultiBatchTest, ProcessesEveryBatchInOrder) {
  const MultiBatchResult result = run_multi_batch(platform_, reference_, reference_,
                                                  ra::GreedyRobustness(), small_config(), 1);
  ASSERT_EQ(result.outcomes.size(), 4u);
  double previous_completion = 0.0;
  double previous_arrival = 0.0;
  for (const BatchOutcome& outcome : result.outcomes) {
    EXPECT_GT(outcome.arrival_time, previous_arrival);
    EXPECT_GE(outcome.start_time, outcome.arrival_time);
    EXPECT_GE(outcome.start_time, previous_completion);
    EXPECT_GT(outcome.completion_time, outcome.start_time);
    EXPECT_GE(outcome.phi1, 0.0);
    EXPECT_LE(outcome.phi1, 1.0);
    previous_completion = outcome.completion_time;
    previous_arrival = outcome.arrival_time;
  }
  EXPECT_DOUBLE_EQ(result.total_time, result.outcomes.back().completion_time);
}

TEST_F(MultiBatchTest, DeterministicGivenSeed) {
  const MultiBatchResult a = run_multi_batch(platform_, reference_, reference_,
                                             ra::GreedyRobustness(), small_config(), 9);
  const MultiBatchResult b = run_multi_batch(platform_, reference_, reference_,
                                             ra::GreedyRobustness(), small_config(), 9);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].completion_time, b.outcomes[i].completion_time);
    EXPECT_DOUBLE_EQ(a.outcomes[i].phi1, b.outcomes[i].phi1);
  }
}

TEST_F(MultiBatchTest, HitRateAndDelayAreConsistent) {
  const MultiBatchResult result = run_multi_batch(platform_, reference_, reference_,
                                                  ra::GreedyRobustness(), small_config(), 3);
  std::size_t hits = 0;
  double delay = 0.0;
  for (const BatchOutcome& outcome : result.outcomes) {
    if (outcome.met_deadline) ++hits;
    delay += outcome.start_time - outcome.arrival_time;
  }
  EXPECT_DOUBLE_EQ(result.deadline_hit_rate,
                   static_cast<double>(hits) / static_cast<double>(result.outcomes.size()));
  EXPECT_NEAR(result.mean_queueing_delay,
              delay / static_cast<double>(result.outcomes.size()), 1e-9);
}

TEST_F(MultiBatchTest, DegradedRuntimeLowersHitRate) {
  MultiBatchConfig config = small_config();
  config.batches = 6;
  config.deadline_slack = 6500.0;
  const double good = run_multi_batch(platform_, reference_, reference_,
                                      ra::GreedyRobustness(), config, 21)
                          .deadline_hit_rate;
  const double bad = run_multi_batch(platform_, reference_, degraded_,
                                     ra::GreedyRobustness(), config, 21)
                         .deadline_hit_rate;
  EXPECT_LE(bad, good);
}

TEST_F(MultiBatchTest, SaturatedArrivalsBuildQueueingDelay) {
  MultiBatchConfig fast = small_config();
  fast.batches = 6;
  fast.mean_interarrival = 100.0;  // arrivals far faster than service
  const MultiBatchResult congested =
      run_multi_batch(platform_, reference_, reference_, ra::GreedyRobustness(), fast, 5);
  MultiBatchConfig slow = small_config();
  slow.batches = 6;
  slow.mean_interarrival = 50000.0;  // arrivals far slower than service
  const MultiBatchResult idle =
      run_multi_batch(platform_, reference_, reference_, ra::GreedyRobustness(), slow, 5);
  EXPECT_GT(congested.mean_queueing_delay, idle.mean_queueing_delay);
  EXPECT_NEAR(idle.mean_queueing_delay, 0.0, 1e-9);
}

TEST_F(MultiBatchTest, Validation) {
  MultiBatchConfig config = small_config();
  config.batches = 0;
  EXPECT_THROW(run_multi_batch(platform_, reference_, reference_, ra::GreedyRobustness(),
                               config, 1),
               std::invalid_argument);
  config = small_config();
  config.mean_interarrival = 0.0;
  EXPECT_THROW(run_multi_batch(platform_, reference_, reference_, ra::GreedyRobustness(),
                               config, 1),
               std::invalid_argument);
  config = small_config();
  config.deadline_slack = -1.0;
  EXPECT_THROW(run_multi_batch(platform_, reference_, reference_, ra::GreedyRobustness(),
                               config, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::core
