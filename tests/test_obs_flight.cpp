// Flight recorder, postmortem sink, and OpenMetrics exposition.
//
// The load-bearing guarantees:
//   * recording is structurally inert — a default-config run is
//     byte-identical with the recorder on or off;
//   * postmortem dumps are deterministic — repeated seeded runs and
//     different replication thread counts produce byte-identical
//     cdsf.flight_record/1 documents;
//   * anomalous runs (deadline miss, quarantine trip) auto-dump a
//     parseable postmortem through the armed FlightSink;
//   * to_openmetrics renders an exact, golden-stable text exposition with
//     bucket-interpolated quantile companions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/report.hpp"
#include "sim/loop_executor.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kIterations = 4000;

workload::Application steady_app() {
  return test::simple_app("steady", 0, kIterations, {4000.0});
}

/// Fresh scratch directory under the system temp root; removed and
/// recreated so stale dumps from a previous run never leak in.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("cdsf_flight_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every dump in `dir`, sorted by content: replicated runs finish in a
/// thread-dependent order, so file NUMBERS race while the set of dumped
/// documents must not.
std::vector<std::string> sorted_dump_contents(const fs::path& dir) {
  std::vector<std::string> contents;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    contents.push_back(slurp(entry.path()));
  }
  std::sort(contents.begin(), contents.end());
  return contents;
}

/// RAII arming so a failing assertion cannot leave the process-global
/// sink armed for later tests.
struct ArmedSink {
  explicit ArmedSink(const fs::path& prefix, std::size_t max_dumps = 64) {
    obs::FlightSink::global().arm(prefix.string(), max_dumps);
  }
  ~ArmedSink() { obs::FlightSink::global().disarm(); }
};

// ------------------------------------------------------------- recorder --

TEST(FlightRecorder, MergesTracksInTimeOrderAndCountsDrops) {
  obs::FlightRecorder recorder(2, 2, true);
  recorder.record(obs::FlightEventKind::kChunkDispatched, 1.0, 0, 0, 10);
  recorder.record(obs::FlightEventKind::kChunkDispatched, 0.5, 1, 10, 10);
  recorder.record(obs::FlightEventKind::kChunkAccepted, 2.0, 0, 0, 10);
  recorder.record(obs::FlightEventKind::kChunkLost, 3.0, 0, 0, 10);  // evicts t=1.0
  recorder.record(obs::FlightEventKind::kCheckpoint, 4.0, obs::kFlightMasterTrack, 1, 2);
  const obs::FlightRecord record = recorder.finish();

  EXPECT_TRUE(record.enabled);
  ASSERT_EQ(record.workers.size(), 3u);  // 2 workers + master track
  EXPECT_EQ(record.total_recorded, 5u);
  EXPECT_EQ(record.total_dropped, 1u);
  EXPECT_EQ(record.workers[0].accepted, 1u);
  EXPECT_EQ(record.workers[0].lost, 1u);
  EXPECT_EQ(record.workers[2].recorded, 1u);  // master track

  ASSERT_EQ(record.events.size(), 4u);  // worker 0 kept 2 of 3
  EXPECT_DOUBLE_EQ(record.events.front().time, 0.5);
  EXPECT_DOUBLE_EQ(record.events.back().time, 4.0);
  EXPECT_TRUE(std::is_sorted(record.events.begin(), record.events.end(),
                             [](const obs::FlightEvent& a, const obs::FlightEvent& b) {
                               return a.time < b.time;
                             }));
}

TEST(FlightRecorder, DisabledRecorderIsANoOp) {
  obs::FlightRecorder recorder(2, 4, false);
  recorder.record(obs::FlightEventKind::kChunkDispatched, 1.0, 0);
  const obs::FlightRecord record = recorder.finish();
  EXPECT_FALSE(record.enabled);
  EXPECT_TRUE(record.events.empty());
  EXPECT_EQ(record.total_recorded, 0u);
}

TEST(FlightRecorder, RecordJsonCarriesSchemaAnomalyAndMasterTrack) {
  obs::FlightRecorder recorder(1, 4, true);
  recorder.record(obs::FlightEventKind::kWorkerCrashed, 2.0, 0);
  recorder.record(obs::FlightEventKind::kWalAppend, 3.0, obs::kFlightMasterTrack, 7, 16);
  const obs::Json doc = obs::flight_record_to_json(
      recorder.finish(), obs::FlightAnomaly{"deadline_miss", "makespan 9 > deadline 5", 9.0});

  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.flight_record/1");
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "deadline_miss");
  EXPECT_DOUBLE_EQ(doc.at("anomaly").at("time").as_double(), 9.0);
  ASSERT_EQ(doc.at("workers").size(), 2u);
  EXPECT_EQ(doc.at("workers").at(0).at("state").as_string(), "crashed");
  EXPECT_EQ(doc.at("workers").at(1).at("worker").as_string(), "master");
  ASSERT_EQ(doc.at("events").size(), 2u);
  EXPECT_EQ(doc.at("events").at(0).at("kind").as_string(), "worker_crashed");
  EXPECT_EQ(doc.at("events").at(1).at("worker").as_string(), "master");
  EXPECT_EQ(doc.at("events").at(1).at("a").as_int(), 7);
}

// ------------------------------------------------------------ inertness --

TEST(FlightRecorder, RecorderIsStructurallyInert) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig with_flight;
  with_flight.collect_trace = true;
  sim::SimConfig without_flight = with_flight;
  without_flight.flight.enabled = false;

  const sim::RunResult on =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, with_flight, 5);
  const sim::RunResult off =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, without_flight, 5);
  // The run report covers makespan, per-worker stats, lifecycle events,
  // and the chunk trace — byte-identical serialization means the recorder
  // changed nothing observable.
  EXPECT_EQ(obs::make_run_report("inert", on, 0.0).dump(),
            obs::make_run_report("inert", off, 0.0).dump());
  EXPECT_TRUE(on.flight.enabled);
  EXPECT_GT(on.flight.total_recorded, 0u);
  EXPECT_FALSE(off.flight.enabled);
}

// ----------------------------------------------------------- postmortems --

TEST(FlightPostmortem, DeadlineMissDumpsParseableRecord) {
  const fs::path dir = scratch_dir("deadline");
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config;
  config.flight.deadline = 1.0;  // everything misses

  sim::RunResult run;
  {
    ArmedSink sink(dir / "pm");
    run = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 3);
  }
  ASSERT_GT(run.makespan, 1.0);
  const fs::path dump = dir / "pm_0.json";
  ASSERT_TRUE(fs::exists(dump));

  const obs::Json doc = obs::Json::parse(slurp(dump));
  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.flight_record/1");
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "deadline_miss");
  EXPECT_DOUBLE_EQ(doc.at("anomaly").at("time").as_double(), run.makespan);
  EXPECT_EQ(doc.at("workers").size(), 5u);  // 4 workers + master
  EXPECT_GT(doc.at("events").size(), 0u);
}

TEST(FlightPostmortem, QuarantineTripDumpsParseableRecord) {
  const fs::path dir = scratch_dir("quarantine");
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  sim::SimConfig::Failure failure;
  failure.worker = 2;
  failure.time = 200.0;
  failure.kind = sim::SimConfig::FailureKind::kDegrade;
  failure.residual_availability = 0.1;
  config.failures.push_back(failure);
  config.quarantine.enabled = true;
  config.quarantine.ewma_alpha = 0.9;
  config.quarantine.min_observations = 1;
  config.quarantine.slowdown_threshold = 3.0;

  sim::RunResult run;
  {
    ArmedSink sink(dir / "pm");
    run = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 11);
  }
  ASSERT_GE(run.quarantine.quarantines, 1u);
  const fs::path dump = dir / "pm_0.json";
  ASSERT_TRUE(fs::exists(dump));

  const obs::Json doc = obs::Json::parse(slurp(dump));
  EXPECT_EQ(doc.at("schema").as_string(), "cdsf.flight_record/1");
  EXPECT_EQ(doc.at("anomaly").at("kind").as_string(), "quarantine_trip");
  bool saw_quarantine_event = false;
  for (const obs::Json& event : doc.at("events").items()) {
    if (event.at("kind").as_string() == "worker_quarantined") saw_quarantine_event = true;
  }
  EXPECT_TRUE(saw_quarantine_event);
}

TEST(FlightPostmortem, DumpsAreByteIdenticalAcrossRunsAndThreadCounts) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config;  // flight.deadline filled from the deadline argument

  auto dump_replicated = [&](const std::string& name, std::size_t threads) {
    const fs::path dir = scratch_dir(name);
    ArmedSink sink(dir / "pm");
    (void)sim::simulate_replicated(app, 0, 4, full, dls::TechniqueId::kFAC, config, 21, 5,
                                   /*deadline=*/1.0, threads);
    return sorted_dump_contents(dir);
  };

  const std::vector<std::string> serial = dump_replicated("serial", 1);
  const std::vector<std::string> serial_again = dump_replicated("serial_again", 1);
  const std::vector<std::string> threaded = dump_replicated("threaded", 4);
  ASSERT_EQ(serial.size(), 5u);  // every replication misses deadline 1.0
  EXPECT_EQ(serial, serial_again);
  EXPECT_EQ(serial, threaded);
}

TEST(FlightPostmortem, UnarmedSinkWritesNothing) {
  const fs::path dir = scratch_dir("unarmed");
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config;
  config.flight.deadline = 1.0;
  (void)sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 3);
  EXPECT_TRUE(fs::is_empty(dir));
}

// ----------------------------------------------------------- openmetrics --

TEST(OpenMetrics, GoldenExpositionRendersExactly) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["sim.runs"] = 3;
  snapshot.gauges["cdsf.stage1.phi1"] = 0.745;
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {1, 0, 0};  // single sample below the first bound
  h.count = 1;
  h.sum = 0.5;
  h.min = 0.5;
  h.max = 0.5;
  snapshot.histograms["sim.makespan"] = h;

  EXPECT_EQ(obs::to_openmetrics(snapshot),
            "# TYPE sim_runs counter\n"
            "sim_runs_total 3\n"
            "# TYPE cdsf_stage1_phi1 gauge\n"
            "cdsf_stage1_phi1 0.745\n"
            "# TYPE sim_makespan histogram\n"
            "sim_makespan_bucket{le=\"1\"} 1\n"
            "sim_makespan_bucket{le=\"2\"} 1\n"
            "sim_makespan_bucket{le=\"+Inf\"} 1\n"
            "sim_makespan_sum 0.5\n"
            "sim_makespan_count 1\n"
            "# TYPE sim_makespan_p50 gauge\n"
            "sim_makespan_p50 0.5\n"
            "# TYPE sim_makespan_p95 gauge\n"
            "sim_makespan_p95 0.5\n"
            "# TYPE sim_makespan_p99 gauge\n"
            "sim_makespan_p99 0.5\n"
            "# EOF\n");
}

TEST(OpenMetrics, SnapshotJsonRoundTripsThroughFromJson) {
  obs::MetricsRegistry registry;
  registry.add("sim.runs", 2);
  registry.set_gauge("cdsf.stage1.phi1", 0.26);
  registry.set_histogram_bounds("sim.makespan", {10.0, 100.0});
  registry.observe("sim.makespan", 5.0);
  registry.observe("sim.makespan", 50.0);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const obs::MetricsSnapshot rebuilt = obs::snapshot_from_json(snapshot.to_json());
  EXPECT_EQ(obs::to_openmetrics(rebuilt), obs::to_openmetrics(snapshot));
}

TEST(OpenMetrics, SnapshotJsonCarriesInterpolatedQuantiles) {
  obs::MetricsRegistry registry;
  registry.set_histogram_bounds("h", {1.0, 2.0});
  for (int i = 0; i < 4; ++i) registry.observe("h", 1.25 + 0.1 * i);
  const obs::Json doc = registry.snapshot().to_json();
  const obs::Json& entry = doc.at("histograms").at("h");
  EXPECT_TRUE(entry.find("p50") != nullptr);
  EXPECT_TRUE(entry.find("p95") != nullptr);
  EXPECT_TRUE(entry.find("p99") != nullptr);
  EXPECT_DOUBLE_EQ(entry.at("p50").as_double(),
                   registry.snapshot().histograms.at("h").quantile(0.5));
}

// -------------------------------------------------------------- quantile --

TEST(HistogramQuantile, InterpolatesInsideTheTargetBucket) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 4, 0};
  h.count = 4;
  h.sum = 6.0;
  h.min = 1.0;
  h.max = 2.0;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);    // rank 2 of 4, halfway in [1, 2]
  EXPECT_NEAR(h.quantile(0.95), 1.95, 1e-9);
  EXPECT_NEAR(h.quantile(0.99), 1.99, 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.25);   // ceil-rank: first sample's slot
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramQuantile, OverflowBucketTopsOutAtObservedMax) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 0, 2};
  h.count = 2;
  h.sum = 8.0;
  h.min = 3.0;
  h.max = 5.0;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);  // rank 1 of 2, halfway in [3, 5]
  EXPECT_NEAR(h.quantile(0.99), 4.98, 1e-9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(HistogramQuantile, EmptyAndDegenerateHistograms) {
  obs::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  obs::HistogramSnapshot point;
  point.bounds = {10.0};
  point.counts = {3, 0};
  point.count = 3;
  point.sum = 6.0;
  point.min = 2.0;
  point.max = 2.0;  // all mass on one value: every quantile is that value
  EXPECT_DOUBLE_EQ(point.quantile(0.01), 2.0);
  EXPECT_DOUBLE_EQ(point.quantile(0.99), 2.0);
}

}  // namespace
}  // namespace cdsf
