// The obs JSON value: construction, order preservation, escaping, and the
// emit -> parse round trip the report layer's bit-exactness rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.hpp"

namespace cdsf::obs {
namespace {

TEST(ObsJson, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_EQ(Json(true).as_bool(), true);
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_EQ(Json(std::string("hi")).as_string(), "hi");
  // Integers read back as doubles too (JSON has one number type).
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);
  EXPECT_THROW(Json(1.5).as_int(), std::runtime_error);
  EXPECT_THROW(Json("x").as_bool(), std::runtime_error);
}

TEST(ObsJson, ObjectPreservesInsertionOrder) {
  Json object = Json::object();
  object.set("zulu", 1);
  object.set("alpha", 2);
  object.set("mike", 3);
  EXPECT_EQ(object.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
  object.set("zulu", 9);  // replace keeps the original position
  EXPECT_EQ(object.dump(), R"({"zulu":9,"alpha":2,"mike":3})");
}

TEST(ObsJson, StringEscaping) {
  Json object = Json::object();
  object.set("k", "a\"b\\c\n\t\x01");
  EXPECT_EQ(object.dump(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
  const Json parsed = Json::parse(object.dump());
  EXPECT_EQ(parsed.at("k").as_string(), "a\"b\\c\n\t\x01");
}

TEST(ObsJson, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(ObsJson, ParseBasics) {
  const Json doc = Json::parse(R"({"a": [1, -2.5, true, null, "s"], "b": {"c": 1e3}})");
  EXPECT_EQ(doc.at("a").size(), 5u);
  EXPECT_EQ(doc.at("a").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_double(), -2.5);
  EXPECT_TRUE(doc.at("a").at(2).as_bool());
  EXPECT_TRUE(doc.at("a").at(3).is_null());
  EXPECT_EQ(doc.at("a").at(4).as_string(), "s");
  EXPECT_DOUBLE_EQ(doc.at("b").at("c").as_double(), 1000.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ObsJson, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse("\"A\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(ObsJson, ParseErrorsCarryOffsets) {
  EXPECT_THROW(Json::parse("{"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
}

TEST(ObsJson, DoubleRoundTripIsBitExact) {
  // Shortest round-trip formatting: dump -> parse returns the same bits.
  const double values[] = {0.1,    1.0 / 3.0, 3250.0,  1e-300, 12345.6789,
                           2.5e17, -0.0,      6.02e23, 1e308};
  for (const double value : values) {
    const Json parsed = Json::parse(Json(value).dump());
    EXPECT_EQ(parsed.as_double(), value);
  }
}

TEST(ObsJson, PrettyPrint) {
  Json doc = Json::object();
  doc.set("a", Json::array());
  EXPECT_EQ(doc.dump(1), "{\n \"a\": []\n}");
}

}  // namespace
}  // namespace cdsf::obs
