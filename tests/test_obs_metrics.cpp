// MetricsRegistry semantics: counters/gauges/histograms, snapshot/reset,
// the disabled fast path, scoped timers, and snapshot consistency under
// concurrent mutation.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace cdsf::obs {
namespace {

TEST(ObsMetrics, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.add("c");
  registry.add("c", 4);
  registry.set_gauge("g", 1.5);
  registry.set_gauge("g", -2.5);  // last write wins
  registry.observe("h", 0.5);
  registry.observe("h", 1.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), -2.5);
  const HistogramSnapshot& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 2.0);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1.5);
  EXPECT_EQ(h.counts.size(), h.bounds.size() + 1);
  EXPECT_EQ(std::accumulate(h.counts.begin(), h.counts.end(), std::uint64_t{0}), h.count);
}

TEST(ObsMetrics, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(false);
  registry.add("c");
  registry.set_gauge("g", 1.0);
  registry.observe("h", 1.0);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(ObsMetrics, CustomBoundsAndBucketEdges) {
  MetricsRegistry registry;
  registry.set_histogram_bounds("h", {1.0, 10.0});
  registry.observe("h", 0.5);  // first bucket (value < bound; bounds are
  registry.observe("h", 1.0);  // exclusive upper edges, so this lands in
  registry.observe("h", 1.5);  // the second bucket alongside 1.5)
  registry.observe("h", 11.0);  // overflow bucket
  const HistogramSnapshot h = registry.snapshot().histograms.at("h");
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_THROW(registry.set_histogram_bounds("x", {}), std::invalid_argument);
  EXPECT_THROW(registry.set_histogram_bounds("x", {2.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.set_histogram_bounds("h", {5.0});
  registry.add("c", 7);
  registry.set_gauge("g", 3.0);
  registry.observe("h", 1.0);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  EXPECT_EQ(snap.histograms.at("h").bounds, std::vector<double>{5.0});  // custom bounds kept
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").min, 0.0);
}

TEST(ObsMetrics, ScopedTimerObservesOnce) {
  MetricsRegistry registry;
  { ScopedTimer timer(registry, "t.seconds"); }
  const HistogramSnapshot h = registry.snapshot().histograms.at("t.seconds");
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.sum, 0.0);

  MetricsRegistry disabled(false);
  { ScopedTimer timer(disabled, "t.seconds"); }
  EXPECT_TRUE(disabled.snapshot().histograms.empty());
}

TEST(ObsMetrics, SnapshotUnderConcurrentIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.add("shared");
        registry.add("per_thread." + std::to_string(t % 4));
        registry.observe("values", static_cast<double>(i % 100));
      }
    });
  }
  // Concurrent snapshots must stay internally consistent: a histogram's
  // total always equals the sum of its buckets, whatever the timing.
  for (int probe = 0; probe < 50; ++probe) {
    const MetricsSnapshot snap = registry.snapshot();
    const auto it = snap.histograms.find("values");
    if (it != snap.histograms.end()) {
      EXPECT_EQ(std::accumulate(it->second.counts.begin(), it->second.counts.end(),
                                std::uint64_t{0}),
                it->second.count);
    }
  }
  for (std::thread& worker : workers) worker.join();

  const MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counters.at("shared"),
            static_cast<std::int64_t>(kThreads) * kIncrements);
  std::int64_t per_thread_total = 0;
  for (int t = 0; t < 4; ++t) {
    per_thread_total += final_snap.counters.at("per_thread." + std::to_string(t));
  }
  EXPECT_EQ(per_thread_total, static_cast<std::int64_t>(kThreads) * kIncrements);
  EXPECT_EQ(final_snap.histograms.at("values").count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ObsMetrics, SnapshotToJson) {
  MetricsRegistry registry;
  registry.add("c", 2);
  registry.observe("h", 1.0);
  const Json doc = registry.snapshot().to_json();
  EXPECT_EQ(doc.at("counters").at("c").as_int(), 2);
  EXPECT_EQ(doc.at("histograms").at("h").at("count").as_int(), 1);
  // Emit -> parse round trip preserves the document.
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(ObsMetrics, GlobalStartsDisabled) {
  // The process-global registry ships disabled; enabling is the CLI/bench
  // layers' decision. (Leave it the way we found it.)
  MetricsRegistry& global = MetricsRegistry::global();
  const bool was_enabled = global.enabled();
  EXPECT_FALSE(was_enabled);
  global.set_enabled(was_enabled);
}

}  // namespace
}  // namespace cdsf::obs
