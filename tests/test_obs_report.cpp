// Report layer: emit -> Json::parse -> field comparison must be BIT-EXACT
// against the in-memory RunResult / ReplicationSummary / scenario values,
// including a fault-injected crash run. (The report's contract is that the
// machine-readable twin carries exactly the numbers the tables print.)
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cdsf/framework.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "ra/heuristics.hpp"
#include "sim/loop_executor.hpp"

namespace cdsf::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

workload::Application small_app() {
  return workload::Application(
      "small", 0, 512, {workload::TimeLaw{workload::TimeLawKind::kNormal, 512.0, 0.1}});
}

sim::SimConfig crash_config() {
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  sim::SimConfig::Failure failure;
  failure.worker = 1;
  failure.time = 40.0;
  failure.kind = sim::SimConfig::FailureKind::kCrash;
  config.failures.push_back(failure);
  return config;
}

void expect_faults_match(const Json& doc, const sim::FaultStats& faults) {
  EXPECT_EQ(doc.at("workers_crashed").as_int(),
            static_cast<std::int64_t>(faults.workers_crashed));
  EXPECT_EQ(doc.at("workers_recovered").as_int(),
            static_cast<std::int64_t>(faults.workers_recovered));
  EXPECT_EQ(doc.at("chunks_lost").as_int(), static_cast<std::int64_t>(faults.chunks_lost));
  EXPECT_EQ(doc.at("iterations_reexecuted").as_int(), faults.iterations_reexecuted);
  EXPECT_EQ(doc.at("wasted_work").as_double(), faults.wasted_work);
  EXPECT_EQ(doc.at("detection_latency_total").as_double(), faults.detection_latency_total);
  EXPECT_EQ(doc.at("max_detection_latency").as_double(), faults.max_detection_latency);
  EXPECT_EQ(doc.at("false_suspicions").as_int(),
            static_cast<std::int64_t>(faults.false_suspicions));
}

TEST(ObsReport, RunReportRoundTripsBitExactIncludingFaults) {
  const sysmodel::AvailabilitySpec dedicated("dedicated", {pmf::Pmf::delta(1.0)});
  sim::SimConfig config = crash_config();
  config.collect_trace = true;
  const sim::RunResult run =
      sim::simulate_loop(small_app(), 0, 4, dedicated, dls::TechniqueId::kFAC, config, 11);
  ASSERT_GT(run.faults.chunks_lost, 0u);  // the injected crash really bit

  const double deadline = 400.0;
  const Json parsed = Json::parse(make_run_report("crash run", run, deadline).dump());
  EXPECT_EQ(parsed.at("schema").as_string(), "cdsf.run_report/1");
  EXPECT_EQ(parsed.at("label").as_string(), "crash run");
  EXPECT_EQ(parsed.at("deadline").as_double(), deadline);
  EXPECT_EQ(parsed.at("deadline_slack").as_double(), deadline - run.makespan);

  const Json& run_doc = parsed.at("run");
  EXPECT_EQ(run_doc.at("makespan").as_double(), run.makespan);
  EXPECT_EQ(run_doc.at("serial_end").as_double(), run.serial_end);
  EXPECT_EQ(run_doc.at("finish_time_cov").as_double(), run.finish_time_cov());
  EXPECT_EQ(run_doc.at("chunks").at("count").as_int(),
            static_cast<std::int64_t>(run.total_chunks));
  std::uint64_t lost = 0;
  for (const sim::ChunkTraceEntry& chunk : run.trace) lost += chunk.lost ? 1 : 0;
  EXPECT_EQ(run_doc.at("chunks").at("lost").as_int(), static_cast<std::int64_t>(lost));
  ASSERT_EQ(run_doc.at("workers").size(), run.workers.size());
  for (std::size_t w = 0; w < run.workers.size(); ++w) {
    const Json& worker = run_doc.at("workers").at(w);
    EXPECT_EQ(worker.at("chunks").as_int(), static_cast<std::int64_t>(run.workers[w].chunks));
    EXPECT_EQ(worker.at("iterations").as_int(), run.workers[w].iterations);
    EXPECT_EQ(worker.at("busy_time").as_double(), run.workers[w].busy_time);
    EXPECT_EQ(worker.at("finish_time").as_double(), run.workers[w].finish_time);
  }
  expect_faults_match(run_doc.at("faults"), run.faults);
}

TEST(ObsReport, ReplicationSummaryRoundTripsBitExact) {
  const sysmodel::AvailabilitySpec dedicated("dedicated", {pmf::Pmf::delta(1.0)});
  const double deadline = 300.0;
  const sim::ReplicationSummary summary = sim::simulate_replicated(
      small_app(), 0, 4, dedicated, dls::TechniqueId::kGSS, crash_config(), 5, 21, deadline);
  ASSERT_GT(summary.faults_total.chunks_lost, 0u);

  const Json parsed = Json::parse(to_json(summary, deadline).dump());
  EXPECT_EQ(parsed.at("replications").as_int(),
            static_cast<std::int64_t>(summary.replications));
  EXPECT_EQ(parsed.at("mean_makespan").as_double(), summary.mean_makespan);
  EXPECT_EQ(parsed.at("median_makespan").as_double(), summary.median_makespan);
  EXPECT_EQ(parsed.at("stddev_makespan").as_double(), summary.stddev_makespan);
  EXPECT_EQ(parsed.at("min_makespan").as_double(), summary.min_makespan);
  EXPECT_EQ(parsed.at("max_makespan").as_double(), summary.max_makespan);
  EXPECT_EQ(parsed.at("deadline_hit_rate").as_double(), summary.deadline_hit_rate);
  EXPECT_EQ(parsed.at("mean_ci").at("lower").as_double(), summary.mean_ci.lower);
  EXPECT_EQ(parsed.at("mean_ci").at("upper").as_double(), summary.mean_ci.upper);
  EXPECT_EQ(parsed.at("hit_rate_ci").at("lower").as_double(), summary.hit_rate_ci.lower);
  EXPECT_EQ(parsed.at("hit_rate_ci").at("upper").as_double(), summary.hit_rate_ci.upper);
  EXPECT_EQ(parsed.at("deadline").as_double(), deadline);
  EXPECT_EQ(parsed.at("deadline_slack").as_double(), deadline - summary.median_makespan);
  expect_faults_match(parsed.at("faults_total"), summary.faults_total);
}

TEST(ObsReport, NonFiniteDeadlineOmitsSlackFields) {
  const Json doc = to_json(sim::ReplicationSummary{}, kInf);
  EXPECT_EQ(doc.find("deadline"), nullptr);
  EXPECT_EQ(doc.find("deadline_slack"), nullptr);
}

TEST(ObsReport, ScenarioReportMatchesScenarioBitExact) {
  workload::Batch batch;
  batch.add(workload::Application(
      "app0", 0, 1024, {workload::TimeLaw{workload::TimeLawKind::kNormal, 600.0, 0.1},
                        workload::TimeLaw{workload::TimeLawKind::kNormal, 900.0, 0.1}}));
  batch.add(workload::Application(
      "app1", 0, 1024, {workload::TimeLaw{workload::TimeLawKind::kNormal, 800.0, 0.1},
                        workload::TimeLaw{workload::TimeLawKind::kNormal, 1200.0, 0.1}}));
  const sysmodel::Platform platform({{"fast", 4}, {"slow", 4}});
  const sysmodel::AvailabilitySpec reference(
      "reference", {pmf::Pmf::delta(1.0), pmf::Pmf::delta(0.9)});
  const sysmodel::AvailabilitySpec degraded(
      "degraded", {pmf::Pmf::delta(0.8), pmf::Pmf::delta(0.7)});
  const double deadline = 400.0;
  const core::Framework framework(batch, platform, reference, deadline);

  core::StageTwoConfig config;
  config.replications = 7;
  config.sim.iteration_cov = 0.1;
  config.sim.availability_mode = sim::AvailabilityMode::kConstantMean;
  const std::vector<dls::TechniqueId> techniques = {dls::TechniqueId::kStatic,
                                                    dls::TechniqueId::kFAC};
  const std::vector<sysmodel::AvailabilitySpec> cases = {reference, degraded};
  const core::ScenarioResult scenario = framework.run_scenario(
      "test scenario", ra::ExhaustiveOptimal(), techniques, cases, config);

  const Json parsed = Json::parse(make_scenario_report(framework, scenario, cases).dump());
  EXPECT_EQ(parsed.at("schema").as_string(), "cdsf.scenario_report/1");
  EXPECT_EQ(parsed.at("deadline").as_double(), deadline);
  // phi_1 round trips bit-exactly.
  EXPECT_EQ(parsed.at("stage_one").at("phi1").as_double(), scenario.stage_one.phi1);
  const core::RobustnessReport robustness = framework.robustness_report(scenario, cases);
  EXPECT_EQ(parsed.at("robustness").at("rho1").as_double(), robustness.rho1);
  EXPECT_EQ(parsed.at("robustness").at("rho2").as_double(), robustness.rho2);

  ASSERT_EQ(parsed.at("cases").size(), scenario.per_case.size());
  for (std::size_t k = 0; k < scenario.per_case.size(); ++k) {
    const core::StageTwoResult& stage_two = scenario.per_case[k];
    const Json& case_doc = parsed.at("cases").at(k);
    EXPECT_EQ(case_doc.at("case").as_string(), stage_two.case_name);
    EXPECT_EQ(case_doc.at("system_makespan").as_double(), stage_two.system_makespan);
    ASSERT_EQ(case_doc.at("applications").size(), stage_two.outcomes.size());
    for (std::size_t app = 0; app < stage_two.outcomes.size(); ++app) {
      const Json& app_doc = case_doc.at("applications").at(app);
      ASSERT_EQ(app_doc.at("techniques").size(), stage_two.outcomes[app].size());
      for (std::size_t t = 0; t < stage_two.outcomes[app].size(); ++t) {
        const core::AppTechniqueOutcome& outcome = stage_two.outcomes[app][t];
        const Json& record = app_doc.at("techniques").at(t);
        EXPECT_EQ(record.at("technique").as_string(), dls::technique_name(outcome.technique));
        EXPECT_EQ(record.at("meets_deadline").as_bool(), outcome.meets_deadline);
        // Psi (median makespan) bit-matches the in-memory summary.
        EXPECT_EQ(record.at("summary").at("median_makespan").as_double(),
                  outcome.summary.median_makespan);
        EXPECT_EQ(record.at("summary").at("mean_makespan").as_double(),
                  outcome.summary.mean_makespan);
      }
    }
  }
}

TEST(ObsReport, PlanReportCarriesPhi1AndPsiBitExact) {
  workload::Batch batch;
  batch.add(small_app());
  const sysmodel::Platform platform({{"p", 4}});
  const sysmodel::AvailabilitySpec reference("reference", {pmf::Pmf::delta(0.9)});
  const core::Framework framework(batch, platform, reference, 250.0);
  const core::StageOneResult stage_one = framework.run_stage_one(ra::ExhaustiveOptimal());

  core::Framework::ExecutionPlan plan;
  plan.allocation = stage_one.allocation;
  plan.phi1 = stage_one.phi1;
  plan.techniques.assign(batch.size(), dls::TechniqueId::kFAC);
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  const sim::BatchRunResult result = framework.execute_plan(plan, reference, config, 3);

  const Json parsed = Json::parse(make_plan_report(framework, plan, result).dump());
  EXPECT_EQ(parsed.at("schema").as_string(), "cdsf.plan_report/1");
  EXPECT_EQ(parsed.at("plan").at("phi1").as_double(), plan.phi1);
  ASSERT_EQ(parsed.at("app_makespans").size(), result.app_makespans.size());
  for (std::size_t app = 0; app < result.app_makespans.size(); ++app) {
    EXPECT_EQ(parsed.at("app_makespans").at(app).as_double(), result.app_makespans[app]);
  }
  EXPECT_EQ(parsed.at("system_makespan").as_double(), result.system_makespan);
  EXPECT_EQ(parsed.at("deadline_slack").as_double(),
            framework.deadline() - result.system_makespan);
}

TEST(ObsReport, MetricsAttachOnlyWhenGlobalRegistryEnabled) {
  MetricsRegistry& global = MetricsRegistry::global();
  const bool was_enabled = global.enabled();
  sim::RunResult minimal_run;
  minimal_run.workers = {sim::WorkerStats{}};
  global.set_enabled(false);
  EXPECT_EQ(make_run_report("r", minimal_run, kInf).find("metrics"), nullptr);
  global.set_enabled(true);
  global.add("test.counter");
  const Json doc = make_run_report("r", minimal_run, kInf);
  const Json* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->at("counters").at("test.counter").as_int(), 1);
  global.reset();
  global.set_enabled(was_enabled);
}

}  // namespace
}  // namespace cdsf::obs
