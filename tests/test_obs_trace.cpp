// TraceSink: golden Chrome trace_event JSON for a hand-built run (every
// byte of the emitted events is pinned), lost-chunk clamping, framework
// markers, and determinism of the trace for a real simulated run.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/loop_executor.hpp"

namespace cdsf::obs {
namespace {

/// Two workers; worker 1 crashes at t = 5 with a 4-iteration chunk in
/// flight (would-be end time +infinity). Small enough that the expected
/// trace can be written down event by event.
sim::RunResult tiny_run() {
  sim::RunResult run;
  run.makespan = 10.0;
  run.serial_end = 2.0;
  run.total_chunks = 2;
  run.workers.resize(2);
  run.trace = {
      {0, 4, 2.0, 2.5, 6.5, false},
      {1, 4, 2.0, 2.5, std::numeric_limits<double>::infinity(), true},
  };
  run.events = {
      {sim::LifecycleEvent::Kind::kWorkerCrash, 5.0, 1, 0},
      {sim::LifecycleEvent::Kind::kChunkLost, 5.0, 1, 4},
  };
  return run;
}

TEST(ObsTrace, GoldenTraceForTinyRun) {
  TraceSink sink;
  TraceSink::RunOptions options;
  options.pid = 0;
  options.process_name = "tiny";
  options.epoch_length = 4.0;
  sink.append_run(tiny_run(), options);

  const std::vector<std::string> expected = {
      R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"tiny"}})",
      R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker 0"}})",
      R"({"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"worker 1"}})",
      R"({"name":"serial","cat":"serial","ts":0,"pid":0,"tid":0,"ph":"X","dur":2})",
      R"({"name":"dispatch","cat":"overhead","ts":2,"pid":0,"tid":0,"ph":"X","dur":0.5})",
      R"({"name":"chunk","cat":"chunk","ts":2.5,"pid":0,"tid":0,"ph":"X","dur":4,)"
      R"("args":{"iterations":4,"lost":false}})",
      R"({"name":"dispatch","cat":"overhead","ts":2,"pid":0,"tid":1,"ph":"X","dur":0.5})",
      // Lost chunk: slice clamped to the crash instant (dur 2.5, not inf).
      R"({"name":"chunk","cat":"chunk,lost","ts":2.5,"pid":0,"tid":1,"ph":"X","dur":2.5,)"
      R"("args":{"iterations":4,"lost":true}})",
      R"({"name":"worker_crash","cat":"lifecycle","ts":5,"pid":0,"tid":1,"ph":"i","s":"t",)"
      R"("args":{"worker":1}})",
      R"({"name":"chunk_reclaimed","cat":"lifecycle","ts":5,"pid":0,"tid":1,"ph":"i","s":"t",)"
      R"("args":{"worker":1,"value":4}})",
      R"({"name":"availability_epoch","cat":"epoch","ts":4,"pid":0,"tid":0,"ph":"i","s":"p"})",
      R"({"name":"availability_epoch","cat":"epoch","ts":8,"pid":0,"tid":0,"ph":"i","s":"p"})",
  };

  const Json doc = sink.to_json();
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), expected.size());
  ASSERT_EQ(sink.event_count(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(events.at(i).dump(), expected[i]) << "event " << i;
  }
}

TEST(ObsTrace, LostChunkWithoutCrashEventClampsToMakespan) {
  sim::RunResult run;
  run.makespan = 10.0;
  run.workers.resize(1);
  run.total_chunks = 1;
  run.trace = {{0, 4, 0.0, 0.0, std::numeric_limits<double>::infinity(), true}};

  TraceSink sink;
  sink.append_run(run, TraceSink::RunOptions{});
  ASSERT_EQ(sink.event_count(), 2u);  // thread_name + the chunk slice
  const Json doc = sink.to_json();
  const Json& chunk = doc.at("traceEvents").at(1);
  EXPECT_EQ(chunk.at("cat").as_string(), "chunk,lost");
  EXPECT_DOUBLE_EQ(chunk.at("dur").as_double(), 10.0);
}

TEST(ObsTrace, TimeScaleAppliesToTimestampsAndDurations) {
  TraceSink sink(1000.0);
  sink.add_complete(0, 0, 1.5, 2.0, "work");
  const Json doc = sink.to_json();
  const Json& slice = doc.at("traceEvents").at(0);
  EXPECT_DOUBLE_EQ(slice.at("ts").as_double(), 1500.0);
  EXPECT_DOUBLE_EQ(slice.at("dur").as_double(), 2000.0);
}

TEST(ObsTrace, FrameworkEventsLandOnTheFrameworkTrack) {
  TraceSink sink;
  Json args = Json::object();
  args.set("phi1", 0.875);
  sink.add_framework_event(0.0, "stage1_allocation", std::move(args));
  const Json doc = sink.to_json();
  const Json& event = doc.at("traceEvents").at(0);
  EXPECT_EQ(event.at("name").as_string(), "stage1_allocation");
  EXPECT_EQ(event.at("cat").as_string(), "framework");
  EXPECT_EQ(event.at("pid").as_int(), TraceSink::kFrameworkPid);
  EXPECT_EQ(event.at("s").as_string(), "p");
  EXPECT_DOUBLE_EQ(event.at("args").at("phi1").as_double(), 0.875);
}

TEST(ObsTrace, AppendRunRejectsRunsWithoutWorkers) {
  TraceSink sink;
  EXPECT_THROW(sink.append_run(sim::RunResult{}, TraceSink::RunOptions{}),
               std::invalid_argument);
}

TEST(ObsTrace, SimulatedRunTraceIsDeterministic) {
  const workload::Application app(
      "det", 0, 64, {workload::TimeLaw{workload::TimeLawKind::kNormal, 64.0, 0.1}});
  const sysmodel::AvailabilitySpec dedicated("dedicated", {pmf::Pmf::delta(1.0)});
  sim::SimConfig config;
  config.iteration_cov = 0.0;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.collect_trace = true;

  std::string dumps[2];
  std::size_t chunk_slices = 0;
  for (std::string& dump : dumps) {
    const sim::RunResult run =
        sim::simulate_loop(app, 0, 2, dedicated, dls::TechniqueId::kFAC, config, 7);
    TraceSink sink;
    TraceSink::RunOptions options;
    options.process_name = "det";
    sink.append_run(run, options);
    dump = sink.to_string();
    chunk_slices = 0;
    const Json doc = sink.to_json();
    const Json& events = doc.at("traceEvents");
    for (std::size_t i = 0; i < events.size(); ++i) {
      const Json* cat = events.at(i).find("cat");
      if (cat != nullptr && cat->as_string() == "chunk") ++chunk_slices;
    }
    EXPECT_EQ(chunk_slices, run.total_chunks);
  }
  EXPECT_EQ(dumps[0], dumps[1]);  // same seed -> byte-identical trace
  EXPECT_GT(chunk_slices, 0u);
}

TEST(ObsTrace, WriteProducesParseableFile) {
  TraceSink sink;
  sink.append_run(tiny_run(), TraceSink::RunOptions{});
  const std::string path = ::testing::TempDir() + "cdsf_trace_test.json";
  sink.write(path);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) text.append(buffer, got);
  std::fclose(file);
  std::remove(path.c_str());
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.at("traceEvents").size(), sink.event_count());
}

}  // namespace
}  // namespace cdsf::obs
