// End-to-end reproduction assertions: every headline number of the paper's
// Section IV, checked in one place. These are the "did we build the right
// system" tests; the per-module suites check "did we build the system
// right".
#include <gtest/gtest.h>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "sysmodel/cases.hpp"

namespace cdsf {
namespace {

using core::Framework;
using core::make_paper_example;
using core::PaperExample;

class PaperNumbers : public ::testing::Test {
 protected:
  PaperNumbers()
      : example_(make_paper_example()),
        framework_(example_.batch, example_.platform, example_.cases.front(),
                   example_.deadline) {}

  PaperExample example_;
  Framework framework_;
};

// Table I: expected availabilities and weighted system availability.
TEST_F(PaperNumbers, TableOne) {
  const struct {
    double type1;
    double type2;
    double weighted;
  } expected[] = {
      {87.50, 68.75, 75.00},
      {52.50, 54.55, 53.87},
      {60.50, 47.50, 51.83},  // paper prints 60.58 / 47.60 / 51.92 from unrounded inputs
      {41.25, 55.00, 50.42},
  };
  for (int k = 0; k < 4; ++k) {
    const auto& spec = example_.cases[static_cast<std::size_t>(k)];
    EXPECT_NEAR(spec.expected(0) * 100.0, expected[k].type1, 0.01) << "case " << k + 1;
    EXPECT_NEAR(spec.expected(1) * 100.0, expected[k].type2, 0.01) << "case " << k + 1;
    EXPECT_NEAR(spec.weighted_system_availability(example_.platform) * 100.0,
                expected[k].weighted, 0.01)
        << "case " << k + 1;
  }
}

// Table II: batch characteristics.
TEST_F(PaperNumbers, TableTwo) {
  EXPECT_EQ(example_.batch.at(0).serial_iterations(), 439);
  EXPECT_EQ(example_.batch.at(0).parallel_iterations(), 1024);
  EXPECT_NEAR(example_.batch.at(0).split().serial_fraction, 0.30, 0.005);
  EXPECT_EQ(example_.batch.at(1).serial_iterations(), 512);
  EXPECT_EQ(example_.batch.at(1).parallel_iterations(), 2048);
  EXPECT_NEAR(example_.batch.at(1).split().serial_fraction, 0.20, 0.005);
  EXPECT_NEAR(example_.batch.at(2).split().serial_fraction, 0.05, 0.005);
  EXPECT_NEAR(example_.batch.at(2).split().parallel_fraction, 0.95, 0.005);
}

// Table III: mean single-processor execution times.
TEST_F(PaperNumbers, TableThree) {
  const double expected[3][2] = {{1800, 4000}, {2800, 6000}, {12000, 8000}};
  for (std::size_t app = 0; app < 3; ++app) {
    for (std::size_t type = 0; type < 2; ++type) {
      EXPECT_DOUBLE_EQ(example_.batch.at(app).mean_time(type), expected[app][type]);
    }
  }
}

// Table IV: both initial mappings.
TEST_F(PaperNumbers, TableFour) {
  const auto naive = framework_.run_stage_one(ra::NaiveLoadBalance());
  EXPECT_EQ(naive.allocation, core::paper_naive_allocation());
  const auto robust = framework_.run_stage_one(ra::ExhaustiveOptimal());
  EXPECT_EQ(robust.allocation, core::paper_robust_allocation());
}

// Table V: expected parallel completion times + the two phi_1 values.
TEST_F(PaperNumbers, TableFive) {
  const auto naive = framework_.describe_allocation(core::paper_naive_allocation(), "naive");
  EXPECT_NEAR(naive.expected_times[0], 3800.02, 15.0);
  EXPECT_NEAR(naive.expected_times[1], 1306.39, 10.0);
  EXPECT_NEAR(naive.expected_times[2], 4599.76, 15.0);
  EXPECT_NEAR(naive.phi1, 0.26, 0.01);

  const auto robust = framework_.describe_allocation(core::paper_robust_allocation(), "robust");
  EXPECT_NEAR(robust.expected_times[0], 1365.46, 10.0);
  EXPECT_NEAR(robust.expected_times[1], 1959.59, 10.0);
  EXPECT_NEAR(robust.expected_times[2], 2699.86, 10.0);
  EXPECT_NEAR(robust.phi1, 0.745, 0.01);
}

// Figures 3 and 4: STATIC violates the deadline in every scenario-1 and
// scenario-2 case ("phi_2 > Delta for all four system availability cases").
TEST_F(PaperNumbers, FiguresThreeAndFourStaticViolations) {
  // Scenario 1 (naive IM): analytically, apps 1 and 3 exceed 3250 already
  // at case 1 (Figure 3's T1 = 3800.02 and T3 = 4599.76).
  const ra::Allocation naive = core::paper_naive_allocation();
  EXPECT_GT(framework_.analytic_static_time(0, naive.at(0), example_.cases[0]),
            example_.deadline);
  EXPECT_GT(framework_.analytic_static_time(2, naive.at(2), example_.cases[0]),
            example_.deadline);
  // Scenario 2 (robust IM + STATIC): the Table V expectations are below the
  // deadline at case 1 ...
  const ra::Allocation robust = core::paper_robust_allocation();
  for (std::size_t app = 0; app < 3; ++app) {
    EXPECT_LT(framework_.analytic_static_time(app, robust.at(app), example_.cases[0]),
              example_.deadline);
  }
  // ... yet the realized per-processor availability makes STATIC violate
  // the deadline in every case, exactly as Figure 4 reports.
  core::StageTwoConfig config;
  config.replications = 31;
  config.seed = 5;
  for (std::size_t k = 0; k < 4; ++k) {
    const core::StageTwoResult result = framework_.run_stage_two(
        robust, example_.cases[k], {dls::TechniqueId::kStatic}, config);
    EXPECT_FALSE(result.all_meet_deadline) << "case " << k + 1;
  }
}

// Scenario 4 + Table VI: deadline met through case 3; case 4 fails on app 2
// under every technique; AF survives for app 3; rho = (74.5%, ~30.8%).
TEST_F(PaperNumbers, ScenarioFourAndTableSix) {
  core::StageTwoConfig config;
  config.replications = 101;
  config.seed = 42;
  const auto techniques = dls::paper_robust_set();  // {FAC, WF, AWF-B, AF}

  const core::ScenarioResult scenario = framework_.run_scenario(
      "robust-robust", ra::ExhaustiveOptimal(), techniques, example_.cases, config);

  // Deadline met at the reference case and at case 3 (which defines rho_2);
  // violated in case 4. Case 2's app 2 is borderline in our simulator (its
  // median availability path alone costs ~3253 > Delta = 3250; the paper's
  // simulator lands it just under) — apps 1 and 3 meet, app 2 stays within
  // 5% of the deadline. Documented in EXPERIMENTS.md.
  EXPECT_TRUE(scenario.per_case[0].all_meet_deadline);
  EXPECT_GE(scenario.per_case[1].best_technique[0], 0);
  EXPECT_GE(scenario.per_case[1].best_technique[2], 0);
  double case2_app2_best = 1e18;
  for (const auto& outcome : scenario.per_case[1].outcomes[1]) {
    case2_app2_best = std::min(case2_app2_best, outcome.summary.median_makespan);
  }
  EXPECT_LT(case2_app2_best, 1.05 * example_.deadline);
  EXPECT_TRUE(scenario.per_case[2].all_meet_deadline);
  EXPECT_FALSE(scenario.per_case[3].all_meet_deadline);

  // Case 4, app 2: violated under every DLS technique (2 type-1 processors
  // at E[a] = 41.25% cannot deliver 1680 dedicated time units by 3250).
  for (const auto& outcome : scenario.per_case[3].outcomes[1]) {
    EXPECT_FALSE(outcome.meets_deadline) << dls::technique_name(outcome.technique);
  }
  // Table VI, column "Case 3" (the rho_2-defining case): AF is the most
  // robust technique for app 3 — it meets the deadline and is the fastest
  // deadline-meeting technique.
  EXPECT_TRUE(scenario.per_case[2].outcomes[2][3].meets_deadline);  // AF
  EXPECT_EQ(scenario.per_case[2].best_technique[2], 3);
  // Table VI, column "Case 1": AF wins for app 3 at the reference case too.
  EXPECT_EQ(scenario.per_case[0].best_technique[2], 3);

  const core::RobustnessReport report = framework_.robustness_report(scenario, example_.cases);
  EXPECT_NEAR(report.rho1, 0.745, 0.01);
  EXPECT_NEAR(report.rho2, 0.3089, 0.005);  // paper: 30.77% from unrounded Table I inputs
  EXPECT_EQ(report.rho2_case, 2);
}

// The framework hypothesis: scenario 4 tolerates strictly more perturbation
// than scenarios 1-3.
TEST_F(PaperNumbers, DualStageHypothesis) {
  core::StageTwoConfig config;
  config.replications = 10;
  config.seed = 21;
  const auto robust_set = dls::paper_robust_set();
  const std::vector<dls::TechniqueId> static_only = {dls::TechniqueId::kStatic};

  const auto s1 = framework_.run_scenario("s1", ra::NaiveLoadBalance(), static_only,
                                          example_.cases, config);
  const auto s2 = framework_.run_scenario("s2", ra::ExhaustiveOptimal(), static_only,
                                          example_.cases, config);
  const auto s3 = framework_.run_scenario("s3", ra::NaiveLoadBalance(), robust_set,
                                          example_.cases, config);
  const auto s4 = framework_.run_scenario("s4", ra::ExhaustiveOptimal(), robust_set,
                                          example_.cases, config);

  const double r1 = framework_.robustness_report(s1, example_.cases).rho2;
  const double r2 = framework_.robustness_report(s2, example_.cases).rho2;
  const double r3 = framework_.robustness_report(s3, example_.cases).rho2;
  const double r4 = framework_.robustness_report(s4, example_.cases).rho2;
  EXPECT_GT(r4, r1);
  EXPECT_GT(r4, r2);
  EXPECT_GT(r4, r3);
}

}  // namespace
}  // namespace cdsf
