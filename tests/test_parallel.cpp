#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "cdsf/paper_example.hpp"
#include "ra/robustness.hpp"
#include "sim/loop_executor.hpp"
#include "util/parallel.hpp"

namespace cdsf {
namespace {

// ----------------------------------------------------- parallel_for_index --

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> visits(100);
    util::parallel_for_index(100, threads, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    std::vector<double> out(500);
    util::parallel_for_index(500, threads, [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * static_cast<double>(i);
    });
    return out;
  };
  const std::vector<double> serial = compute(1);
  EXPECT_EQ(compute(3), serial);
  EXPECT_EQ(compute(16), serial);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::vector<int> out(3, 0);
  util::parallel_for_index(3, 64, [&](std::size_t i) { out[i] = static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  util::parallel_for_index(0, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionsPropagate) {
  EXPECT_THROW(util::parallel_for_index(
                   10, 4,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ParallelFor, DefaultThreadCountIsSane) {
  const std::size_t n = util::default_thread_count();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 64u);
}

// ------------------------------------- replication thread-count invariance --

TEST(ParallelReplication, SummaryBitIdenticalAcrossThreadCounts) {
  const auto example = core::make_paper_example();
  const workload::Application& app = example.batch.at(2);
  const sim::SimConfig config;
  const auto serial = sim::simulate_replicated(app, 1, 8, example.cases[2],
                                               dls::TechniqueId::kAF, config, 77, 40,
                                               example.deadline, 1);
  for (std::size_t threads : {2u, 5u, 16u}) {
    const auto parallel = sim::simulate_replicated(app, 1, 8, example.cases[2],
                                                   dls::TechniqueId::kAF, config, 77, 40,
                                                   example.deadline, threads);
    EXPECT_DOUBLE_EQ(parallel.mean_makespan, serial.mean_makespan) << threads;
    EXPECT_DOUBLE_EQ(parallel.median_makespan, serial.median_makespan) << threads;
    EXPECT_DOUBLE_EQ(parallel.deadline_hit_rate, serial.deadline_hit_rate) << threads;
  }
}

TEST(ParallelReplication, CrashFaultStatsBitIdenticalAcrossThreadCounts) {
  const auto example = core::make_paper_example();
  const workload::Application& app = example.batch.at(2);
  sim::SimConfig config;
  sim::SimConfig::Failure crash;
  crash.worker = 3;
  crash.time = 200.0;
  crash.kind = sim::SimConfig::FailureKind::kCrash;
  config.failures.push_back(crash);
  sim::SimConfig::Failure blip;
  blip.worker = 5;
  blip.time = 400.0;
  blip.kind = sim::SimConfig::FailureKind::kCrashRecover;
  blip.recovery_time = 900.0;
  config.failures.push_back(blip);

  const auto serial = sim::simulate_replicated(app, 1, 8, example.cases[2],
                                               dls::TechniqueId::kFAC, config, 91, 40,
                                               example.deadline, 1);
  EXPECT_EQ(serial.faults_total.workers_crashed, 80u);  // 2 per replication
  EXPECT_EQ(serial.faults_total.workers_recovered, 40u);
  for (std::size_t threads : {2u, 5u, 16u}) {
    const auto parallel = sim::simulate_replicated(app, 1, 8, example.cases[2],
                                                   dls::TechniqueId::kFAC, config, 91, 40,
                                                   example.deadline, threads);
    EXPECT_DOUBLE_EQ(parallel.mean_makespan, serial.mean_makespan) << threads;
    EXPECT_DOUBLE_EQ(parallel.median_makespan, serial.median_makespan) << threads;
    EXPECT_EQ(parallel.faults_total.chunks_lost, serial.faults_total.chunks_lost) << threads;
    EXPECT_EQ(parallel.faults_total.iterations_reexecuted,
              serial.faults_total.iterations_reexecuted)
        << threads;
    EXPECT_DOUBLE_EQ(parallel.faults_total.wasted_work, serial.faults_total.wasted_work)
        << threads;
  }
}

// --------------------------------------------------- system makespan PMF --

TEST(SystemMakespanPmf, CdfAtDeadlineEqualsJointProbability) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  for (const ra::Allocation& allocation :
       {core::paper_naive_allocation(), core::paper_robust_allocation()}) {
    const pmf::Pmf psi = evaluator.system_makespan_pmf(allocation);
    EXPECT_NEAR(psi.cdf(example.deadline), evaluator.joint_probability(allocation), 1e-9);
  }
}

TEST(SystemMakespanPmf, DominatesEveryApplication) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const ra::Allocation robust = core::paper_robust_allocation();
  const pmf::Pmf psi = evaluator.system_makespan_pmf(robust);
  for (std::size_t app = 0; app < 3; ++app) {
    EXPECT_GE(psi.expectation() + 1e-9,
              evaluator.completion_pmf(app, robust.at(app)).expectation());
  }
}

TEST(SystemMakespanPmf, RobustAllocationHasSmallerTailThanNaive) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const pmf::Pmf robust = evaluator.system_makespan_pmf(core::paper_robust_allocation());
  const pmf::Pmf naive = evaluator.system_makespan_pmf(core::paper_naive_allocation());
  EXPECT_LT(robust.quantile(0.9), naive.quantile(0.9));
  EXPECT_LT(robust.expectation(), naive.expectation());
}

TEST(SystemMakespanPmf, Validation) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  EXPECT_THROW(evaluator.system_makespan_pmf(ra::Allocation({{0, 1}})), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf
