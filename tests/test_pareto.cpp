#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "ra/heuristics.hpp"
#include "ra/pareto.hpp"

namespace cdsf::ra {
namespace {

class ParetoTest : public ::testing::Test {
 protected:
  ParetoTest()
      : example_(core::make_paper_example()),
        evaluator_(example_.batch, example_.cases.front(), example_.deadline),
        frontier_(pareto_frontier(evaluator_, example_.platform, CountRule::kPowerOfTwo)) {}

  core::PaperExample example_;
  RobustnessEvaluator evaluator_;
  std::vector<ParetoPoint> frontier_;
};

TEST_F(ParetoTest, FrontierIsMonotone) {
  ASSERT_FALSE(frontier_.empty());
  for (std::size_t i = 1; i < frontier_.size(); ++i) {
    EXPECT_GE(frontier_[i].expected_makespan, frontier_[i - 1].expected_makespan);
    EXPECT_GT(frontier_[i].phi1, frontier_[i - 1].phi1);
  }
}

TEST_F(ParetoTest, NoFeasibleAllocationDominatesAFrontierPoint) {
  const std::vector<Allocation> all =
      enumerate_feasible(3, example_.platform, CountRule::kPowerOfTwo);
  for (const ParetoPoint& point : frontier_) {
    for (const Allocation& other : all) {
      const pmf::Pmf psi = evaluator_.system_makespan_pmf(other);
      const double phi1 = psi.cdf(example_.deadline);
      const double makespan = psi.expectation();
      const bool dominates = phi1 > point.phi1 + 1e-9 &&
                             makespan < point.expected_makespan - 1e-9;
      EXPECT_FALSE(dominates);
    }
  }
}

TEST_F(ParetoTest, OptimalPhi1IsTheLastFrontierPoint) {
  const double optimal = evaluator_.joint_probability(ExhaustiveOptimal().allocate(
      evaluator_, example_.platform, CountRule::kPowerOfTwo));
  EXPECT_NEAR(frontier_.back().phi1, optimal, 1e-9);
}

TEST_F(ParetoTest, FrontierContainsThePaperRobustMappingRegion) {
  // The paper's robust mapping scores (74.6%, ~3013); SOME frontier point
  // must match or dominate it.
  bool matched = false;
  for (const ParetoPoint& point : frontier_) {
    if (point.phi1 >= 0.745 - 1e-6 && point.expected_makespan <= 3013.5) matched = true;
  }
  EXPECT_TRUE(matched);
}

TEST_F(ParetoTest, BudgetSelectionPicksHighestAffordablePhi1) {
  const ParetoPoint loose = best_within_makespan_budget(frontier_, 1e9);
  EXPECT_NEAR(loose.phi1, frontier_.back().phi1, 1e-12);
  const ParetoPoint tight =
      best_within_makespan_budget(frontier_, frontier_.front().expected_makespan + 1e-9);
  EXPECT_NEAR(tight.phi1, frontier_.front().phi1, 1e-12);
  EXPECT_THROW(best_within_makespan_budget(frontier_, 0.0), std::runtime_error);
  EXPECT_THROW(best_within_makespan_budget({}, 1.0), std::runtime_error);
}

TEST_F(ParetoTest, FrontierIsSmallRelativeToTheSearchSpace) {
  // 153 feasible allocations collapse to very few non-dominated ones — at
  // the paper's deadline, to exactly ONE: the robust mapping is
  // simultaneously phi_1-optimal and E[Psi]-minimal.
  EXPECT_LT(frontier_.size(), 20u);
  EXPECT_GE(frontier_.size(), 1u);
  EXPECT_EQ(frontier_.back().allocation, core::paper_robust_allocation());
}

TEST_F(ParetoTest, TighterDeadlineExposesTradeOffs) {
  // At a much tighter deadline the probability and makespan objectives
  // need not agree; the frontier logic must handle multi-point frontiers
  // (monotonicity is asserted by FrontierIsMonotone on whatever appears).
  const RobustnessEvaluator tight(example_.batch, example_.cases.front(), 2200.0);
  const std::vector<ParetoPoint> frontier =
      pareto_frontier(tight, example_.platform, CountRule::kPowerOfTwo);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].expected_makespan, frontier[i - 1].expected_makespan);
    EXPECT_GT(frontier[i].phi1, frontier[i - 1].phi1);
  }
}

}  // namespace
}  // namespace cdsf::ra
