#include <gtest/gtest.h>

#include <cmath>

#include "pmf/pmf.hpp"

namespace cdsf::pmf {
namespace {

// --------------------------------------------------------- construction --

TEST(Pmf, NormalizesMass) {
  const Pmf p = Pmf::from_pulses({{1.0, 2.0}, {2.0, 6.0}});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(p.probability(1), 0.75);
}

TEST(Pmf, SortsAndMergesDuplicates) {
  const Pmf p = Pmf::from_pulses({{3.0, 0.2}, {1.0, 0.3}, {3.0, 0.5}});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.value(0), 1.0);
  EXPECT_DOUBLE_EQ(p.value(1), 3.0);
  EXPECT_DOUBLE_EQ(p.probability(1), 0.7);
}

TEST(Pmf, DropsZeroProbabilityPulses) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.0}, {2.0, 1.0}});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.value(0), 2.0);
}

TEST(Pmf, RejectsDegenerateInput) {
  EXPECT_THROW(Pmf::from_pulses({}), std::invalid_argument);
  EXPECT_THROW(Pmf::from_pulses({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Pmf::from_pulses({{1.0, -0.5}, {2.0, 1.5}}), std::invalid_argument);
  EXPECT_THROW(Pmf::from_pulses({{std::nan(""), 1.0}}), std::invalid_argument);
}

TEST(Pmf, DeltaIsSinglePulse) {
  const Pmf p = Pmf::delta(5.0);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p.expectation(), 5.0);
  EXPECT_DOUBLE_EQ(p.variance(), 0.0);
}

TEST(Pmf, UniformOverAccumulatesDuplicates) {
  const Pmf p = Pmf::uniform_over({1.0, 2.0, 2.0, 3.0});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p.probability(1), 0.5);
  EXPECT_THROW(Pmf::uniform_over({}), std::invalid_argument);
}

// --------------------------------------------------------------- moments --

TEST(Pmf, ExpectationVarianceStddev) {
  const Pmf p = Pmf::from_pulses({{0.0, 0.5}, {10.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.expectation(), 5.0);
  EXPECT_DOUBLE_EQ(p.variance(), 25.0);
  EXPECT_DOUBLE_EQ(p.stddev(), 5.0);
}

TEST(Pmf, MinMax) {
  const Pmf p = Pmf::from_pulses({{4.0, 0.1}, {-2.0, 0.2}, {9.0, 0.7}});
  EXPECT_DOUBLE_EQ(p.min(), -2.0);
  EXPECT_DOUBLE_EQ(p.max(), 9.0);
}

TEST(Pmf, ExpectOfFunction) {
  const Pmf p = Pmf::from_pulses({{2.0, 0.5}, {4.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.expect([](double v) { return v * v; }), 10.0);
}

// --------------------------------------------------------- cdf/quantile --

TEST(Pmf, CdfStepsThroughPulses) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.2}, {2.0, 0.3}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.0), 0.2);  // inclusive
  EXPECT_DOUBLE_EQ(p.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(p.cdf(3.0), 1.0);
}

TEST(Pmf, TailComplementsCdf) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.25}, {2.0, 0.25}, {4.0, 0.5}});
  for (double x : {0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    EXPECT_NEAR(p.cdf(x) + p.tail(x), 1.0, 1e-12) << "x=" << x;
  }
}

TEST(Pmf, QuantileReturnsSmallestValueReachingMass) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.2}, {2.0, 0.3}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.21), 2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 3.0);
  EXPECT_THROW(p.quantile(1.5), std::invalid_argument);
}

// ------------------------------------------------------------ transforms --

TEST(Pmf, MapTransformsValuesKeepsMass) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.5}, {2.0, 0.5}});
  const Pmf q = p.map([](double v) { return 10.0 * v; });
  EXPECT_DOUBLE_EQ(q.expectation(), 15.0);
}

TEST(Pmf, MapMergesCollidingImages) {
  const Pmf p = Pmf::from_pulses({{-1.0, 0.5}, {1.0, 0.5}});
  const Pmf q = p.map([](double v) { return v * v; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.value(0), 1.0);
}

TEST(Pmf, ScaledAndShifted) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.5}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.scaled(2.0).expectation(), 4.0);
  EXPECT_DOUBLE_EQ(p.shifted(1.0).expectation(), 3.0);
  EXPECT_DOUBLE_EQ(p.scaled(2.0).variance(), 4.0 * p.variance());
  EXPECT_DOUBLE_EQ(p.shifted(5.0).variance(), p.variance());
}

// ------------------------------------------------------------ compaction --

TEST(Pmf, CompactedPreservesMeanExactly) {
  std::vector<Pulse> pulses;
  for (int i = 0; i < 100; ++i) pulses.push_back({static_cast<double>(i), 1.0});
  const Pmf p = Pmf::from_pulses(std::move(pulses));
  const Pmf q = p.compacted(10);
  EXPECT_EQ(q.size(), 10u);
  EXPECT_NEAR(q.expectation(), p.expectation(), 1e-9);
}

TEST(Pmf, CompactedNeverIncreasesVariance) {
  std::vector<Pulse> pulses;
  for (int i = 0; i < 64; ++i) pulses.push_back({std::pow(1.1, i), 1.0});
  const Pmf p = Pmf::from_pulses(std::move(pulses));
  const Pmf q = p.compacted(8);
  EXPECT_LE(q.variance(), p.variance() + 1e-9);
  EXPECT_GE(q.variance(), 0.9 * p.variance());  // and not collapsed either
}

TEST(Pmf, CompactedNoopWhenSmallEnough) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.5}, {2.0, 0.5}});
  EXPECT_EQ(p.compacted(10), p);
}

TEST(Pmf, CompactedToOnePulseIsMean) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.25}, {2.0, 0.5}, {5.0, 0.25}});
  const Pmf q = p.compacted(1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_NEAR(q.value(0), p.expectation(), 1e-12);
  EXPECT_THROW(p.compacted(0), std::invalid_argument);
}

TEST(Pmf, CompactedKeepsSupportBounds) {
  std::vector<Pulse> pulses;
  for (int i = 0; i <= 50; ++i) pulses.push_back({static_cast<double>(i), 1.0});
  const Pmf p = Pmf::from_pulses(std::move(pulses));
  const Pmf q = p.compacted(5);
  EXPECT_GE(q.min(), p.min());
  EXPECT_LE(q.max(), p.max());
}

// -------------------------------------------------------------- sampling --

TEST(Pmf, SampleWithMapsUniformToPulses) {
  const Pmf p = Pmf::from_pulses({{1.0, 0.25}, {2.0, 0.25}, {3.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.sample_with(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.sample_with(0.24), 1.0);
  EXPECT_DOUBLE_EQ(p.sample_with(0.25), 2.0);
  EXPECT_DOUBLE_EQ(p.sample_with(0.49), 2.0);
  EXPECT_DOUBLE_EQ(p.sample_with(0.5), 3.0);
  EXPECT_DOUBLE_EQ(p.sample_with(0.999), 3.0);
  EXPECT_THROW(p.sample_with(1.0), std::invalid_argument);
  EXPECT_THROW(p.sample_with(-0.01), std::invalid_argument);
}

TEST(Pmf, ToStringContainsPulses) {
  const Pmf p = Pmf::from_pulses({{1.5, 1.0}});
  EXPECT_NE(p.to_string().find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace cdsf::pmf
