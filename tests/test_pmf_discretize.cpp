#include <gtest/gtest.h>

#include <cmath>

#include "pmf/discretize.hpp"
#include "pmf/parallel_time.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace cdsf::pmf {
namespace {

// ---------------------------------------------------- quantile gridding --

TEST(DiscretizeQuantile, PulseCountAndEqualMass) {
  const stats::Normal dist(100.0, 10.0);
  const Pmf p = discretize_quantile(dist, 16);
  ASSERT_EQ(p.size(), 16u);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_NEAR(p.probability(i), 1.0 / 16.0, 1e-12);
}

TEST(DiscretizeQuantile, MeanConvergesToDistributionMean) {
  const stats::Normal dist(1800.0, 180.0);
  EXPECT_NEAR(discretize_quantile(dist, 64).expectation(), 1800.0, 1.0);
  EXPECT_NEAR(discretize_quantile(dist, 512).expectation(), 1800.0, 0.1);
}

TEST(DiscretizeQuantile, VarianceApproachesFromBelow) {
  const stats::Normal dist(0.0, 1.0);
  const double v64 = discretize_quantile(dist, 64).variance();
  const double v512 = discretize_quantile(dist, 512).variance();
  EXPECT_LT(v64, 1.0);
  EXPECT_LT(v512, 1.0);
  EXPECT_GT(v512, v64);  // finer grid captures more spread
  EXPECT_NEAR(v512, 1.0, 0.05);
}

TEST(DiscretizeQuantile, CdfTracksContinuousCdf) {
  const stats::Gamma dist(3.0, 2.0);
  const Pmf p = discretize_quantile(dist, 256);
  for (double x : {2.0, 4.0, 6.0, 10.0}) {
    EXPECT_NEAR(p.cdf(x), dist.cdf(x), 0.01) << "x=" << x;
  }
}

TEST(DiscretizeQuantile, SinglePulseIsMedian) {
  const stats::Normal dist(7.0, 2.0);
  const Pmf p = discretize_quantile(dist, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p.value(0), 7.0, 1e-9);  // median of a symmetric law
  EXPECT_THROW(discretize_quantile(dist, 0), std::invalid_argument);
}

TEST(DiscretizeQuantileTruncated, ClampsLeftTail) {
  // Normal with heavy sub-zero tail: mean 1, sd 2.
  const stats::Normal dist(1.0, 2.0);
  const Pmf p = discretize_quantile_truncated(dist, 64, 0.0);
  EXPECT_GE(p.min(), 0.0);
  EXPECT_GT(p.expectation(), 1.0);  // clamping raises the mean
}

// -------------------------------------------------------- MC sampling --

TEST(DiscretizeSampling, DeterministicGivenSeed) {
  const stats::Normal dist(10.0, 1.0);
  util::RngStream rng_a(5);
  util::RngStream rng_b(5);
  EXPECT_EQ(discretize_sampling(dist, 1000, 32, rng_a),
            discretize_sampling(dist, 1000, 32, rng_b));
}

TEST(DiscretizeSampling, MeanNearDistributionMean) {
  const stats::Normal dist(50.0, 5.0);
  util::RngStream rng(7);
  const Pmf p = discretize_sampling(dist, 20000, 64, rng);
  EXPECT_LE(p.size(), 64u);
  EXPECT_NEAR(p.expectation(), 50.0, 0.25);
}

TEST(DiscretizeSampling, Validation) {
  const stats::Normal dist(0.0, 1.0);
  util::RngStream rng(1);
  EXPECT_THROW(discretize_sampling(dist, 0, 8, rng), std::invalid_argument);
  EXPECT_THROW(discretize_sampling(dist, 8, 0, rng), std::invalid_argument);
}

// ------------------------------------------------------- parallel time --

TEST(ParallelTime, ScalarMatchesEquationTwo) {
  // Paper cross-check: app3 on 8 procs of type 2:
  // 0.05 * 8000 + 0.95 * 8000 / 8 = 1350.
  EXPECT_DOUBLE_EQ(parallel_time_scalar(8000.0, {0.05, 0.95}, 8), 1350.0);
  // app1 on 2 procs of type 1: 0.3 * 1800 + 0.7 * 1800 / 2 = 1170.
  EXPECT_DOUBLE_EQ(parallel_time_scalar(1800.0, {0.3, 0.7}, 2), 1170.0);
}

TEST(ParallelTime, OneProcessorIsIdentity) {
  EXPECT_DOUBLE_EQ(parallel_time_scalar(123.0, {0.2, 0.8}, 1), 123.0);
}

TEST(ParallelTime, PmfTransformsEveryPulse) {
  const Pmf single = Pmf::from_pulses({{100.0, 0.5}, {200.0, 0.5}});
  const Pmf par = parallel_time(single, {0.5, 0.5}, 2);
  ASSERT_EQ(par.size(), 2u);
  EXPECT_DOUBLE_EQ(par.value(0), 75.0);
  EXPECT_DOUBLE_EQ(par.value(1), 150.0);
  EXPECT_DOUBLE_EQ(par.probability(0), 0.5);  // probabilities unchanged
}

TEST(ParallelTime, FullyParallelScalesLinearly) {
  const Pmf single = Pmf::delta(100.0);
  EXPECT_DOUBLE_EQ(parallel_time(single, {0.0, 1.0}, 4).expectation(), 25.0);
}

TEST(ParallelTime, FullySerialIgnoresProcessors) {
  const Pmf single = Pmf::delta(100.0);
  EXPECT_DOUBLE_EQ(parallel_time(single, {1.0, 0.0}, 64).expectation(), 100.0);
}

TEST(ParallelTime, Validation) {
  const Pmf single = Pmf::delta(1.0);
  EXPECT_THROW(parallel_time(single, {0.5, 0.5}, 0), std::invalid_argument);
  EXPECT_THROW(parallel_time(single, {0.7, 0.7}, 2), std::invalid_argument);
  EXPECT_THROW(parallel_time(single, {-0.1, 1.1}, 2), std::invalid_argument);
}

TEST(AmdahlSpeedup, KnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup({0.0, 1.0}, 8), 8.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup({1.0, 0.0}, 8), 1.0);
  EXPECT_NEAR(amdahl_speedup({0.05, 0.95}, 8), 8000.0 / 1350.0, 1e-12);
}

TEST(AmdahlSpeedup, MonotoneInProcessors) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 64; n *= 2) {
    const double s = amdahl_speedup({0.1, 0.9}, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_LT(prev, 10.0);  // bounded by 1 / serial fraction
}

}  // namespace
}  // namespace cdsf::pmf
