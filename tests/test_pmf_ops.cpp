#include <gtest/gtest.h>

#include <cmath>

#include "pmf/ops.hpp"
#include "pmf/pmf.hpp"

namespace cdsf::pmf {
namespace {

const Pmf kCoin = Pmf::from_pulses({{0.0, 0.5}, {1.0, 0.5}});
const Pmf kDie = Pmf::uniform_over({1.0, 2.0, 3.0, 4.0, 5.0, 6.0});

// ------------------------------------------------------------- convolve --

TEST(ConvolveSum, TwoCoins) {
  const Pmf sum = convolve_sum(kCoin, kCoin);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum.probability(0), 0.25);  // 0
  EXPECT_DOUBLE_EQ(sum.probability(1), 0.50);  // 1
  EXPECT_DOUBLE_EQ(sum.probability(2), 0.25);  // 2
}

TEST(ConvolveSum, MeanAndVarianceAdd) {
  const Pmf sum = convolve_sum(kDie, kDie);
  EXPECT_NEAR(sum.expectation(), 2.0 * kDie.expectation(), 1e-12);
  EXPECT_NEAR(sum.variance(), 2.0 * kDie.variance(), 1e-12);
}

TEST(ConvolveSum, DeltaIsIdentity) {
  const Pmf shifted = convolve_sum(kDie, Pmf::delta(10.0));
  EXPECT_EQ(shifted.size(), kDie.size());
  EXPECT_DOUBLE_EQ(shifted.min(), 11.0);
  EXPECT_DOUBLE_EQ(shifted.max(), 16.0);
}

TEST(ConvolveSum, CompactsToBudget) {
  std::vector<Pulse> pulses;
  for (int i = 0; i < 100; ++i) pulses.push_back({static_cast<double>(i) * 1.01, 1.0});
  const Pmf big = Pmf::from_pulses(std::move(pulses));
  const Pmf sum = convolve_sum(big, big, 64);
  EXPECT_LE(sum.size(), 64u);
  EXPECT_NEAR(sum.expectation(), 2.0 * big.expectation(), 1e-6);
}

// ------------------------------------------------------------- max/min --

TEST(IndependentMax, TwoCoins) {
  const Pmf m = independent_max(kCoin, kCoin);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.probability(0), 0.25);  // both 0
  EXPECT_DOUBLE_EQ(m.probability(1), 0.75);
}

TEST(IndependentMin, TwoCoins) {
  const Pmf m = independent_min(kCoin, kCoin);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.probability(0), 0.75);
  EXPECT_DOUBLE_EQ(m.probability(1), 0.25);
}

TEST(IndependentMaxMin, CdfFactorization) {
  const Pmf max_pmf = independent_max(kDie, kCoin);
  for (double x : {0.0, 0.5, 1.0, 3.0, 6.0}) {
    EXPECT_NEAR(max_pmf.cdf(x), kDie.cdf(x) * kCoin.cdf(x), 1e-12) << "x=" << x;
  }
  const Pmf min_pmf = independent_min(kDie, kCoin);
  for (double x : {0.0, 0.5, 1.0, 3.0, 6.0}) {
    EXPECT_NEAR(min_pmf.tail(x), kDie.tail(x) * kCoin.tail(x), 1e-12) << "x=" << x;
  }
}

TEST(IndependentMaxMin, MinLeqMaxInExpectation) {
  const Pmf max_pmf = independent_max(kDie, kDie);
  const Pmf min_pmf = independent_min(kDie, kDie);
  EXPECT_LE(min_pmf.expectation(), kDie.expectation());
  EXPECT_GE(max_pmf.expectation(), kDie.expectation());
  // E[min] + E[max] == 2 E[X] for iid pairs.
  EXPECT_NEAR(min_pmf.expectation() + max_pmf.expectation(), 2.0 * kDie.expectation(), 1e-12);
}

TEST(IndependentMax, WithDeltaClampsBelow) {
  const Pmf m = independent_max(kDie, Pmf::delta(4.0));
  EXPECT_DOUBLE_EQ(m.min(), 4.0);
  EXPECT_NEAR(m.cdf(4.0), kDie.cdf(4.0), 1e-12);
}

// -------------------------------------------------------------- combine --

TEST(Combine, ProductOfIndependents) {
  const Pmf prod = combine(kCoin.shifted(1.0), kDie, [](double a, double b) { return a * b; });
  EXPECT_NEAR(prod.expectation(), kCoin.shifted(1.0).expectation() * kDie.expectation(), 1e-12);
}

// --------------------------------------------------- apply_availability --

TEST(ApplyAvailability, DividesTimeByAvailability) {
  const Pmf time = Pmf::delta(100.0);
  const Pmf avail = Pmf::from_pulses({{0.25, 0.25}, {0.5, 0.25}, {1.0, 0.5}});
  const Pmf completion = apply_availability(time, avail);
  ASSERT_EQ(completion.size(), 3u);
  EXPECT_DOUBLE_EQ(completion.value(0), 100.0);
  EXPECT_DOUBLE_EQ(completion.value(1), 200.0);
  EXPECT_DOUBLE_EQ(completion.value(2), 400.0);
  // E[T/a] = 100 * E[1/a] = 100 * (0.25/0.25 + 0.25/0.5 + 0.5/1) = 200.
  EXPECT_DOUBLE_EQ(completion.expectation(), 200.0);
}

TEST(ApplyAvailability, PaperType1Case1) {
  // 1170 time units on type-1 availability {75%: .5, 100%: .5} -> E = 1365.
  const Pmf avail = Pmf::from_pulses({{0.75, 0.5}, {1.0, 0.5}});
  const Pmf completion = apply_availability(Pmf::delta(1170.0), avail);
  EXPECT_NEAR(completion.expectation(), 1365.0, 1e-9);
}

TEST(ApplyAvailability, RejectsNonPositiveAvailability) {
  const Pmf bad = Pmf::from_pulses({{0.0, 0.5}, {1.0, 0.5}});
  EXPECT_THROW(apply_availability(Pmf::delta(1.0), bad), std::invalid_argument);
}

TEST(ApplyAvailability, FullAvailabilityIsIdentity) {
  const Pmf completion = apply_availability(kDie, Pmf::delta(1.0));
  ASSERT_EQ(completion.size(), kDie.size());
  for (std::size_t i = 0; i < kDie.size(); ++i) {
    EXPECT_DOUBLE_EQ(completion.value(i), kDie.value(i));
    EXPECT_NEAR(completion.probability(i), kDie.probability(i), 1e-15);
  }
}

// -------------------------------------------------------------- mixture --

TEST(Mixture, WeightsMassCorrectly) {
  const Pmf mix = mixture(Pmf::delta(0.0), 0.3, Pmf::delta(10.0));
  ASSERT_EQ(mix.size(), 2u);
  EXPECT_DOUBLE_EQ(mix.probability(0), 0.3);
  EXPECT_DOUBLE_EQ(mix.expectation(), 7.0);
}

TEST(Mixture, DegenerateWeights) {
  EXPECT_NEAR(mixture(kDie, 1.0, Pmf::delta(99.0)).expectation(), kDie.expectation(), 1e-12);
  EXPECT_EQ(mixture(kDie, 1.0, Pmf::delta(99.0)).size(), kDie.size());
  EXPECT_NEAR(mixture(Pmf::delta(99.0), 0.0, kDie).expectation(), kDie.expectation(), 1e-12);
  EXPECT_THROW(mixture(kDie, 1.5, kDie), std::invalid_argument);
}

TEST(Mixture, LawOfTotalExpectation) {
  const Pmf mix = mixture(kDie, 0.25, kCoin);
  EXPECT_NEAR(mix.expectation(), 0.25 * kDie.expectation() + 0.75 * kCoin.expectation(), 1e-12);
}

}  // namespace
}  // namespace cdsf::pmf
