// Parameterized property sweeps: invariants that must hold for EVERY DLS
// technique across a grid of loop sizes, worker counts, and availability
// regimes, and for the PMF engine across random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dls/registry.hpp"
#include "pmf/ops.hpp"
#include "pmf/pmf.hpp"
#include "sim/loop_executor.hpp"
#include "sim/master_worker.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace cdsf {
namespace {

// ------------------------------------------------ DLS scheduling sweeps --

using DlsSweepParam = std::tuple<dls::TechniqueId, std::int64_t /*iterations*/,
                                 std::size_t /*workers*/>;

class DlsScheduleSweep : public ::testing::TestWithParam<DlsSweepParam> {};

/// Core conservation property: under any technique, every parallel
/// iteration executes exactly once, no chunk exceeds the pool, and the
/// simulation terminates.
TEST_P(DlsScheduleSweep, ConservationAndTermination) {
  const auto [id, iterations, workers] = GetParam();
  const auto app = test::simple_app("sweep", 17, iterations, {static_cast<double>(iterations)});
  sim::SimConfig config;
  config.iteration_cov = 0.2;
  const sim::RunResult run = sim::simulate_loop(app, 0, workers, sysmodel::paper_case(1), id,
                                                config, 0xBEEF ^ iterations ^ workers);
  std::int64_t executed = 0;
  for (const sim::WorkerStats& w : run.workers) {
    executed += w.iterations;
    EXPECT_GE(w.iterations, 0);
    EXPECT_LE(w.finish_time, run.makespan + 1e-9);
  }
  EXPECT_EQ(executed, iterations);
  EXPECT_GE(run.makespan, run.serial_end);
  EXPECT_GT(run.total_chunks, 0u);
}

/// Chunk accounting: the technique's chunk stream, replayed against a
/// deterministic pool, never overshoots and always drains.
TEST_P(DlsScheduleSweep, ChunkStreamDrainsPool) {
  const auto [id, iterations, workers] = GetParam();
  dls::TechniqueParams params;
  params.workers = workers;
  params.total_iterations = iterations;
  params.mean_iteration_time = 1.0;
  params.stddev_iteration_time = 0.2;
  params.scheduling_overhead = 0.1;
  const auto technique = dls::make_technique(id, params);

  std::int64_t remaining = iterations;
  std::size_t worker = 0;
  std::vector<bool> done(workers, false);
  std::size_t done_count = 0;
  std::uint64_t guard = 0;
  const std::uint64_t guard_limit = static_cast<std::uint64_t>(iterations) * workers + 1000;
  while (remaining > 0 && done_count < workers) {
    ASSERT_LT(guard++, guard_limit) << dls::technique_name(id) << " did not terminate";
    if (!done[worker]) {
      const std::int64_t chunk =
          technique->next_chunk(dls::SchedulingContext{remaining, worker, 0.0});
      ASSERT_LE(chunk, remaining) << dls::technique_name(id);
      if (chunk <= 0) {
        done[worker] = true;
        ++done_count;
      } else {
        remaining -= chunk;
        technique->record(dls::ChunkResult{worker, chunk, static_cast<double>(chunk),
                                           static_cast<double>(chunk) + 0.1});
      }
    }
    worker = (worker + 1) % workers;
  }
  EXPECT_EQ(remaining, 0) << dls::technique_name(id);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, DlsScheduleSweep,
    ::testing::Combine(::testing::ValuesIn(dls::all_techniques()),
                       ::testing::Values<std::int64_t>(7, 128, 1024, 5000),
                       ::testing::Values<std::size_t>(1, 2, 8)),
    [](const ::testing::TestParamInfo<DlsSweepParam>& param_info) {
      std::string name = dls::technique_name(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(param_info.param)) + "_p" +
             std::to_string(std::get<2>(param_info.param));
    });

// ----------------------------------------- availability-regime ordering --

class DlsAvailabilitySweep : public ::testing::TestWithParam<dls::TechniqueId> {};

/// Decreasing weighted availability must not decrease the mean makespan
/// (modulo simulation noise; we allow 5% slack and 20 replications).
TEST_P(DlsAvailabilitySweep, MakespanGrowsAsAvailabilityDrops) {
  const dls::TechniqueId id = GetParam();
  const auto app = test::simple_app("a", 50, 2000, {4000.0});
  sim::SimConfig config;
  const double full = sim::simulate_replicated(app, 0, 4, test::full_availability(1), id,
                                               config, 5, 20, 1e12)
                          .mean_makespan;
  const double degraded = sim::simulate_replicated(app, 0, 4, sysmodel::paper_case(4), id,
                                                   config, 5, 20, 1e12)
                              .mean_makespan;
  EXPECT_GT(degraded, full * 1.05) << dls::technique_name(id);
}

/// Robustness ordering on a persistent heterogeneous group: each adaptive
/// technique must beat STATIC's mean makespan.
TEST_P(DlsAvailabilitySweep, BeatsStaticUnderPersistentHeterogeneity) {
  const dls::TechniqueId id = GetParam();
  if (id == dls::TechniqueId::kStatic) GTEST_SKIP();
  const auto app = test::simple_app("a", 0, 4000, {8000.0, 8000.0});
  sim::SimConfig config;
  config.iteration_cov = 0.2;
  const double technique_time =
      sim::simulate_replicated(app, 1, 8, sysmodel::paper_case(4), id, config, 9, 20, 1e12)
          .mean_makespan;
  const double static_time =
      sim::simulate_replicated(app, 1, 8, sysmodel::paper_case(4),
                               dls::TechniqueId::kStatic, config, 9, 20, 1e12)
          .mean_makespan;
  EXPECT_LT(technique_time, static_time) << dls::technique_name(id);
}

INSTANTIATE_TEST_SUITE_P(RobustSetPlusStatic, DlsAvailabilitySweep,
                         ::testing::Values(dls::TechniqueId::kStatic, dls::TechniqueId::kFAC,
                                           dls::TechniqueId::kWF, dls::TechniqueId::kAWF_B,
                                           dls::TechniqueId::kAWF_C, dls::TechniqueId::kAF,
                                           dls::TechniqueId::kGSS, dls::TechniqueId::kTSS),
                         [](const ::testing::TestParamInfo<dls::TechniqueId>& param_info) {
                           std::string name = dls::technique_name(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ------------------------------------------- MPI message-cost invariance --

using MpiSweepParam = std::tuple<dls::TechniqueId, double /*latency*/>;

class MpiCostSweep : public ::testing::TestWithParam<MpiSweepParam> {};

/// Conservation and monotonicity: the message-passing executor completes
/// every iteration exactly once at any latency, and more latency never
/// makes the run faster.
TEST_P(MpiCostSweep, ConservationAndLatencyMonotonicity) {
  const auto [id, latency] = GetParam();
  const auto app = test::simple_app("mpi", 0, 2000, {2000.0});
  sim::SimConfig config;
  config.iteration_cov = 0.0;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  const sim::MpiRunResult zero = sim::simulate_loop_mpi(
      app, 0, 4, test::full_availability(1), id, config, {0.0, 0.0}, 3);
  const sim::MpiRunResult priced = sim::simulate_loop_mpi(
      app, 0, 4, test::full_availability(1), id, config, {latency, 0.05}, 3);
  std::int64_t executed = 0;
  for (const sim::WorkerStats& w : priced.run.workers) executed += w.iterations;
  EXPECT_EQ(executed, 2000);
  EXPECT_GE(priced.run.makespan, zero.run.makespan - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyGrid, MpiCostSweep,
    ::testing::Combine(::testing::Values(dls::TechniqueId::kSS, dls::TechniqueId::kGSS,
                                         dls::TechniqueId::kFAC, dls::TechniqueId::kAF),
                       ::testing::Values(0.01, 0.5, 5.0)),
    [](const ::testing::TestParamInfo<MpiSweepParam>& param_info) {
      std::string name = dls::technique_name(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      const int millis = static_cast<int>(std::get<1>(param_info.param) * 100);
      return name + "_L" + std::to_string(millis);
    });

// ---------------------------------------- iteration-profile invariants ---

using ProfileSweepParam = std::tuple<dls::TechniqueId, workload::IterationProfile>;

class ProfileSweep : public ::testing::TestWithParam<ProfileSweepParam> {};

/// Under any profile and technique, total busy time equals the loop's work
/// (profiles redistribute cost, never create it) and all iterations run.
TEST_P(ProfileSweep, WorkConservation) {
  const auto [id, profile] = GetParam();
  const workload::Application app(
      "p", 0, 1500, {workload::TimeLaw{workload::TimeLawKind::kNormal, 1500.0, 0.1}}, profile);
  sim::SimConfig config;
  config.iteration_cov = 0.0;
  config.scheduling_overhead = 0.0;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  const sim::RunResult run =
      sim::simulate_loop(app, 0, 4, test::full_availability(1), id, config, 9);
  double busy = 0.0;
  std::int64_t iterations = 0;
  for (const sim::WorkerStats& w : run.workers) {
    busy += w.busy_time;
    iterations += w.iterations;
  }
  EXPECT_EQ(iterations, 1500);
  EXPECT_NEAR(busy, 1500.0, 1e-6);
  // Lower bound: nobody can beat perfect balance.
  EXPECT_GE(run.makespan, 1500.0 / 4.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileSweep,
    ::testing::Combine(::testing::Values(dls::TechniqueId::kStatic, dls::TechniqueId::kGSS,
                                         dls::TechniqueId::kFAC, dls::TechniqueId::kTFSS,
                                         dls::TechniqueId::kAF),
                       ::testing::Values(workload::IterationProfile::kFlat,
                                         workload::IterationProfile::kIncreasing,
                                         workload::IterationProfile::kDecreasing,
                                         workload::IterationProfile::kParabolic)),
    [](const ::testing::TestParamInfo<ProfileSweepParam>& param_info) {
      std::string name = dls::technique_name(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + workload::to_string(std::get<1>(param_info.param));
    });

// -------------------------------------------------- PMF random properties --

class PmfRandomProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static pmf::Pmf random_pmf(util::RngStream& rng, std::size_t max_pulses) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_pulses)));
    std::vector<pmf::Pulse> pulses;
    pulses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pulses.push_back({rng.uniform(-100.0, 100.0), rng.uniform(0.01, 1.0)});
    }
    return pmf::Pmf::from_pulses(std::move(pulses));
  }
};

TEST_P(PmfRandomProperty, MassAlwaysNormalized) {
  util::RngStream rng(GetParam());
  const pmf::Pmf p = random_pmf(rng, 50);
  double total = 0.0;
  for (const pmf::Pulse& pulse : p.pulses()) total += pulse.probability;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(PmfRandomProperty, ConvolutionMomentsAdd) {
  util::RngStream rng(GetParam() + 1000);
  const pmf::Pmf a = random_pmf(rng, 20);
  const pmf::Pmf b = random_pmf(rng, 20);
  const pmf::Pmf sum = pmf::convolve_sum(a, b, 100000);  // no compaction
  EXPECT_NEAR(sum.expectation(), a.expectation() + b.expectation(), 1e-8);
  EXPECT_NEAR(sum.variance(), a.variance() + b.variance(), 1e-6);
}

TEST_P(PmfRandomProperty, MaxDominatesMinEverywhere) {
  util::RngStream rng(GetParam() + 2000);
  const pmf::Pmf a = random_pmf(rng, 20);
  const pmf::Pmf b = random_pmf(rng, 20);
  const pmf::Pmf max_pmf = pmf::independent_max(a, b);
  const pmf::Pmf min_pmf = pmf::independent_min(a, b);
  for (double x = -110.0; x <= 110.0; x += 10.0) {
    EXPECT_LE(max_pmf.cdf(x), min_pmf.cdf(x) + 1e-12) << "x=" << x;  // stochastic dominance
  }
}

TEST_P(PmfRandomProperty, CompactionPreservesMeanAndBounds) {
  util::RngStream rng(GetParam() + 3000);
  const pmf::Pmf p = random_pmf(rng, 64);
  const pmf::Pmf q = p.compacted(8);
  EXPECT_LE(q.size(), 8u);
  EXPECT_NEAR(q.expectation(), p.expectation(), 1e-8);
  EXPECT_GE(q.min(), p.min() - 1e-12);
  EXPECT_LE(q.max(), p.max() + 1e-12);
  EXPECT_LE(q.variance(), p.variance() + 1e-9);
}

TEST_P(PmfRandomProperty, RiskMetricInvariants) {
  util::RngStream rng(GetParam() + 6000);
  const pmf::Pmf p = random_pmf(rng, 40);
  // CVaR dominates the mean and approaches the maximum as alpha -> 1.
  EXPECT_GE(p.conditional_value_at_risk(0.5), p.expectation() - 1e-9);
  EXPECT_NEAR(p.conditional_value_at_risk(0.999999), p.max(), 1e-6 * std::fabs(p.max()) + 1e-9);
  // Expected tardiness is nonincreasing in the deadline and bounded by the
  // worst-case overshoot.
  double prev = 1e300;
  for (double deadline = p.min() - 10.0; deadline <= p.max() + 10.0; deadline += 10.0) {
    const double tardiness = p.expected_tardiness(deadline);
    EXPECT_LE(tardiness, prev + 1e-12);
    EXPECT_GE(tardiness, 0.0);
    EXPECT_LE(tardiness, std::max(p.max() - deadline, 0.0) + 1e-12);
    prev = tardiness;
  }
  // E[max(X - d, 0)] at d = min equals E[X] - min.
  EXPECT_NEAR(p.expected_tardiness(p.min()), p.expectation() - p.min(), 1e-9);
}

TEST_P(PmfRandomProperty, CdfQuantileGaloisConnection) {
  util::RngStream rng(GetParam() + 4000);
  const pmf::Pmf p = random_pmf(rng, 30);
  for (double prob : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = p.quantile(prob);
    EXPECT_GE(p.cdf(x), prob - 1e-12);
  }
}

TEST_P(PmfRandomProperty, AvailabilityCombineMatchesExpectationIdentity) {
  util::RngStream rng(GetParam() + 5000);
  // Positive-time PMF and availability PMF.
  std::vector<pmf::Pulse> times;
  for (int i = 0; i < 10; ++i) times.push_back({rng.uniform(1.0, 100.0), rng.uniform(0.1, 1.0)});
  const pmf::Pmf time = pmf::Pmf::from_pulses(std::move(times));
  std::vector<pmf::Pulse> avail;
  for (int i = 0; i < 4; ++i) avail.push_back({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)});
  const pmf::Pmf availability = pmf::Pmf::from_pulses(std::move(avail));
  const pmf::Pmf completion = pmf::apply_availability(time, availability, 100000);
  // E[T / A] = E[T] * E[1 / A] by independence.
  const double expected =
      time.expectation() * availability.expect([](double a) { return 1.0 / a; });
  EXPECT_NEAR(completion.expectation(), expected, 1e-6 * expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PmfRandomProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace cdsf
