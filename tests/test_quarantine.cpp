// Gray-failure containment: fail-slow EWMA quarantine and canary
// reinstatement, audit-based result validation against silently-corrupt
// workers, and payload-integrity hardening on the unreliable channel.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/loop_executor.hpp"
#include "sim/master_worker.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

constexpr std::int64_t kIterations = 4000;

workload::Application steady_app() {
  return test::simple_app("steady", 0, kIterations, {4000.0});
}

sim::SimConfig gray_config() {
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.collect_trace = true;
  return config;
}

void add_failure(sim::SimConfig& config, std::size_t worker, double time,
                 sim::SimConfig::FailureKind kind, double residual = 0.1) {
  sim::SimConfig::Failure failure;
  failure.worker = worker;
  failure.time = time;
  failure.kind = kind;
  failure.residual_availability = residual;
  config.failures.push_back(failure);
}

std::int64_t completed_iterations(const sim::RunResult& run) {
  std::int64_t total = 0;
  for (const sim::WorkerStats& worker : run.workers) total += worker.iterations;
  return total;
}

/// The bookkeeping identities every completed run must satisfy (the chaos
/// harness checks the same set over randomized schedules).
void expect_identities(const sim::QuarantineStats& q) {
  EXPECT_EQ(q.quarantines, q.fail_slow_trips + q.audit_trips);
  EXPECT_LE(q.reinstatements, q.quarantines);
  EXPECT_LE(q.probes_healthy, q.probes_launched);
  EXPECT_EQ(q.audits_launched, q.audits_matched + q.audit_mismatches + q.audits_abandoned);
}

/// Per-worker quarantine windows reconstructed from lifecycle events
/// (an unclosed window extends to infinity).
std::vector<std::vector<std::pair<double, double>>> quarantine_windows(
    const sim::RunResult& run) {
  std::vector<std::vector<std::pair<double, double>>> windows(run.workers.size());
  std::vector<double> open(run.workers.size(), -1.0);
  for (const sim::LifecycleEvent& event : run.events) {
    if (event.worker >= run.workers.size()) continue;
    if (event.kind == sim::LifecycleEvent::Kind::kWorkerQuarantined) {
      open[event.worker] = event.time;
    } else if (event.kind == sim::LifecycleEvent::Kind::kWorkerRestored &&
               open[event.worker] >= 0.0) {
      windows[event.worker].emplace_back(open[event.worker], event.time);
      open[event.worker] = -1.0;
    }
  }
  for (std::size_t w = 0; w < open.size(); ++w) {
    if (open[w] >= 0.0) {
      windows[w].emplace_back(open[w], std::numeric_limits<double>::infinity());
    }
  }
  return windows;
}

// --------------------------------------------------- fail-slow quarantine --

TEST(Quarantine, FailSlowWorkerIsQuarantinedAndDrained) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  add_failure(config, 2, 200.0, sim::SimConfig::FailureKind::kDegrade, 0.1);
  config.quarantine.enabled = true;
  config.quarantine.ewma_alpha = 0.9;
  config.quarantine.min_observations = 1;
  config.quarantine.slowdown_threshold = 3.0;

  const sim::RunResult run =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 11);
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.quarantine.fail_slow_trips, 1u);
  EXPECT_GT(run.quarantine.quarantined_time, 0.0);
  expect_identities(run.quarantine);

  // The quarantine event lands on the degraded worker, value 0 = fail-slow.
  bool quarantined_degraded = false;
  for (const sim::LifecycleEvent& event : run.events) {
    if (event.kind == sim::LifecycleEvent::Kind::kWorkerQuarantined && event.worker == 2) {
      quarantined_degraded = true;
      EXPECT_EQ(event.value, 0);
    }
  }
  EXPECT_TRUE(quarantined_degraded);

  // Drained: no non-probe chunk is dispatched strictly inside a window.
  const auto windows = quarantine_windows(run);
  for (const sim::ChunkTraceEntry& chunk : run.trace) {
    if (chunk.probe) continue;
    for (const auto& [from, to] : windows.at(chunk.worker)) {
      EXPECT_FALSE(chunk.dispatch_time > from && chunk.dispatch_time < to)
          << "worker " << chunk.worker << " assigned at " << chunk.dispatch_time
          << " inside quarantine [" << from << ", " << to << ")";
    }
  }
}

TEST(Quarantine, MpiExecutorQuarantinesFailSlowWorkerToo) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  add_failure(config, 2, 200.0, sim::SimConfig::FailureKind::kDegrade, 0.1);
  config.quarantine.enabled = true;
  config.quarantine.ewma_alpha = 0.9;
  config.quarantine.min_observations = 1;
  config.quarantine.slowdown_threshold = 3.0;

  const sim::RunResult run = sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kFAC,
                                                    config, sim::MessageModel{}, 11)
                                 .run;
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.quarantine.fail_slow_trips, 1u);
  expect_identities(run.quarantine);
}

TEST(Quarantine, CanaryProbesReinstateARecoveredWorker) {
  // A threshold barely above the healthy slowdown makes ordinary noise trip
  // the tracker; the canaries then read healthy and reinstate. Fixed seeds
  // keep the sweep deterministic; at least one run must round-trip
  // quarantine -> probe -> reinstatement.
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  std::uint64_t reinstated_runs = 0;
  std::uint64_t probed_runs = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::SimConfig config = gray_config();
    config.quarantine.enabled = true;
    config.quarantine.ewma_alpha = 0.9;
    config.quarantine.min_observations = 1;
    config.quarantine.slowdown_threshold = 1.02;
    config.quarantine.probe_interval = 20.0;
    config.quarantine.probe_successes = 1;
    const sim::RunResult run =
        sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kSS, config, seed);
    EXPECT_EQ(completed_iterations(run), kIterations);
    expect_identities(run.quarantine);
    if (run.quarantine.probes_launched > 0) ++probed_runs;
    if (run.quarantine.reinstatements > 0) ++reinstated_runs;
  }
  EXPECT_GE(probed_runs, 1u);
  EXPECT_GE(reinstated_runs, 1u);
}

// ------------------------------------------------ audit-based validation --

TEST(Quarantine, AuditCatchesSilentlyCorruptWorker) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  add_failure(config, 1, 100.0, sim::SimConfig::FailureKind::kSilentCorrupt);
  config.quarantine.audit_rate = 1.0;
  config.quarantine.audit_mismatch_limit = 1;

  const sim::RunResult run =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 5);
  // Silently wrong results are well-formed, so the loop still completes —
  // the audit layer's job is detection and containment, not re-execution.
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.quarantine.corrupt_chunks_recorded, 1u);
  EXPECT_GE(run.quarantine.audit_mismatches, 1u);
  EXPECT_GE(run.quarantine.audit_trips, 1u);
  EXPECT_EQ(run.quarantine.fail_slow_trips, 0u);  // EWMA tracker is off
  expect_identities(run.quarantine);

  // The audit-triggered quarantine event names the corrupt origin, value 1.
  bool audit_quarantine = false;
  for (const sim::LifecycleEvent& event : run.events) {
    if (event.kind == sim::LifecycleEvent::Kind::kWorkerQuarantined && event.worker == 1) {
      audit_quarantine = true;
      EXPECT_EQ(event.value, 1);
    }
  }
  EXPECT_TRUE(audit_quarantine);
}

TEST(Quarantine, AuditsOnHealthyWorkersAllMatch) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.quarantine.audit_rate = 0.5;

  const sim::RunResult run =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 9);
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.quarantine.audits_launched, 1u);
  EXPECT_EQ(run.quarantine.audit_mismatches, 0u);
  EXPECT_EQ(run.quarantine.quarantines, 0u);
  expect_identities(run.quarantine);
  // Audit replicas are a side channel: they never add to delivered work.
  std::uint64_t audit_entries = 0;
  for (const sim::ChunkTraceEntry& chunk : run.trace) {
    if (chunk.audit) ++audit_entries;
  }
  EXPECT_EQ(audit_entries, run.quarantine.audits_launched);
}

// ----------------------------------------------------- structural disarm --

TEST(Quarantine, DisarmedConfigKeepsEveryGrayCounterZero) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  add_failure(config, 2, 200.0, sim::SimConfig::FailureKind::kDegrade, 0.1);

  for (bool mpi : {false, true}) {
    const sim::RunResult run =
        mpi ? sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kFAC, config,
                                     sim::MessageModel{}, 11)
                  .run
            : sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 11);
    EXPECT_FALSE(run.quarantine.active()) << (mpi ? "mpi" : "ideal");
    EXPECT_EQ(run.quarantine.quarantined_time, 0.0);
    for (const sim::LifecycleEvent& event : run.events) {
      EXPECT_NE(event.kind, sim::LifecycleEvent::Kind::kWorkerQuarantined);
      EXPECT_NE(event.kind, sim::LifecycleEvent::Kind::kQuarantineProbe);
      EXPECT_NE(event.kind, sim::LifecycleEvent::Kind::kAuditLaunched);
    }
    for (const sim::ChunkTraceEntry& chunk : run.trace) {
      EXPECT_FALSE(chunk.audit);
      EXPECT_FALSE(chunk.probe);
    }
  }
}

TEST(Quarantine, ReplicatedSummaryIsThreadCountInvariant) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.collect_trace = false;
  add_failure(config, 2, 200.0, sim::SimConfig::FailureKind::kDegrade, 0.1);
  add_failure(config, 1, 100.0, sim::SimConfig::FailureKind::kSilentCorrupt);
  config.quarantine.enabled = true;
  config.quarantine.ewma_alpha = 0.9;
  config.quarantine.min_observations = 1;
  config.quarantine.slowdown_threshold = 3.0;
  config.quarantine.audit_rate = 0.3;

  const sim::ReplicationSummary one =
      sim::simulate_replicated(app, 0, 4, full, dls::TechniqueId::kFAC, config, 17, 6, 1e18, 1);
  const sim::ReplicationSummary four =
      sim::simulate_replicated(app, 0, 4, full, dls::TechniqueId::kFAC, config, 17, 6, 1e18, 4);
  EXPECT_EQ(one.mean_makespan, four.mean_makespan);
  EXPECT_EQ(one.quarantine_total.quarantines, four.quarantine_total.quarantines);
  EXPECT_EQ(one.quarantine_total.audits_launched, four.quarantine_total.audits_launched);
  EXPECT_EQ(one.quarantine_total.audit_mismatches, four.quarantine_total.audit_mismatches);
  EXPECT_EQ(one.quarantine_total.quarantined_time, four.quarantine_total.quarantined_time);
  EXPECT_GE(one.quarantine_total.audits_launched, 1u);
}

// ------------------------------------------------------ payload integrity --

TEST(Integrity, CorruptedMessagesAreDiscardedAndRecovered) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.channel.corrupt_to_worker = 0.02;
  config.channel.corrupt_to_master = 0.02;

  const sim::RunResult run = sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kFAC,
                                                    config, sim::MessageModel{}, 3)
                                 .run;
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.channel.corrupted, 1u);
  // Checksum detection is assumed perfect: every corrupted copy is
  // discarded, none is ever processed.
  EXPECT_EQ(run.channel.corrupted, run.channel.corrupt_discarded);
  std::uint64_t corrupt_events = 0;
  for (const sim::LifecycleEvent& event : run.events) {
    if (event.kind == sim::LifecycleEvent::Kind::kMessageCorrupted) ++corrupt_events;
  }
  EXPECT_EQ(corrupt_events, run.channel.corrupted);
}

TEST(Integrity, ForceCorruptHooksAreDeterministic) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.channel.force_corrupt_to_master = 3;

  const sim::RunResult run = sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kFAC,
                                                    config, sim::MessageModel{}, 3)
                                 .run;
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_EQ(run.channel.corrupted, 3u);
  EXPECT_EQ(run.channel.corrupt_discarded, 3u);
}

TEST(Integrity, CorruptionWithoutRetransmissionStrandsTheLoop) {
  // The naive-arm failure mode from bench_failure_ablation --corrupt: a
  // discarded copy is never resent, so workers are attrited until the run
  // cannot finish.
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.collect_trace = false;
  config.channel.corrupt_to_worker = 0.05;
  config.channel.corrupt_to_master = 0.05;
  config.channel.max_retransmits = 0;
  EXPECT_THROW(sim::simulate_loop_mpi(app, 0, 4, full, dls::TechniqueId::kSS, config,
                                      sim::MessageModel{}, 3),
               std::runtime_error);
}

// ------------------------------------------------ EWMA blind-spot anchor --

TEST(Quarantine, SingleCrawlingChunkIsBelowEwmaRadarButSpeculationCoversIt) {
  // Regression anchor for a documented blind spot (docs/fault_tolerance.md):
  // the fail-slow EWMA only updates on ACCEPTED chunks, so a worker that
  // starts crawling on its very first chunk never delivers the
  // min_observations the detector needs — quarantine structurally cannot
  // trip on a single crawling chunk. The covering layer is speculation: the
  // straggler threshold fires on the IN-FLIGHT chunk, a backup rescues it,
  // and the deadline is met anyway. If a refactor ever makes quarantine
  // trip here (or speculation stop covering), this test must be revisited
  // along with the doc.
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);

  sim::SimConfig healthy = gray_config();
  const double healthy_makespan =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, healthy, 11).makespan;
  const double deadline = 2.0 * healthy_makespan;

  sim::SimConfig blind = gray_config();
  add_failure(blind, 2, 1.0, sim::SimConfig::FailureKind::kDegrade, 0.02);
  blind.quarantine.enabled = true;  // defaults: min_observations = 3
  const sim::RunResult crawling =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, blind, 11);
  EXPECT_EQ(completed_iterations(crawling), kIterations);
  // The blind spot: one crawling chunk, zero accepted observations from
  // that worker before it, no quarantine — and the deadline blown.
  EXPECT_EQ(crawling.quarantine.fail_slow_trips, 0u);
  EXPECT_GT(crawling.makespan, deadline);

  sim::SimConfig covered = blind;
  covered.speculation.enabled = true;
  covered.speculation.quantile = 2.0;
  const sim::RunResult rescued =
      sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, covered, 11);
  EXPECT_EQ(completed_iterations(rescued), kIterations);
  EXPECT_EQ(rescued.quarantine.fail_slow_trips, 0u);  // still below the radar
  EXPECT_GE(rescued.speculation.backups_won, 1u);     // but the backup won
  EXPECT_LE(rescued.makespan, deadline);              // and the deadline held
}

TEST(Integrity, MpiReplicatedSummaryIsThreadCountInvariant) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config = gray_config();
  config.collect_trace = false;
  config.channel.corrupt_to_worker = 0.01;
  config.channel.corrupt_to_master = 0.01;
  config.quarantine.enabled = true;
  config.quarantine.audit_rate = 0.2;

  const sim::ReplicationSummary one = sim::simulate_replicated_mpi(
      app, 0, 4, full, dls::TechniqueId::kFAC, config, sim::MessageModel{}, 23, 4, 1e18, 1);
  const sim::ReplicationSummary four = sim::simulate_replicated_mpi(
      app, 0, 4, full, dls::TechniqueId::kFAC, config, sim::MessageModel{}, 23, 4, 1e18, 4);
  EXPECT_EQ(one.mean_makespan, four.mean_makespan);
  EXPECT_EQ(one.channel_total.corrupted, four.channel_total.corrupted);
  EXPECT_EQ(one.channel_total.corrupt_discarded, four.channel_total.corrupt_discarded);
  EXPECT_EQ(one.quarantine_total.audits_launched, four.quarantine_total.audits_launched);
  EXPECT_GE(one.channel_total.corrupted, 1u);
}

}  // namespace
}  // namespace cdsf
