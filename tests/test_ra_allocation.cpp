#include <gtest/gtest.h>

#include <set>

#include "ra/allocation.hpp"
#include "test_support.hpp"

namespace cdsf::ra {
namespace {

using test::small_platform;

// ------------------------------------------------------------ Allocation --

TEST(Allocation, FitsRespectsCapacity) {
  const auto platform = small_platform();  // 4 x type1, 8 x type2
  EXPECT_TRUE(Allocation({{0, 4}, {1, 8}}).fits(platform));
  EXPECT_FALSE(Allocation({{0, 5}}).fits(platform));
  EXPECT_FALSE(Allocation({{0, 2}, {0, 3}}).fits(platform));  // 5 > 4 combined
  EXPECT_FALSE(Allocation({{2, 1}}).fits(platform));          // unknown type
  EXPECT_FALSE(Allocation({{0, 0}}).fits(platform));          // empty group
}

TEST(Allocation, UsageAccounting) {
  const Allocation allocation({{0, 2}, {1, 4}, {0, 1}});
  EXPECT_EQ(allocation.used_of_type(0), 3u);
  EXPECT_EQ(allocation.used_of_type(1), 4u);
  EXPECT_EQ(allocation.total_processors(), 7u);
  EXPECT_EQ(allocation.size(), 3u);
}

TEST(Allocation, ToStringNamesTypes) {
  const Allocation allocation({{0, 2}, {1, 8}});
  const std::string text = allocation.to_string(small_platform());
  EXPECT_NE(text.find("2 x type1"), std::string::npos);
  EXPECT_NE(text.find("8 x type2"), std::string::npos);
}

// ------------------------------------------------------- candidate counts --

TEST(CandidateCounts, PowerOfTwo) {
  EXPECT_EQ(candidate_counts(8, CountRule::kPowerOfTwo),
            (std::vector<std::size_t>{1, 2, 4, 8}));
  EXPECT_EQ(candidate_counts(6, CountRule::kPowerOfTwo), (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_TRUE(candidate_counts(0, CountRule::kPowerOfTwo).empty());
}

TEST(CandidateCounts, Any) {
  EXPECT_EQ(candidate_counts(3, CountRule::kAny), (std::vector<std::size_t>{1, 2, 3}));
}

// ------------------------------------------------------------ enumeration --

TEST(Enumerate, SingleAppSingleType) {
  const sysmodel::Platform platform({{"t", 4}});
  const auto all = enumerate_feasible(1, platform, CountRule::kPowerOfTwo);
  // counts {1, 2, 4}.
  EXPECT_EQ(all.size(), 3u);
}

TEST(Enumerate, AllResultsAreFeasibleAndComplete) {
  const auto platform = small_platform();
  const auto all = enumerate_feasible(3, platform, CountRule::kPowerOfTwo);
  EXPECT_FALSE(all.empty());
  std::set<std::vector<std::pair<std::size_t, std::size_t>>> unique;
  for (const Allocation& allocation : all) {
    EXPECT_EQ(allocation.size(), 3u);
    EXPECT_TRUE(allocation.fits(platform));
    std::vector<std::pair<std::size_t, std::size_t>> key;
    for (const GroupAssignment& g : allocation.groups()) {
      key.emplace_back(g.processor_type, g.processors);
    }
    unique.insert(key);
  }
  EXPECT_EQ(unique.size(), all.size());  // no duplicates
}

TEST(Enumerate, ContainsThePaperAllocations) {
  const auto all = enumerate_feasible(3, small_platform(), CountRule::kPowerOfTwo);
  const Allocation naive({{1, 4}, {0, 4}, {1, 4}});
  const Allocation robust({{0, 2}, {0, 2}, {1, 8}});
  EXPECT_NE(std::find(all.begin(), all.end(), naive), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), robust), all.end());
}

TEST(Enumerate, CountMatchesMaterialization) {
  const auto platform = small_platform();
  for (std::size_t apps : {1u, 2u, 3u}) {
    EXPECT_EQ(count_feasible(apps, platform, CountRule::kPowerOfTwo),
              enumerate_feasible(apps, platform, CountRule::kPowerOfTwo).size());
  }
}

TEST(Enumerate, AnyRuleIsSuperset) {
  const auto platform = small_platform();
  EXPECT_GT(count_feasible(2, platform, CountRule::kAny),
            count_feasible(2, platform, CountRule::kPowerOfTwo));
}

TEST(Enumerate, ZeroAppsThrows) {
  EXPECT_THROW(enumerate_feasible(0, small_platform(), CountRule::kAny), std::invalid_argument);
  EXPECT_THROW(count_feasible(0, small_platform(), CountRule::kAny), std::invalid_argument);
}

TEST(Enumerate, InfeasibleWhenTooManyApps) {
  const sysmodel::Platform tiny({{"t", 2}});
  EXPECT_TRUE(enumerate_feasible(3, tiny, CountRule::kAny).empty());
}

}  // namespace
}  // namespace cdsf::ra
