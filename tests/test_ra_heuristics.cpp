#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "ra/heuristics.hpp"
#include "test_support.hpp"
#include "workload/generator.hpp"

namespace cdsf::ra {
namespace {

using core::make_paper_example;
using core::paper_naive_allocation;
using core::paper_robust_allocation;

class HeuristicsTest : public ::testing::Test {
 protected:
  HeuristicsTest()
      : example_(make_paper_example()),
        evaluator_(example_.batch, example_.cases.front(), example_.deadline) {}

  core::PaperExample example_;
  RobustnessEvaluator evaluator_;
};

// --------------------------------------------------------- paper matches --

TEST_F(HeuristicsTest, NaiveLoadBalanceReproducesTableFour) {
  const Allocation allocation =
      NaiveLoadBalance().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo);
  EXPECT_EQ(allocation, paper_naive_allocation());
  EXPECT_NEAR(evaluator_.joint_probability(allocation), 0.26, 0.01);
}

TEST_F(HeuristicsTest, ExhaustiveOptimalReproducesTableFour) {
  const Allocation allocation =
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo);
  EXPECT_EQ(allocation, paper_robust_allocation());
  EXPECT_NEAR(evaluator_.joint_probability(allocation), 0.745, 0.01);
}

// -------------------------------------------------------- general checks --

TEST_F(HeuristicsTest, EveryHeuristicReturnsFeasibleCompleteAllocation) {
  for (const auto& heuristic : all_heuristics(true)) {
    const Allocation allocation =
        heuristic->allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo);
    EXPECT_EQ(allocation.size(), example_.batch.size()) << heuristic->name();
    EXPECT_TRUE(allocation.fits(example_.platform)) << heuristic->name();
    for (const GroupAssignment& group : allocation.groups()) {
      // Power-of-two rule respected.
      EXPECT_EQ(group.processors & (group.processors - 1), 0u) << heuristic->name();
    }
  }
}

TEST_F(HeuristicsTest, NoHeuristicBeatsExhaustive) {
  const double optimal = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  for (const auto& heuristic : all_heuristics(false)) {
    const double joint = evaluator_.joint_probability(
        heuristic->allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
    EXPECT_LE(joint, optimal + 1e-9) << heuristic->name();
  }
}

TEST_F(HeuristicsTest, GreedyAndAnnealingFindTheOptimumAtPaperScale) {
  const double optimal = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double greedy = evaluator_.joint_probability(
      GreedyRobustness().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double annealed = evaluator_.joint_probability(
      SimulatedAnnealing().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  EXPECT_NEAR(greedy, optimal, 1e-6);
  EXPECT_NEAR(annealed, optimal, 1e-6);
}

TEST_F(HeuristicsTest, RobustBeatsNaive) {
  const double naive = evaluator_.joint_probability(
      NaiveLoadBalance().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double robust = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  EXPECT_GT(robust, naive + 0.3);
}

TEST_F(HeuristicsTest, AnyCountRuleAtLeastAsGood) {
  const double pow2 = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double any = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kAny));
  EXPECT_GE(any, pow2 - 1e-9);
}

TEST_F(HeuristicsTest, Names) {
  EXPECT_EQ(NaiveLoadBalance().name(), "NaiveLoadBalance");
  EXPECT_EQ(ExhaustiveOptimal().name(), "ExhaustiveOptimal");
  EXPECT_EQ(GreedyRobustness().name(), "GreedyRobustness");
  EXPECT_EQ(MinMinExpected().name(), "MinMinExpected");
  EXPECT_EQ(MaxMinExpected().name(), "MaxMinExpected");
  EXPECT_EQ(SufferageRobust().name(), "SufferageRobust");
  EXPECT_EQ(SimulatedAnnealing().name(), "SimulatedAnnealing");
}

TEST_F(HeuristicsTest, AllHeuristicsListIncludesExhaustiveOnRequest) {
  EXPECT_EQ(all_heuristics(false).size(), 7u);
  EXPECT_EQ(all_heuristics(true).size(), 8u);
}

// -------------------------------------------------------- random batches --

TEST(HeuristicsRandom, FeasibleOnRandomInstances) {
  workload::BatchSpec spec;
  spec.applications = 6;
  spec.processor_types = 3;
  const sysmodel::Platform platform({{"a", 4}, {"b", 8}, {"c", 16}});
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const workload::Batch batch = workload::generate_batch(spec, seed);
    const sysmodel::AvailabilitySpec avail(
        "uniform", {pmf::Pmf::delta(0.8), pmf::Pmf::delta(0.6), pmf::Pmf::delta(0.9)});
    const RobustnessEvaluator evaluator(batch, avail, 20000.0);
    for (const auto& heuristic : all_heuristics(false)) {
      const Allocation allocation =
          heuristic->allocate(evaluator, platform, CountRule::kPowerOfTwo);
      EXPECT_TRUE(allocation.fits(platform)) << heuristic->name() << " seed=" << seed;
      EXPECT_EQ(allocation.size(), batch.size()) << heuristic->name();
    }
  }
}

TEST(HeuristicsRandom, TightCapacityStillAssignsEveryone) {
  // 4 applications on 4 processors: every heuristic must fall back to
  // single-processor groups.
  workload::BatchSpec spec;
  spec.applications = 4;
  spec.processor_types = 2;
  const workload::Batch batch = workload::generate_batch(spec, 11);
  const sysmodel::Platform platform({{"a", 2}, {"b", 2}});
  const sysmodel::AvailabilitySpec avail("u", {pmf::Pmf::delta(0.9), pmf::Pmf::delta(0.9)});
  const RobustnessEvaluator evaluator(batch, avail, 1e9);
  for (const auto& heuristic : all_heuristics(true)) {
    const Allocation allocation = heuristic->allocate(evaluator, platform, CountRule::kAny);
    EXPECT_TRUE(allocation.fits(platform)) << heuristic->name();
    EXPECT_EQ(allocation.total_processors(), 4u) << heuristic->name();
  }
}

TEST(HeuristicsRandom, InfeasibleInstanceThrows) {
  workload::BatchSpec spec;
  spec.applications = 5;
  spec.processor_types = 1;
  const workload::Batch batch = workload::generate_batch(spec, 4);
  const sysmodel::Platform platform({{"only", 3}});
  const sysmodel::AvailabilitySpec avail("u", {pmf::Pmf::delta(1.0)});
  const RobustnessEvaluator evaluator(batch, avail, 1e9);
  for (const auto& heuristic : all_heuristics(true)) {
    EXPECT_THROW(heuristic->allocate(evaluator, platform, CountRule::kAny), std::runtime_error)
        << heuristic->name();
  }
}

TEST_F(HeuristicsTest, TabuSearchFindsTheOptimumAtPaperScale) {
  const double optimal = evaluator_.joint_probability(
      ExhaustiveOptimal().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double tabu = evaluator_.joint_probability(
      TabuSearch().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  EXPECT_NEAR(tabu, optimal, 1e-6);
}

TEST_F(HeuristicsTest, TabuSearchAtLeastMatchesGreedy) {
  // Tabu's diversification can only help relative to the pure hill climb.
  const double greedy = evaluator_.joint_probability(
      GreedyRobustness().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  const double tabu = evaluator_.joint_probability(
      TabuSearch().allocate(evaluator_, example_.platform, CountRule::kPowerOfTwo));
  EXPECT_GE(tabu, greedy - 1e-9);
}

TEST(TabuSearch, DeterministicAndPatienceBounded) {
  const auto example = make_paper_example();
  const RobustnessEvaluator evaluator(example.batch, example.cases.front(), example.deadline);
  TabuOptions options;
  options.patience = 5;
  options.max_moves = 50;
  const Allocation a =
      TabuSearch(options).allocate(evaluator, example.platform, CountRule::kPowerOfTwo);
  const Allocation b =
      TabuSearch(options).allocate(evaluator, example.platform, CountRule::kPowerOfTwo);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.fits(example.platform));
}

TEST(HeuristicsRandom, AnnealingIsDeterministicGivenSeed) {
  const auto example = make_paper_example();
  const RobustnessEvaluator evaluator(example.batch, example.cases.front(), example.deadline);
  AnnealingOptions options;
  options.seed = 77;
  const Allocation a =
      SimulatedAnnealing(options).allocate(evaluator, example.platform, CountRule::kPowerOfTwo);
  const Allocation b =
      SimulatedAnnealing(options).allocate(evaluator, example.platform, CountRule::kPowerOfTwo);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cdsf::ra
