#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "ra/robustness.hpp"
#include "test_support.hpp"

namespace cdsf::ra {
namespace {

using core::make_paper_example;
using core::paper_naive_allocation;
using core::paper_robust_allocation;

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : example_(make_paper_example()),
        evaluator_(example_.batch, example_.cases.front(), example_.deadline) {}

  core::PaperExample example_;
  RobustnessEvaluator evaluator_;
};

TEST_F(RobustnessTest, ExpectedCompletionsMatchTableFive) {
  const Allocation naive = paper_naive_allocation();
  EXPECT_NEAR(evaluator_.expected_completion(0, naive.at(0)), 3800.02, 15.0);
  EXPECT_NEAR(evaluator_.expected_completion(1, naive.at(1)), 1306.39, 10.0);
  EXPECT_NEAR(evaluator_.expected_completion(2, naive.at(2)), 4599.76, 15.0);

  const Allocation robust = paper_robust_allocation();
  EXPECT_NEAR(evaluator_.expected_completion(0, robust.at(0)), 1365.46, 10.0);
  EXPECT_NEAR(evaluator_.expected_completion(1, robust.at(1)), 1959.59, 10.0);
  EXPECT_NEAR(evaluator_.expected_completion(2, robust.at(2)), 2699.86, 10.0);
}

TEST_F(RobustnessTest, JointProbabilitiesMatchPaper) {
  // Paper: 26% for naive IM, 74.5% for robust IM.
  EXPECT_NEAR(evaluator_.joint_probability(paper_naive_allocation()), 0.26, 0.01);
  EXPECT_NEAR(evaluator_.joint_probability(paper_robust_allocation()), 0.745, 0.01);
}

TEST_F(RobustnessTest, PerApplicationProbabilitiesDecompose) {
  const Allocation robust = paper_robust_allocation();
  double product = 1.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double p = evaluator_.application_probability(i, robust.at(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    product *= p;
  }
  EXPECT_NEAR(product, evaluator_.joint_probability(robust), 1e-12);
}

TEST_F(RobustnessTest, App3DominatesRobustAllocationRisk) {
  const Allocation robust = paper_robust_allocation();
  // Apps 1 and 2 are near-certain; app 3 carries the 25% risk (the 25%
  // availability pulse of type 2 pushes it to ~5400 > 3250).
  EXPECT_GT(evaluator_.application_probability(0, robust.at(0)), 0.99);
  EXPECT_GT(evaluator_.application_probability(1, robust.at(1)), 0.99);
  EXPECT_NEAR(evaluator_.application_probability(2, robust.at(2)), 0.745, 0.01);
}

TEST_F(RobustnessTest, MoreProcessorsNeverHurtProbability) {
  for (std::size_t app = 0; app < 3; ++app) {
    for (std::size_t type = 0; type < 2; ++type) {
      double prev = 0.0;
      for (std::size_t n = 1; n <= 8; n *= 2) {
        const double p = evaluator_.application_probability(app, {type, n});
        EXPECT_GE(p, prev - 1e-9) << "app=" << app << " type=" << type << " n=" << n;
        prev = p;
      }
    }
  }
}

TEST_F(RobustnessTest, CompletionPmfIsCached) {
  const GroupAssignment group{1, 8};
  const pmf::Pmf& first = evaluator_.completion_pmf(2, group);
  const pmf::Pmf& second = evaluator_.completion_pmf(2, group);
  EXPECT_EQ(&first, &second);
}

TEST_F(RobustnessTest, CompletionPmfSupportScalesWithAvailability) {
  // Type 2, case 1: pulses at 1/0.25, 1/0.5, 1/1 of the dedicated time.
  const pmf::Pmf& completion = evaluator_.completion_pmf(2, {1, 8});
  // Min ~ fastest dedicated pulse; max ~ slowest pulse / 0.25.
  EXPECT_GT(completion.max(), 3.5 * completion.min());
}

TEST_F(RobustnessTest, Validation) {
  EXPECT_THROW(evaluator_.completion_pmf(9, {0, 1}), std::out_of_range);
  EXPECT_THROW(evaluator_.completion_pmf(0, {9, 1}), std::invalid_argument);
  EXPECT_THROW(evaluator_.completion_pmf(0, {0, 0}), std::invalid_argument);
  EXPECT_THROW(evaluator_.joint_probability(Allocation({{0, 1}})), std::invalid_argument);
}

TEST(RobustnessEvaluator, ConstructionValidation) {
  const auto example = make_paper_example();
  EXPECT_THROW(RobustnessEvaluator(workload::Batch{}, example.cases.front(), 100.0),
               std::invalid_argument);
  EXPECT_THROW(RobustnessEvaluator(example.batch, example.cases.front(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(RobustnessEvaluator(example.batch, test::full_availability(3), 100.0),
               std::invalid_argument);
  RobustnessConfig bad;
  bad.discretization_pulses = 0;
  EXPECT_THROW(RobustnessEvaluator(example.batch, example.cases.front(), 100.0, bad),
               std::invalid_argument);
}

TEST(RobustnessEvaluator, TightDeadlineGivesZeroLooseGivesOne) {
  const auto example = make_paper_example();
  const RobustnessEvaluator tight(example.batch, example.cases.front(), 1.0);
  EXPECT_NEAR(tight.joint_probability(paper_robust_allocation()), 0.0, 1e-12);
  const RobustnessEvaluator loose(example.batch, example.cases.front(), 1e9);
  EXPECT_NEAR(loose.joint_probability(paper_robust_allocation()), 1.0, 1e-12);
}

}  // namespace
}  // namespace cdsf::ra
