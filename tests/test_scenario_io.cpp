#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "cdsf/paper_example.hpp"
#include "cdsf/scenario_io.hpp"
#include "ra/heuristics.hpp"
#include "ra/robustness.hpp"

namespace cdsf::core {
namespace {

constexpr const char* kMinimalScenario = R"(
# a minimal two-type scenario
[platform]
type = fast 2
type = slow 4

[availability ref]
fast = 0.8:0.5 1.0:0.5
slow = 0.5:1.0

[application job1]
serial = 10
parallel = 90
mean = 100 200

[deadline]
value = 500
)";

TEST(ScenarioIo, ParsesMinimalScenario) {
  const Scenario scenario = parse_scenario_text(kMinimalScenario);
  EXPECT_EQ(scenario.platform.type_count(), 2u);
  EXPECT_EQ(scenario.platform.type(0).name, "fast");
  EXPECT_EQ(scenario.platform.processors_of_type(1), 4u);
  ASSERT_EQ(scenario.cases.size(), 1u);
  EXPECT_EQ(scenario.cases[0].name(), "ref");
  EXPECT_NEAR(scenario.cases[0].expected(0), 0.9, 1e-12);
  EXPECT_NEAR(scenario.cases[0].expected(1), 0.5, 1e-12);
  ASSERT_EQ(scenario.batch.size(), 1u);
  EXPECT_EQ(scenario.batch.at(0).name(), "job1");
  EXPECT_EQ(scenario.batch.at(0).serial_iterations(), 10);
  EXPECT_DOUBLE_EQ(scenario.batch.at(0).mean_time(1), 200.0);
  EXPECT_DOUBLE_EQ(scenario.deadline, 500.0);
}

TEST(ScenarioIo, DefaultsAndOptionalKeys) {
  std::string text = kMinimalScenario;
  text += "\n[application job2]\nserial = 0\nparallel = 50\nmean = 10 20\ncov = 0.25\n"
          "law = gamma\n";
  const Scenario scenario = parse_scenario_text(text);
  ASSERT_EQ(scenario.batch.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.batch.at(0).time_law(0).cov, 0.1);  // default
  EXPECT_DOUBLE_EQ(scenario.batch.at(1).time_law(0).cov, 0.25);
  EXPECT_EQ(scenario.batch.at(1).time_law(0).kind, workload::TimeLawKind::kGamma);
}

TEST(ScenarioIo, PaperScenarioRoundTripsExactly) {
  const PaperExample example = make_paper_example();
  const Scenario parsed = parse_scenario_text(paper_scenario_text());
  EXPECT_EQ(parsed.platform, example.platform);
  ASSERT_EQ(parsed.cases.size(), example.cases.size());
  for (std::size_t k = 0; k < example.cases.size(); ++k) {
    EXPECT_EQ(parsed.cases[k], example.cases[k]) << "case " << k + 1;
  }
  ASSERT_EQ(parsed.batch.size(), example.batch.size());
  for (std::size_t i = 0; i < example.batch.size(); ++i) {
    EXPECT_EQ(parsed.batch.at(i), example.batch.at(i)) << "app " << i + 1;
  }
  EXPECT_DOUBLE_EQ(parsed.deadline, example.deadline);
}

TEST(ScenarioIo, ParsedPaperScenarioReproducesPhi1) {
  const Scenario scenario = parse_scenario_text(paper_scenario_text());
  const ra::RobustnessEvaluator evaluator(scenario.batch, scenario.cases.front(),
                                          scenario.deadline);
  const ra::Allocation robust =
      ra::ExhaustiveOptimal().allocate(evaluator, scenario.platform, ra::CountRule::kPowerOfTwo);
  EXPECT_NEAR(evaluator.joint_probability(robust), 0.745, 0.01);
}

TEST(ScenarioIo, SerializeParseSerializeIsStable) {
  const std::string once = paper_scenario_text();
  const std::string twice = scenario_to_text(parse_scenario_text(once));
  EXPECT_EQ(once, twice);
}

TEST(ScenarioIo, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/cdsf_scenario_test.ini";
  {
    std::ofstream out(path);
    out << kMinimalScenario;
  }
  const Scenario scenario = load_scenario(path);
  EXPECT_EQ(scenario.batch.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario("/nonexistent/dir/nope.ini"), std::runtime_error);
}

// -------------------------------------------------------- parse failures --

TEST(ScenarioIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_scenario_text("key = value\n"), std::runtime_error);   // outside section
  EXPECT_THROW(parse_scenario_text("[platform\n"), std::runtime_error);     // unterminated
  EXPECT_THROW(parse_scenario_text("[what]\n"), std::runtime_error);        // unknown section
  EXPECT_THROW(parse_scenario_text("[platform]\ntype = only\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text("[platform]\ntype = a x\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text("[availability]\n"), std::runtime_error);  // missing name
  EXPECT_THROW(parse_scenario_text("[platform]\ntype = a 2\n[availability c]\na = 0.5\n"),
               std::runtime_error);  // pulse missing ':'
}

TEST(ScenarioIo, RejectsSemanticErrors) {
  // No applications.
  EXPECT_THROW(parse_scenario_text("[platform]\ntype = a 2\n[availability c]\na = 1.0:1\n"
                                   "[deadline]\nvalue = 10\n"),
               std::invalid_argument);
  // Unknown type in availability.
  EXPECT_THROW(parse_scenario_text("[platform]\ntype = a 2\n[availability c]\nb = 1.0:1\n"),
               std::runtime_error);
  // Availability missing a type.
  EXPECT_THROW(
      parse_scenario_text("[platform]\ntype = a 2\ntype = b 2\n[availability c]\na = 1.0:1\n"
                          "[application x]\nserial = 1\nparallel = 1\nmean = 1 1\n"
                          "[deadline]\nvalue = 10\n"),
      std::invalid_argument);
  // Wrong number of means.
  EXPECT_THROW(
      parse_scenario_text("[platform]\ntype = a 2\ntype = b 2\n[availability c]\n"
                          "a = 1.0:1\nb = 1.0:1\n[application x]\nserial = 1\nparallel = 1\n"
                          "mean = 1\n[deadline]\nvalue = 10\n"),
      std::invalid_argument);
  // Missing deadline.
  EXPECT_THROW(
      parse_scenario_text("[platform]\ntype = a 2\n[availability c]\na = 1.0:1\n"
                          "[application x]\nserial = 1\nparallel = 1\nmean = 1\n"),
      std::invalid_argument);
}

TEST(ScenarioIo, CommentsAndBlankLinesIgnored) {
  std::string text = "# leading comment\n\n";
  text += kMinimalScenario;
  text += "\n# trailing comment\n";
  EXPECT_NO_THROW(parse_scenario_text(text));
}

// ------------------------------------------------------- failure sections --

TEST(ScenarioIo, ParsesFailureSections) {
  std::string text = kMinimalScenario;
  text += "\n[failure]\nworker = 2\ntime = 600\nkind = crash-recover\nrecovery = 1400\n";
  text += "\n[failure]\nworker = 0\ntime = 100\nkind = degrade\nresidual = 0.05\n";
  text += "\n[failure]\nworker = 1\ntime = 250\nkind = crash\n";
  const Scenario scenario = parse_scenario_text(text);
  ASSERT_EQ(scenario.failures.size(), 3u);

  EXPECT_EQ(scenario.failures[0].worker, 2u);
  EXPECT_DOUBLE_EQ(scenario.failures[0].time, 600.0);
  EXPECT_EQ(scenario.failures[0].kind, sim::SimConfig::FailureKind::kCrashRecover);
  EXPECT_DOUBLE_EQ(scenario.failures[0].recovery_time, 1400.0);

  EXPECT_EQ(scenario.failures[1].worker, 0u);
  EXPECT_EQ(scenario.failures[1].kind, sim::SimConfig::FailureKind::kDegrade);
  EXPECT_DOUBLE_EQ(scenario.failures[1].residual_availability, 0.05);

  EXPECT_EQ(scenario.failures[2].kind, sim::SimConfig::FailureKind::kCrash);
  EXPECT_TRUE(std::isinf(scenario.failures[2].recovery_time));
}

TEST(ScenarioIo, FailuresRoundTripThroughText) {
  std::string text = kMinimalScenario;
  text += "\n[failure]\nworker = 1\ntime = 50\nkind = crash\n";
  text += "\n[failure]\nworker = 3\ntime = 75\nkind = degrade\nresidual = 0.02\n";
  text += "\n[failure]\nworker = 0\ntime = 10\nkind = crash-recover\nrecovery = 90\n";
  const Scenario original = parse_scenario_text(text);
  const Scenario reparsed = parse_scenario_text(scenario_to_text(original));
  ASSERT_EQ(reparsed.failures.size(), original.failures.size());
  for (std::size_t k = 0; k < original.failures.size(); ++k) {
    EXPECT_EQ(reparsed.failures[k].worker, original.failures[k].worker) << k;
    EXPECT_DOUBLE_EQ(reparsed.failures[k].time, original.failures[k].time) << k;
    EXPECT_EQ(reparsed.failures[k].kind, original.failures[k].kind) << k;
    EXPECT_DOUBLE_EQ(reparsed.failures[k].residual_availability,
                     original.failures[k].residual_availability)
        << k;
    EXPECT_DOUBLE_EQ(reparsed.failures[k].recovery_time, original.failures[k].recovery_time)
        << k;
  }
}

TEST(ScenarioIo, RejectsMalformedFailures) {
  const std::string base = kMinimalScenario;
  // Named [failure] section.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure oops]\nworker = 0\n"),
               std::runtime_error);
  // Unknown key.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nwrker = 0\n"), std::runtime_error);
  // Unknown kind.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\nkind = explode\n"),
               std::runtime_error);
  // Negative worker / time.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = -1\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = -5\n"),
               std::runtime_error);
  // Residual outside (0, 1].
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\nresidual = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\nresidual = 1.5\n"),
               std::runtime_error);
  // crash-recover needs recovery > time.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = 100\n"
                                          "kind = crash-recover\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = 100\n"
                                          "kind = crash-recover\nrecovery = 100\n"),
               std::invalid_argument);
  // recovery is crash-recover-only.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = 100\n"
                                          "kind = crash\nrecovery = 200\n"),
               std::invalid_argument);
}

// ------------------------------------------- channel / checkpoint sections --

TEST(ScenarioIo, ParsesChannelAndCheckpointSections) {
  std::string text = kMinimalScenario;
  text += "\n[channel]\ndrop-to-worker = 0.05\ndrop-to-master = 0.02\n"
          "duplicate-to-master = 0.1\nreorder-to-worker = 0.2\nreorder-delay = 1.5\n"
          "burst-gap-mean = 300\nburst-duration = 8\nrto = 3\nrto-backoff = 1.5\n"
          "max-retransmits = 4\n";
  text += "\n[checkpoint]\ninterval = 250\njson = out/checkpoint.json\n";
  text += "\n[failure]\ntime = 120\nkind = master-restart\nrecovery = 150\n";
  const Scenario scenario = parse_scenario_text(text);
  EXPECT_TRUE(scenario.channel.faulty());
  EXPECT_DOUBLE_EQ(scenario.channel.drop_to_worker, 0.05);
  EXPECT_DOUBLE_EQ(scenario.channel.drop_to_master, 0.02);
  EXPECT_DOUBLE_EQ(scenario.channel.duplicate_to_master, 0.1);
  EXPECT_DOUBLE_EQ(scenario.channel.reorder_to_worker, 0.2);
  EXPECT_DOUBLE_EQ(scenario.channel.reorder_delay, 1.5);
  EXPECT_DOUBLE_EQ(scenario.channel.burst_gap_mean, 300.0);
  EXPECT_DOUBLE_EQ(scenario.channel.burst_duration, 8.0);
  EXPECT_DOUBLE_EQ(scenario.channel.rto, 3.0);
  EXPECT_DOUBLE_EQ(scenario.channel.rto_backoff, 1.5);
  EXPECT_EQ(scenario.channel.max_retransmits, 4u);
  EXPECT_TRUE(scenario.checkpoint.enabled);
  EXPECT_DOUBLE_EQ(scenario.checkpoint.interval, 250.0);
  EXPECT_EQ(scenario.checkpoint.json_path, "out/checkpoint.json");
  ASSERT_EQ(scenario.failures.size(), 1u);
  EXPECT_EQ(scenario.failures[0].kind, sim::SimConfig::FailureKind::kMasterCrashRestart);
  EXPECT_DOUBLE_EQ(scenario.failures[0].time, 120.0);
  EXPECT_DOUBLE_EQ(scenario.failures[0].recovery_time, 150.0);
}

TEST(ScenarioIo, ChannelAndCheckpointRoundTripThroughText) {
  std::string text = kMinimalScenario;
  text += "\n[channel]\ndrop-to-worker = 0.1\nduplicate-to-worker = 0.3\n"
          "reorder-to-master = 0.25\nburst-gap-mean = 200\nburst-duration = 5\n"
          "rto = 2.5\nmax-retransmits = 6\n";
  text += "\n[checkpoint]\ninterval = 100\n";
  text += "\n[failure]\ntime = 60\nkind = master-restart\nrecovery = 90\n";
  const Scenario original = parse_scenario_text(text);
  const Scenario reparsed = parse_scenario_text(scenario_to_text(original));
  EXPECT_DOUBLE_EQ(reparsed.channel.drop_to_worker, original.channel.drop_to_worker);
  EXPECT_DOUBLE_EQ(reparsed.channel.duplicate_to_worker, original.channel.duplicate_to_worker);
  EXPECT_DOUBLE_EQ(reparsed.channel.reorder_to_master, original.channel.reorder_to_master);
  EXPECT_DOUBLE_EQ(reparsed.channel.burst_gap_mean, original.channel.burst_gap_mean);
  EXPECT_DOUBLE_EQ(reparsed.channel.burst_duration, original.channel.burst_duration);
  EXPECT_DOUBLE_EQ(reparsed.channel.rto, original.channel.rto);
  EXPECT_DOUBLE_EQ(reparsed.channel.rto_backoff, original.channel.rto_backoff);
  EXPECT_EQ(reparsed.channel.max_retransmits, original.channel.max_retransmits);
  EXPECT_EQ(reparsed.checkpoint.enabled, original.checkpoint.enabled);
  EXPECT_DOUBLE_EQ(reparsed.checkpoint.interval, original.checkpoint.interval);
  ASSERT_EQ(reparsed.failures.size(), 1u);
  EXPECT_EQ(reparsed.failures[0].kind, sim::SimConfig::FailureKind::kMasterCrashRestart);
  EXPECT_DOUBLE_EQ(reparsed.failures[0].recovery_time, 90.0);
  // Second serialization is a fixed point.
  EXPECT_EQ(scenario_to_text(original), scenario_to_text(reparsed));
}

TEST(ScenarioIo, CleanChannelIsNotSerialized) {
  const Scenario scenario = parse_scenario_text(kMinimalScenario);
  EXPECT_FALSE(scenario.channel.faulty());
  EXPECT_FALSE(scenario.checkpoint.enabled);
  const std::string text = scenario_to_text(scenario);
  EXPECT_EQ(text.find("[channel]"), std::string::npos);
  EXPECT_EQ(text.find("[checkpoint]"), std::string::npos);
}

TEST(ScenarioIo, RejectsMalformedChannelAndCheckpoint) {
  const std::string base = kMinimalScenario;
  // Named sections.
  EXPECT_THROW(parse_scenario_text(base + "\n[channel lossy]\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[checkpoint c]\n"), std::runtime_error);
  // Unknown keys.
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\ndrop = 0.1\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[checkpoint]\nperiod = 10\n"),
               std::runtime_error);
  // Probabilities outside [0, 1].
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\ndrop-to-worker = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\nduplicate-to-master = -0.1\n"),
               std::runtime_error);
  // Degenerate protocol knobs.
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\nreorder-delay = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\nrto = 0\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\nrto-backoff = 0.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[channel]\nmax-retransmits = -1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[checkpoint]\ninterval = 0\n"),
               std::runtime_error);
  // master-restart needs recovery > time.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\ntime = 100\nkind = master-restart\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\ntime = 100\nkind = master-restart\n"
                                          "recovery = 100\n"),
               std::invalid_argument);
  // At most one master-restart per scenario.
  EXPECT_THROW(
      parse_scenario_text(base + "\n[failure]\ntime = 10\nkind = master-restart\nrecovery = 20\n"
                                 "\n[failure]\ntime = 30\nkind = master-restart\nrecovery = 40\n"),
      std::invalid_argument);
}

// ------------------------------------------- quarantine / integrity sections --

TEST(ScenarioIo, ParsesQuarantineAndIntegritySections) {
  std::string text = kMinimalScenario;
  text += "\n[quarantine]\newma-alpha = 0.4\nslowdown-threshold = 3\n"
          "min-observations = 5\nprobe-interval = 120\nprobe-successes = 3\n"
          "audit-rate = 0.2\naudit-mismatch-limit = 2\n";
  text += "\n[integrity]\ncorrupt-to-worker = 0.01\ncorrupt-to-master = 0.02\n";
  const Scenario scenario = parse_scenario_text(text);
  EXPECT_TRUE(scenario.quarantine.enabled);  // section presence arms the tracker
  EXPECT_TRUE(scenario.quarantine.armed());
  EXPECT_DOUBLE_EQ(scenario.quarantine.ewma_alpha, 0.4);
  EXPECT_DOUBLE_EQ(scenario.quarantine.slowdown_threshold, 3.0);
  EXPECT_EQ(scenario.quarantine.min_observations, 5u);
  EXPECT_DOUBLE_EQ(scenario.quarantine.probe_interval, 120.0);
  EXPECT_EQ(scenario.quarantine.probe_successes, 3u);
  EXPECT_DOUBLE_EQ(scenario.quarantine.audit_rate, 0.2);
  EXPECT_EQ(scenario.quarantine.audit_mismatch_limit, 2u);
  EXPECT_TRUE(scenario.channel.corrupting());
  EXPECT_TRUE(scenario.channel.faulty());  // corruption implies a faulty channel
  EXPECT_DOUBLE_EQ(scenario.channel.corrupt_to_worker, 0.01);
  EXPECT_DOUBLE_EQ(scenario.channel.corrupt_to_master, 0.02);
}

TEST(ScenarioIo, QuarantineAndIntegrityRoundTripThroughText) {
  std::string text = kMinimalScenario;
  text += "\n[quarantine]\nslowdown-threshold = 2.5\naudit-rate = 0.15\n";
  text += "\n[integrity]\ncorrupt-to-master = 0.005\n";
  text += "\n[failure]\nworker = 1\ntime = 40\nkind = silent-corrupt\nprobability = 0.6\n";
  const Scenario original = parse_scenario_text(text);
  const Scenario reparsed = parse_scenario_text(scenario_to_text(original));
  EXPECT_EQ(reparsed.quarantine.enabled, original.quarantine.enabled);
  EXPECT_DOUBLE_EQ(reparsed.quarantine.ewma_alpha, original.quarantine.ewma_alpha);
  EXPECT_DOUBLE_EQ(reparsed.quarantine.slowdown_threshold, 2.5);
  EXPECT_EQ(reparsed.quarantine.min_observations, original.quarantine.min_observations);
  EXPECT_DOUBLE_EQ(reparsed.quarantine.probe_interval, original.quarantine.probe_interval);
  EXPECT_EQ(reparsed.quarantine.probe_successes, original.quarantine.probe_successes);
  EXPECT_DOUBLE_EQ(reparsed.quarantine.audit_rate, 0.15);
  EXPECT_EQ(reparsed.quarantine.audit_mismatch_limit, original.quarantine.audit_mismatch_limit);
  EXPECT_DOUBLE_EQ(reparsed.channel.corrupt_to_worker, 0.0);
  EXPECT_DOUBLE_EQ(reparsed.channel.corrupt_to_master, 0.005);
  ASSERT_EQ(reparsed.failures.size(), 1u);
  EXPECT_EQ(reparsed.failures[0].kind, sim::SimConfig::FailureKind::kSilentCorrupt);
  EXPECT_DOUBLE_EQ(reparsed.failures[0].corrupt_probability, 0.6);
  // Second serialization is a fixed point.
  EXPECT_EQ(scenario_to_text(original), scenario_to_text(reparsed));
}

TEST(ScenarioIo, AuditOnlyQuarantineRoundTrips) {
  // 'fail-slow = 0' keeps the EWMA tracker off while the audit layer runs.
  std::string text = kMinimalScenario;
  text += "\n[quarantine]\nfail-slow = 0\naudit-rate = 0.3\n";
  const Scenario original = parse_scenario_text(text);
  EXPECT_FALSE(original.quarantine.enabled);
  EXPECT_TRUE(original.quarantine.armed());
  const Scenario reparsed = parse_scenario_text(scenario_to_text(original));
  EXPECT_FALSE(reparsed.quarantine.enabled);
  EXPECT_DOUBLE_EQ(reparsed.quarantine.audit_rate, 0.3);
  EXPECT_EQ(scenario_to_text(original), scenario_to_text(reparsed));
}

TEST(ScenarioIo, DisarmedQuarantineIsNotSerialized) {
  const Scenario scenario = parse_scenario_text(kMinimalScenario);
  EXPECT_FALSE(scenario.quarantine.armed());
  const std::string text = scenario_to_text(scenario);
  EXPECT_EQ(text.find("[quarantine]"), std::string::npos);
  EXPECT_EQ(text.find("[integrity]"), std::string::npos);
}

TEST(ScenarioIo, RejectsMalformedQuarantineAndIntegrity) {
  const std::string base = kMinimalScenario;
  // Named sections.
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine q]\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[integrity i]\n"), std::runtime_error);
  // Unknown keys.
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nthreshold = 4\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[integrity]\ncorrupt = 0.1\n"),
               std::runtime_error);
  // Out-of-range knobs.
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\newma-alpha = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\newma-alpha = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nslowdown-threshold = 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nmin-observations = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nprobe-interval = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nprobe-successes = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\naudit-rate = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\naudit-mismatch-limit = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[quarantine]\nfail-slow = 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[integrity]\ncorrupt-to-worker = -0.1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[integrity]\ncorrupt-to-master = 1.01\n"),
               std::runtime_error);
  // silent-corrupt probability must be positive and silent-corrupt-only.
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = 5\n"
                                          "kind = silent-corrupt\nprobability = 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[failure]\nworker = 0\ntime = 5\n"
                                          "kind = crash\nprobability = 0.5\n"),
               std::invalid_argument);
}

TEST(ScenarioIo, AdmissionSectionRoundTripsThroughText) {
  std::string text = kMinimalScenario;
  text += "\n[admission]\npolicy = rho2\nqueue-capacity = 4\norder = edf\n"
          "admit-floor = 0.2\nshed-floor = 0.1\nladder = 1\nladder-alpha = 0.4\n"
          "overload-threshold = 0.7\nrecover-threshold = 0.3\n";
  const Scenario original = parse_scenario_text(text);
  EXPECT_EQ(original.admission.policy, AdmissionPolicy::kRho2Aware);
  EXPECT_EQ(original.admission.queue_capacity, 4u);
  EXPECT_EQ(original.admission.queue_order, QueueOrder::kEdf);
  EXPECT_DOUBLE_EQ(original.admission.admit_floor, 0.2);
  EXPECT_DOUBLE_EQ(original.admission.shed_floor, 0.1);
  EXPECT_TRUE(original.admission.ladder);
  EXPECT_DOUBLE_EQ(original.admission.ladder_alpha, 0.4);
  EXPECT_DOUBLE_EQ(original.admission.overload_threshold, 0.7);
  EXPECT_DOUBLE_EQ(original.admission.recover_threshold, 0.3);
  const Scenario reparsed = parse_scenario_text(scenario_to_text(original));
  EXPECT_EQ(reparsed.admission.policy, original.admission.policy);
  EXPECT_EQ(reparsed.admission.queue_capacity, original.admission.queue_capacity);
  EXPECT_EQ(reparsed.admission.queue_order, original.admission.queue_order);
  EXPECT_DOUBLE_EQ(reparsed.admission.admit_floor, original.admission.admit_floor);
  EXPECT_DOUBLE_EQ(reparsed.admission.shed_floor, original.admission.shed_floor);
  EXPECT_EQ(reparsed.admission.ladder, original.admission.ladder);
  EXPECT_DOUBLE_EQ(reparsed.admission.ladder_alpha, original.admission.ladder_alpha);
  EXPECT_DOUBLE_EQ(reparsed.admission.overload_threshold,
                   original.admission.overload_threshold);
  EXPECT_DOUBLE_EQ(reparsed.admission.recover_threshold,
                   original.admission.recover_threshold);
  // Second serialization is a fixed point.
  EXPECT_EQ(scenario_to_text(original), scenario_to_text(reparsed));
}

TEST(ScenarioIo, AdmissionSectionAloneDefaultsToBoundedQueue) {
  // The mere presence of [admission] means "bound the queue": a capacity
  // without an explicit policy must not silently stay accept-all.
  const Scenario scenario =
      parse_scenario_text(std::string(kMinimalScenario) + "\n[admission]\nqueue-capacity = 3\n");
  EXPECT_EQ(scenario.admission.policy, AdmissionPolicy::kBoundedQueue);
  EXPECT_EQ(scenario.admission.queue_capacity, 3u);
  EXPECT_TRUE(scenario.admission.active());
}

TEST(ScenarioIo, InertAdmissionIsNotSerialized) {
  const Scenario scenario = parse_scenario_text(kMinimalScenario);
  EXPECT_FALSE(scenario.admission.active());
  EXPECT_EQ(scenario_to_text(scenario).find("[admission]"), std::string::npos);
}

TEST(ScenarioIo, RejectsMalformedAdmission) {
  const std::string base = kMinimalScenario;
  // Named section, unknown keys, unknown enum values.
  EXPECT_THROW(parse_scenario_text(base + "\n[admission a]\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\ncapacity = 4\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\npolicy = open-door\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\norder = lifo\n"),
               std::runtime_error);
  // Out-of-range knobs.
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\nqueue-capacity = 0\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\nadmit-floor = 1.5\n"),
      std::runtime_error);
  EXPECT_THROW(
      parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\nshed-floor = -0.1\n"),
      std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\nladder = 2\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\nladder-alpha = 0\n"),
      std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\n"
                                          "overload-threshold = 1.5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\nqueue-capacity = 2\n"
                                          "recover-threshold = 1\n"),
               std::runtime_error);
}

TEST(ScenarioIo, RejectsContradictoryAdmissionKnobs) {
  const std::string base = kMinimalScenario;
  // An explicit accept-all policy with bounded-only machinery armed is a
  // contradiction (validate_admission), not a parse error.
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\npolicy = accept-all\n"
                                          "queue-capacity = 4\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_scenario_text(base + "\n[admission]\npolicy = bounded\n"),  // no capacity
      std::invalid_argument);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\npolicy = bounded\n"
                                          "queue-capacity = 4\nadmit-floor = 0.5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_text(base + "\n[admission]\npolicy = rho2\nqueue-capacity = 4\n"
                                          "ladder = 1\noverload-threshold = 0.3\n"
                                          "recover-threshold = 0.5\n"),
               std::invalid_argument);
}

// Deterministic malformed-input sweep: every truncation of a scenario that
// exercises every section, plus a few hundred seeded byte mutations and a
// set of hand-picked pathological variants. The parser must either accept
// the text or throw — never crash, hang, or trip the sanitizers (this test
// is the parser's coverage anchor in the asan-ubsan / tsan CI jobs).
TEST(ScenarioIo, MalformedInputSweepIsMemorySafe) {
  std::string base = kMinimalScenario;
  base += "\n[failure]\nworker = 1\ntime = 50\nkind = degrade\nresidual = 0.25\n"
          "\n[failure]\nworker = 0\ntime = 80\nkind = silent-corrupt\nprobability = 0.5\n"
          "\n[channel]\ndrop-to-worker = 0.1\nrto = 25\n"
          "\n[quarantine]\nfail-slow = 1\naudit-rate = 0.2\n"
          "\n[integrity]\ncorrupt-to-master = 0.01\n"
          "\n[admission]\npolicy = rho2\nqueue-capacity = 4\norder = edf\n"
          "admit-floor = 0.2\nshed-floor = 0.1\nladder = 1\nladder-alpha = 0.4\n"
          "overload-threshold = 0.7\nrecover-threshold = 0.3\n";
  auto parse_must_not_crash = [](const std::string& text) {
    try {
      (void)parse_scenario_text(text);
    } catch (const std::exception&) {
      // Rejection is a valid outcome; undefined behaviour is not.
    }
  };
  // Truncation at every byte boundary.
  for (std::size_t length = 0; length <= base.size(); ++length) {
    parse_must_not_crash(base.substr(0, length));
  }
  // Seeded byte mutations (fixed splitmix-style generator: replayable,
  // independent of any global RNG state).
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int round = 0; round < 400; ++round) {
    std::string mutated = base;
    const std::uint64_t edits = 1 + next() % 4;
    for (std::uint64_t edit = 0; edit < edits; ++edit) {
      const std::size_t pos = static_cast<std::size_t>(next() % mutated.size());
      mutated[pos] = static_cast<char>(static_cast<unsigned char>(next() & 0xffu));
    }
    parse_must_not_crash(mutated);
  }
  // Pathological hand-picked variants: duplicate keys and sections, empty
  // and non-numeric values, overflow, and embedded NUL bytes.
  const std::string variants[] = {
      "\n[quarantine]\naudit-rate = 0.2\naudit-rate = 0.9\n",
      "\n[integrity]\n[integrity]\ncorrupt-to-worker = 0.5\n",
      "\n[quarantine]\n= 3\n",
      "\n[quarantine]\naudit-rate =\n",
      "\n[quarantine]\naudit-rate = nan\n",
      "\n[quarantine]\naudit-rate = 1e309\n",
      "\n[quarantine]\nmin-observations = 99999999999999999999\n",
      "\n[failure]\nworker = 1\ntime = 50\nkind = degrade\nkind = crash\n",
      "\n[admission]\npolicy = rho2\npolicy = accept-all\nqueue-capacity = 4\n",
      "\n[admission]\nqueue-capacity = 99999999999999999999\n",
      "\n[admission]\norder =\n",
      "\n[admission]\nladder-alpha = nan\n",
      std::string("\n[quarantine]\naudit-rate = 0.2\0junk\n", 33),
  };
  for (const std::string& extra : variants) {
    parse_must_not_crash(std::string(kMinimalScenario) + extra);
  }
  // Still a functioning parser after the sweep.
  EXPECT_NO_THROW(parse_scenario_text(base));
}

}  // namespace
}  // namespace cdsf::core
