// The crash-safe scheduling service: request lifecycle, exactly-once
// crash/restart replay, hedged solves, watchdog quarantine, graceful
// drain, byte-identity across Phase B thread counts, admission reuse,
// and the cooperative-cancellation hooks the watchdog is built on.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "cdsf/admission.hpp"
#include "ra/robustness.hpp"
#include "sim/loop_executor.hpp"
#include "svc/journal.hpp"
#include "svc/request.hpp"
#include "svc/service.hpp"
#include "test_support.hpp"
#include "util/cancel.hpp"

namespace cdsf::svc {
namespace {

/// A small healthy stream (no poison) with fast arrivals.
std::vector<ScenarioRequest> healthy_stream(std::size_t requests, std::uint64_t seed,
                                            double poison_fraction = 0.0) {
  StreamConfig config;
  config.requests = requests;
  config.mean_interarrival = 3.0;
  config.seed = seed;
  config.poison_fraction = poison_fraction;
  return make_scripted_stream(config);
}

/// Fast service config for tests: few replications, modest virtual times.
ServiceConfig fast_config(std::uint64_t seed) {
  ServiceConfig config;
  config.replications = 3;
  config.seed = seed;
  config.mean_solve_time = 10.0;
  config.solve_time_cov = 0.5;
  return config;
}

const RequestRecord& record_for(const ServiceRunResult& result, std::uint64_t id) {
  for (const RequestRecord& record : result.requests) {
    if (record.id == id) return record;
  }
  throw std::out_of_range("no record for id " + std::to_string(id));
}

TEST(ScriptedStream, IsDeterministicAndOrdered) {
  const auto a = healthy_stream(6, 11);
  const auto b = healthy_stream(6, 11);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].scenario_text, b[i].scenario_text);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    if (i > 0) {
      EXPECT_GT(a[i].arrival, a[i - 1].arrival);
    }
  }
  EXPECT_THROW((void)make_scripted_stream(StreamConfig{0, 3.0, 1, 0.0, 0.2}),
               std::invalid_argument);
}

TEST(ServiceConfigValidation, RejectsContradictoryKnobs) {
  ServiceConfig config = fast_config(1);
  config.shards = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = fast_config(1);
  config.poison_strikes = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = fast_config(1);
  config.watchdog_timeout = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = fast_config(1);
  config.admission.policy = core::AdmissionPolicy::kRho2Aware;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = fast_config(1);
  config.admission.policy = core::AdmissionPolicy::kBoundedQueue;
  config.admission.queue_capacity = 2;
  config.admission.shed_floor = 0.5;  // shedding needs deadline pricing
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Service, HealthyStreamDrainsWithEveryRequestCompleted) {
  const auto stream = healthy_stream(5, 21);
  const ServiceRunResult result = SchedulingService(fast_config(21)).run(stream);

  EXPECT_TRUE(result.drained);
  EXPECT_FALSE(result.crashed);
  EXPECT_GT(result.drain_time, stream.back().arrival);
  EXPECT_TRUE(result.admission.identity_holds());
  EXPECT_EQ(result.admission.arrivals, 5u);
  EXPECT_EQ(result.delivered, 5u);
  ASSERT_EQ(result.requests.size(), 5u);
  for (const RequestRecord& record : result.requests) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted) << "request " << record.id;
    EXPECT_GE(record.delivered_at, record.arrival);
    EXPECT_GE(record.attempts, 1u);
    EXPECT_GT(record.rho1, 0.0);
    EXPECT_GE(record.rho2, 0.0);  // 0 when the jittered deadline tolerates no slack
    EXPECT_NE(record.digest, 0u);
  }
  // Delivered reports come out in delivery order and parse as documents.
  EXPECT_EQ(result.delivered_reports.size(), 5u);
  const obs::Json& report = result.report;
  EXPECT_EQ(report.at("schema").as_string(), "cdsf.service_report/1");
}

TEST(Service, ReportBytesAreIdenticalAcrossSolveThreads) {
  const auto stream = healthy_stream(6, 33, 0.2);
  ServiceConfig config_one = fast_config(33);
  config_one.solve_threads = 1;
  ServiceConfig config_four = fast_config(33);
  config_four.solve_threads = 4;

  const ServiceRunResult one = SchedulingService(config_one).run(stream);
  const ServiceRunResult four = SchedulingService(config_four).run(stream);
  EXPECT_EQ(one.report.dump(2), four.report.dump(2));
  ASSERT_EQ(one.delivered_reports.size(), four.delivered_reports.size());
  for (std::size_t i = 0; i < one.delivered_reports.size(); ++i) {
    EXPECT_EQ(one.delivered_reports[i].first, four.delivered_reports[i].first);
    EXPECT_EQ(one.delivered_reports[i].second.dump(2),
              four.delivered_reports[i].second.dump(2));
  }
}

TEST(Service, PoisonRequestIsQuarantinedAfterStrikes) {
  StreamConfig stream_config;
  stream_config.requests = 3;
  stream_config.mean_interarrival = 3.0;
  stream_config.seed = 5;
  stream_config.poison_fraction = 1.0;  // every request malformed
  const auto stream = make_scripted_stream(stream_config);

  ServiceConfig config = fast_config(5);
  config.poison_strikes = 2;
  const ServiceRunResult result = SchedulingService(config).run(stream);
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.poisoned, 3u);
  for (const RequestRecord& record : result.requests) {
    EXPECT_EQ(record.outcome, RequestOutcome::kPoisoned);
    EXPECT_EQ(record.attempts, 2u);  // poison_strikes attempts, then quarantine
    EXPECT_NE(record.error.find("quarantined after 2 strikes"), std::string::npos)
        << record.error;
  }
}

TEST(Service, HangingAttemptsTimeOutAndStrikeOut) {
  ServiceConfig config = fast_config(7);
  config.hang_fraction = 1.0;  // every attempt hangs; only the watchdog ends it
  config.watchdog_timeout = 20.0;
  config.poison_strikes = 2;
  const auto stream = healthy_stream(2, 7);
  const ServiceRunResult result = SchedulingService(config).run(stream);

  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.poisoned, 2u);
  EXPECT_GE(result.timeouts, 4u);  // two strikes per request, plus hedges
  for (const RequestRecord& record : result.requests) {
    EXPECT_EQ(record.outcome, RequestOutcome::kPoisoned);
    EXPECT_NE(record.error.find("watchdog timeout"), std::string::npos);
    // Each strike costs exactly the watchdog budget of virtual time.
    EXPECT_GE(record.delivered_at - record.arrival, 2 * config.watchdog_timeout);
  }
}

TEST(Service, HedgesLaunchAndFirstFinisherWins) {
  ServiceConfig config = fast_config(13);
  config.shards = 2;
  config.solve_time_cov = 1.2;      // heavy-tailed: hedges pay off
  config.hedge_min_delay = 1.0;     // hedge aggressively
  config.hedge_multiplier = 0.5;
  config.hedge_warmup = 2;
  const auto stream = healthy_stream(10, 13);
  const ServiceRunResult result = SchedulingService(config).run(stream);

  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.hedges, 0u);
  EXPECT_LE(result.hedge_wins, result.hedges);
  bool any_hedged = false;
  for (const RequestRecord& record : result.requests) {
    EXPECT_EQ(record.outcome, RequestOutcome::kCompleted);
    if (record.hedged) any_hedged = true;
    if (record.hedge_won) {
      EXPECT_TRUE(record.hedged);
    }
  }
  EXPECT_TRUE(any_hedged);
}

TEST(Service, SingleShardNeverHedges) {
  ServiceConfig config = fast_config(17);
  config.shards = 1;
  config.hedge_min_delay = 0.5;
  config.hedge_multiplier = 0.1;
  const ServiceRunResult result = SchedulingService(config).run(healthy_stream(4, 17));
  EXPECT_TRUE(result.drained);
  EXPECT_EQ(result.hedges, 0u);
}

TEST(Service, BoundedAdmissionRejectsAtCapacityAndIdentityHolds) {
  ServiceConfig config = fast_config(19);
  config.shards = 1;
  config.mean_solve_time = 40.0;  // slow solves back the queue up
  config.solve_time_cov = 0.1;
  config.admission.policy = core::AdmissionPolicy::kBoundedQueue;
  config.admission.queue_capacity = 1;

  StreamConfig stream_config;
  stream_config.requests = 8;
  stream_config.mean_interarrival = 1.0;  // storm
  stream_config.seed = 19;
  const ServiceRunResult result =
      SchedulingService(config).run(make_scripted_stream(stream_config));

  EXPECT_TRUE(result.drained);
  EXPECT_TRUE(result.admission.identity_holds());
  EXPECT_GT(result.admission.rejected, 0u);
  EXPECT_GT(result.delivered, 0u);
  for (const RequestRecord& record : result.requests) {
    if (record.outcome == RequestOutcome::kRejected) {
      EXPECT_EQ(record.delivered_at, record.arrival);  // refused at arrival
      EXPECT_EQ(record.attempts, 0u);
    }
  }
  // Rejected requests are not journaled/acked.
  EXPECT_EQ(result.acked.size(), static_cast<std::size_t>(result.admission.admitted));
}

TEST(Service, DrainUnderStormIsByteIdenticalAcrossThreadCounts) {
  // A storm (fast arrivals, slow solves, bounded queue, hedging armed)
  // must still drain to byte-identical reports for any Phase B fan-out.
  ServiceConfig base = fast_config(23);
  base.shards = 3;
  base.mean_solve_time = 25.0;
  base.solve_time_cov = 0.8;
  base.hedge_min_delay = 2.0;
  base.hedge_warmup = 3;
  base.admission.policy = core::AdmissionPolicy::kBoundedQueue;
  base.admission.queue_capacity = 2;

  StreamConfig stream_config;
  stream_config.requests = 10;
  stream_config.mean_interarrival = 1.5;
  stream_config.seed = 23;
  stream_config.poison_fraction = 0.1;
  const auto stream = make_scripted_stream(stream_config);

  ServiceConfig config_one = base;
  config_one.solve_threads = 1;
  ServiceConfig config_four = base;
  config_four.solve_threads = 4;
  const ServiceRunResult one = SchedulingService(config_one).run(stream);
  const ServiceRunResult four = SchedulingService(config_four).run(stream);
  EXPECT_TRUE(one.drained);
  EXPECT_TRUE(one.admission.identity_holds());
  EXPECT_EQ(one.report.dump(2), four.report.dump(2));
}

TEST(Service, CrashJournalRestartReplaysExactlyOnce) {
  const std::string path = "test_service_crash.jsonl";
  const auto stream = healthy_stream(6, 29);

  ServiceConfig config = fast_config(29);
  config.journal_path = path;
  config.crash_at = stream[2].arrival;  // die as request 3 arrives
  const ServiceRunResult crashed = SchedulingService(config).run(stream);
  EXPECT_TRUE(crashed.crashed);
  EXPECT_FALSE(crashed.drained);
  EXPECT_DOUBLE_EQ(crashed.crash_time, config.crash_at);

  const RecoveredJournal recovered = load_journal(path);
  EXPECT_TRUE(recovered.header_ok);
  EXPECT_FALSE(recovered.torn);
  const std::vector<ScenarioRequest> replay = recovered.unfinished();
  EXPECT_FALSE(replay.empty());
  for (const ScenarioRequest& request : replay) {
    EXPECT_TRUE(request.replayed);
    EXPECT_TRUE(outcome_delivered(record_for(crashed, request.id).outcome) == false);
  }

  // Restart over the same journal: replay set + the unseen tail.
  std::vector<ScenarioRequest> restart_stream = replay;
  for (const ScenarioRequest& request : stream) {
    if (record_for(crashed, request.id).outcome == RequestOutcome::kNotArrived) {
      restart_stream.push_back(request);
    }
  }
  ServiceConfig restart_config = fast_config(29);
  restart_config.journal_path = path;
  restart_config.journal_truncate = false;
  const ServiceRunResult restarted = SchedulingService(restart_config).run(restart_stream);
  EXPECT_TRUE(restarted.drained);
  EXPECT_EQ(restarted.replayed, replay.size());

  // Exactly once: each id is delivered in exactly one of the two runs.
  std::unordered_set<std::uint64_t> first, second;
  for (const RequestRecord& record : crashed.requests) {
    if (outcome_delivered(record.outcome)) first.insert(record.id);
  }
  for (const RequestRecord& record : restarted.requests) {
    if (outcome_delivered(record.outcome)) second.insert(record.id);
  }
  for (const ScenarioRequest& request : stream) {
    EXPECT_EQ(first.count(request.id) + second.count(request.id), 1u)
        << "request " << request.id;
  }
  // The journal is fully settled: nothing left to replay.
  EXPECT_TRUE(load_journal(path).unfinished().empty());
  std::remove(path.c_str());
}

TEST(Service, DuplicateRequestIdsAreRejectedLoudly) {
  auto stream = healthy_stream(2, 31);
  stream[1].id = stream[0].id;
  EXPECT_THROW((void)SchedulingService(fast_config(31)).run(stream),
               std::invalid_argument);
}

TEST(Service, PreCancelledTokenFailsEverySolveGracefully) {
  SchedulingService service(fast_config(37));
  service.cancel_token().cancel();
  const ServiceRunResult result = service.run(healthy_stream(3, 37));
  EXPECT_TRUE(result.drained);  // the virtual loop still drains
  for (const RequestRecord& record : result.requests) {
    EXPECT_EQ(record.outcome, RequestOutcome::kFailed) << "request " << record.id;
    EXPECT_NE(record.error.find("cancelled"), std::string::npos) << record.error;
  }
}

TEST(CancelHooks, RaEnumerationBoundaryThrowsCancelled) {
  util::CancelToken token;
  token.cancel();
  ra::RobustnessConfig config;
  config.cancel = token.flag();
  const workload::Batch batch({test::simple_app("a", 10, 100, {50.0, 80.0})});
  const ra::RobustnessEvaluator evaluator(batch, test::full_availability(2), 5000.0,
                                          config);
  EXPECT_THROW((void)evaluator.completion_pmf(0, ra::GroupAssignment{0, 2}),
               util::Cancelled);
}

TEST(CancelHooks, MonteCarloReplicationBoundaryThrowsCancelled) {
  util::CancelToken token;
  token.cancel();
  sim::SimConfig config;
  config.cancel = token.flag();
  const auto app = test::simple_app("a", 0, 200, {500.0});
  EXPECT_THROW((void)sim::simulate_replicated(app, 0, 4, test::full_availability(1),
                                              dls::TechniqueId::kFAC, config, 3, 9,
                                              10000.0),
               util::Cancelled);
  token.reset();
  EXPECT_NO_THROW((void)sim::simulate_replicated(app, 0, 4, test::full_availability(1),
                                                 dls::TechniqueId::kFAC, config, 3, 3,
                                                 10000.0));
}

TEST(ServiceReport, ExcludesThreadAndJournalKnobsFromConfigEcho) {
  ServiceConfig config = fast_config(41);
  config.solve_threads = 8;
  config.journal_path = "test_service_echo.jsonl";
  const ServiceRunResult result = SchedulingService(config).run(healthy_stream(2, 41));
  const obs::Json& echo = result.report.at("config");
  EXPECT_EQ(echo.find("solve_threads"), nullptr);
  EXPECT_EQ(echo.find("journal_path"), nullptr);
  EXPECT_EQ(echo.at("shards").as_int(), static_cast<std::int64_t>(config.shards));
  std::remove(config.journal_path.c_str());
}

}  // namespace
}  // namespace cdsf::svc
