// The service request journal: round-trip, idempotent dedup, the
// exactly-once replay set, and — the torn-write contract — a byte-level
// truncation sweep in which recovery never throws, always yields a
// record-for-record prefix, and flags any cut into the JSON as a tear.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_set>

#include "svc/journal.hpp"
#include "svc/request.hpp"

namespace cdsf::svc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ScenarioRequest request(std::uint64_t id, double arrival, const std::string& text) {
  ScenarioRequest r;
  r.id = id;
  r.arrival = arrival;
  r.scenario_text = text;
  r.seed = 1000 + id;
  return r;
}

/// Writes a journal with three accepted requests, two completed.
std::string write_sample(const std::string& path) {
  RequestJournal journal;
  journal.open(path, true);
  journal.append_accepted(request(1, 1.5, "[batch]\napp = a\n"));
  journal.append_accepted(request(2, 2.25, "!! poison !!"));
  journal.append_completed(1, RequestOutcome::kCompleted, 0xDEADBEEFCAFEF00DULL);
  journal.append_accepted(request(3, 4.0, "[batch]\napp = c\n"));
  journal.append_completed(2, RequestOutcome::kPoisoned, 0x1ULL);
  return read_file(path);
}

TEST(ServiceJournal, RoundTripsAndComputesTheReplaySet) {
  const std::string path = "service_journal_roundtrip.jsonl";
  write_sample(path);
  const RecoveredJournal recovered = load_journal(path);
  std::remove(path.c_str());

  EXPECT_TRUE(recovered.header_ok);
  EXPECT_FALSE(recovered.torn);
  ASSERT_EQ(recovered.accepted.size(), 3u);
  EXPECT_EQ(recovered.accepted[0].id, 1u);
  EXPECT_EQ(recovered.accepted[1].scenario_text, "!! poison !!");
  EXPECT_DOUBLE_EQ(recovered.accepted[2].arrival, 4.0);
  EXPECT_EQ(recovered.accepted[2].seed, 1003u);
  ASSERT_EQ(recovered.completed.size(), 2u);
  EXPECT_EQ(recovered.completed[0].digest, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(recovered.completed[1].outcome, RequestOutcome::kPoisoned);

  const std::vector<ScenarioRequest> replay = recovered.unfinished();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(replay[0].id, 3u);
  EXPECT_TRUE(replay[0].replayed);
}

TEST(ServiceJournal, MissingFileIsAFreshJournal) {
  const RecoveredJournal recovered = load_journal("service_journal_missing.jsonl");
  EXPECT_FALSE(recovered.header_ok);
  EXPECT_FALSE(recovered.torn);
  EXPECT_TRUE(recovered.accepted.empty());
  EXPECT_TRUE(recovered.unfinished().empty());
}

TEST(ServiceJournal, DuplicateRecordsDedupFirstWins) {
  // Repeated crash/restart cycles can append duplicate completed records;
  // recovery must be idempotent.
  const std::string path = "service_journal_dedup.jsonl";
  {
    RequestJournal journal;
    journal.open(path, true);
    journal.append_accepted(request(7, 1.0, "a"));
    journal.append_accepted(request(7, 9.0, "b"));  // duplicate id
    journal.append_completed(7, RequestOutcome::kCompleted, 0x10ULL);
    journal.append_completed(7, RequestOutcome::kFailed, 0x20ULL);
  }
  const RecoveredJournal recovered = load_journal(path);
  std::remove(path.c_str());
  ASSERT_EQ(recovered.accepted.size(), 1u);
  EXPECT_EQ(recovered.accepted[0].scenario_text, "a");
  ASSERT_EQ(recovered.completed.size(), 1u);
  EXPECT_EQ(recovered.completed[0].outcome, RequestOutcome::kCompleted);
  EXPECT_EQ(recovered.completed[0].digest, 0x10ULL);
  EXPECT_TRUE(recovered.unfinished().empty());
}

TEST(ServiceJournal, AppendModePreservesExistingRecords) {
  const std::string path = "service_journal_append.jsonl";
  write_sample(path);
  {
    RequestJournal journal;
    journal.open(path, false);  // restart appends, header not rewritten
    journal.append_completed(3, RequestOutcome::kCompleted, 0x33ULL);
  }
  const RecoveredJournal recovered = load_journal(path);
  std::remove(path.c_str());
  EXPECT_TRUE(recovered.header_ok);
  EXPECT_EQ(recovered.accepted.size(), 3u);
  EXPECT_EQ(recovered.completed.size(), 3u);
  EXPECT_TRUE(recovered.unfinished().empty());
}

TEST(ServiceJournal, TruncationSweepNeverThrowsAndSalvagesAPrefix) {
  const std::string path = "service_journal_sweep.jsonl";
  const std::string full = write_sample(path);
  std::remove(path.c_str());
  ASSERT_FALSE(full.empty());
  const RecoveredJournal whole = recover_journal_text(full);
  ASSERT_EQ(whole.accepted.size(), 3u);
  ASSERT_EQ(whole.completed.size(), 2u);

  // Offsets just past each record's closing brace: a cut whose non-
  // whitespace content ends exactly there leaves a complete (if shorter)
  // journal; any other cut tears the record being appended.
  std::unordered_set<std::size_t> object_ends;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i] == '}') object_ends.insert(i + 1);
  }

  std::size_t previous_accepted = 0, previous_completed = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    RecoveredJournal recovered;
    ASSERT_NO_THROW(recovered = recover_journal_text(
                        std::string_view(full).substr(0, cut)))
        << "truncated at byte " << cut;
    // Prefix property: whatever survived matches the real log, record
    // for record — salvage may lose the tail, never invent or reorder.
    ASSERT_LE(recovered.accepted.size(), whole.accepted.size())
        << "truncated at byte " << cut;
    for (std::size_t i = 0; i < recovered.accepted.size(); ++i) {
      ASSERT_EQ(recovered.accepted[i].id, whole.accepted[i].id)
          << "truncated at byte " << cut;
      ASSERT_EQ(recovered.accepted[i].scenario_text, whole.accepted[i].scenario_text)
          << "truncated at byte " << cut;
    }
    ASSERT_LE(recovered.completed.size(), whole.completed.size())
        << "truncated at byte " << cut;
    for (std::size_t i = 0; i < recovered.completed.size(); ++i) {
      ASSERT_EQ(recovered.completed[i].id, whole.completed[i].id)
          << "truncated at byte " << cut;
      ASSERT_EQ(recovered.completed[i].digest, whole.completed[i].digest)
          << "truncated at byte " << cut;
    }
    // Monotone: longer prefixes never recover fewer records.
    ASSERT_GE(recovered.accepted.size(), previous_accepted)
        << "truncated at byte " << cut;
    ASSERT_GE(recovered.completed.size(), previous_completed)
        << "truncated at byte " << cut;
    previous_accepted = recovered.accepted.size();
    previous_completed = recovered.completed.size();
    // Tear detection. The journal is JSONL: a cut whose content ends at a
    // record boundary leaves a clean shorter journal (indistinguishable
    // from a crash between appends), while a cut mid-record leaves a
    // partial object — exactly what `torn` must flag.
    const std::string_view prefix = std::string_view(full).substr(0, cut);
    const std::size_t content_end = prefix.find_last_not_of(" \n\r\t") + 1;
    const bool cut_mid_record =
        content_end != 0 && object_ends.count(content_end) == 0;
    ASSERT_EQ(recovered.torn, cut_mid_record) << "truncated at byte " << cut;
  }
  EXPECT_FALSE(whole.torn);
}

TEST(ServiceJournal, GarbageIsSalvagedNotFatal) {
  for (const char* text :
       {"", "not json", "{\"schema\": 3", "[1, 2", "{\"kind\":\"accepted\"",
        "{\"schema\":\"cdsf.flight_record/1\"}\n{\"kind\":\"accepted\",\"id\":1}"}) {
    RecoveredJournal recovered;
    EXPECT_NO_THROW(recovered = recover_journal_text(text)) << text;
    EXPECT_TRUE(recovered.unfinished().empty()) << text;
  }
  // A journal whose header carries a different schema salvages nothing
  // after the header — those records belong to some other format.
  const RecoveredJournal wrong = recover_journal_text(
      "{\"schema\":\"cdsf.flight_record/1\"}\n"
      "{\"kind\":\"accepted\",\"id\":1,\"arrival\":0.5,\"seed\":2,\"scenario\":\"x\"}\n");
  EXPECT_FALSE(wrong.header_ok);
  EXPECT_TRUE(wrong.accepted.empty());
}

TEST(ServiceJournal, DigestHexRoundTripsThroughTheFile) {
  const std::string path = "service_journal_digest.jsonl";
  const std::uint64_t digest = fnv1a64("the report bytes");
  {
    RequestJournal journal;
    journal.open(path, true);
    journal.append_accepted(request(9, 0.25, "t"));
    journal.append_completed(9, RequestOutcome::kCompleted, digest);
  }
  const RecoveredJournal recovered = load_journal(path);
  std::remove(path.c_str());
  ASSERT_EQ(recovered.completed.size(), 1u);
  EXPECT_EQ(recovered.completed[0].digest, digest);
}

}  // namespace
}  // namespace cdsf::svc
