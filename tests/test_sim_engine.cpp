#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace cdsf::sim {
namespace {

TEST(Engine, DispatchesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, FifoAmongEqualTimes) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine engine;
  double seen = -1.0;
  engine.schedule_at(5.0, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, HandlersMayScheduleMoreEvents) {
  Engine engine;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  EXPECT_EQ(engine.run(), 10u);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, RejectsPastAndNonFiniteTimes) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, EventBudgetGuard) {
  Engine engine;
  std::function<void()> forever = [&] { engine.schedule_after(1.0, forever); };
  engine.schedule_at(0.0, forever);
  EXPECT_THROW(engine.run(100), std::runtime_error);
}

TEST(Engine, PendingCount) {
  Engine engine;
  EXPECT_EQ(engine.pending(), 0u);
  engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  EXPECT_EQ(engine.pending(), 2u);
  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, EmptyRunReturnsZero) {
  Engine engine;
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

}  // namespace
}  // namespace cdsf::sim
