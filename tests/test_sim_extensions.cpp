// Tests for the simulator extensions: whole-batch execution, Monte-Carlo
// phi_1 validation, Gantt rendering, and the timestep runner.
#include <gtest/gtest.h>

#include "cdsf/paper_example.hpp"
#include "sim/batch_executor.hpp"
#include "sim/gantt.hpp"
#include "sim/timestep_runner.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using core::make_paper_example;
using core::paper_naive_allocation;
using core::paper_robust_allocation;

// -------------------------------------------------------- batch executor --

TEST(BatchExecutor, SystemMakespanIsMaxOfApps) {
  const auto example = make_paper_example();
  const BatchRunResult run =
      simulate_batch(example.batch, paper_robust_allocation(), example.cases.front(),
                     dls::TechniqueId::kFAC, SimConfig{}, 5);
  ASSERT_EQ(run.app_makespans.size(), 3u);
  double expected_max = 0.0;
  for (double t : run.app_makespans) expected_max = std::max(expected_max, t);
  EXPECT_DOUBLE_EQ(run.system_makespan, expected_max);
  for (double t : run.app_makespans) EXPECT_GT(t, 0.0);
}

TEST(BatchExecutor, PerAppTechniqueVariant) {
  const auto example = make_paper_example();
  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kFAC, dls::TechniqueId::kWF, dls::TechniqueId::kAF};
  const BatchRunResult run = simulate_batch(
      example.batch, paper_robust_allocation(), example.cases.front(), techniques,
      SimConfig{}, 5);
  EXPECT_EQ(run.app_makespans.size(), 3u);
}

TEST(BatchExecutor, DeterministicGivenSeed) {
  const auto example = make_paper_example();
  const BatchRunResult a =
      simulate_batch(example.batch, paper_robust_allocation(), example.cases.front(),
                     dls::TechniqueId::kAF, SimConfig{}, 9);
  const BatchRunResult b =
      simulate_batch(example.batch, paper_robust_allocation(), example.cases.front(),
                     dls::TechniqueId::kAF, SimConfig{}, 9);
  EXPECT_EQ(a.app_makespans, b.app_makespans);
}

TEST(BatchExecutor, Validation) {
  const auto example = make_paper_example();
  EXPECT_THROW(simulate_batch(example.batch, ra::Allocation({{0, 1}}), example.cases.front(),
                              dls::TechniqueId::kFAC, SimConfig{}, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_batch(example.batch, paper_robust_allocation(), example.cases.front(),
                              std::vector<dls::TechniqueId>{dls::TechniqueId::kFAC},
                              SimConfig{}, 1),
               std::invalid_argument);
}

// --------------------------------------------------- Monte-Carlo phi_1 ----

TEST(MonteCarloPhi1, MatchesAnalyticForRobustAllocation) {
  // The headline cross-validation: the DES under the Stage-I-mirror config
  // must reproduce the analytic phi_1 = 74.5% of Table V.
  const auto example = make_paper_example();
  const MonteCarloPhi estimate = estimate_phi1(
      example.batch, paper_robust_allocation(), example.cases.front(),
      dls::TechniqueId::kStatic, stage_one_mirror_config(), 31, 4000, example.deadline);
  EXPECT_NEAR(estimate.probability, 0.745, 4.0 * estimate.standard_error + 0.01);
}

TEST(MonteCarloPhi1, MatchesAnalyticForNaiveAllocation) {
  const auto example = make_paper_example();
  const MonteCarloPhi estimate = estimate_phi1(
      example.batch, paper_naive_allocation(), example.cases.front(),
      dls::TechniqueId::kStatic, stage_one_mirror_config(), 32, 4000, example.deadline);
  EXPECT_NEAR(estimate.probability, 0.26, 4.0 * estimate.standard_error + 0.01);
}

TEST(MonteCarloPhi1, StandardErrorShrinksWithReplications) {
  const auto example = make_paper_example();
  const auto config = stage_one_mirror_config();
  const MonteCarloPhi small = estimate_phi1(example.batch, paper_robust_allocation(),
                                            example.cases.front(), dls::TechniqueId::kStatic,
                                            config, 7, 100, example.deadline);
  const MonteCarloPhi large = estimate_phi1(example.batch, paper_robust_allocation(),
                                            example.cases.front(), dls::TechniqueId::kStatic,
                                            config, 7, 1600, example.deadline);
  EXPECT_LT(large.standard_error, small.standard_error);
}

TEST(MonteCarloPhi1, ExtremeDeadlines) {
  const auto example = make_paper_example();
  const auto config = stage_one_mirror_config();
  EXPECT_DOUBLE_EQ(estimate_phi1(example.batch, paper_robust_allocation(),
                                 example.cases.front(), dls::TechniqueId::kStatic, config, 1,
                                 50, 1.0)
                       .probability,
                   0.0);
  EXPECT_DOUBLE_EQ(estimate_phi1(example.batch, paper_robust_allocation(),
                                 example.cases.front(), dls::TechniqueId::kStatic, config, 1,
                                 50, 1e9)
                       .probability,
                   1.0);
  EXPECT_THROW(estimate_phi1(example.batch, paper_robust_allocation(), example.cases.front(),
                             dls::TechniqueId::kStatic, config, 1, 0, 100.0),
               std::invalid_argument);
}

TEST(SharedGroupAvailability, StaticCostsEquationTwoOverSingleDraw) {
  // With one shared draw and zero noise, a STATIC run costs exactly
  // (s + p/n) * T / a, so the makespan lies on the support {T_par / a}.
  const auto app = test::simple_app("a", 300, 700, {1000.0}, 0.1);
  SimConfig config = stage_one_mirror_config();
  config.input_factor_cov = 0.0;  // remove input noise: support is exact
  const auto avail = sysmodel::AvailabilitySpec(
      "two", {pmf::Pmf::from_pulses({{0.5, 0.5}, {1.0, 0.5}})});
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const RunResult run =
        simulate_loop(app, 0, 2, avail, dls::TechniqueId::kStatic, config, seed);
    const double t_par = 300.0 + 350.0;  // Eq. (2)
    const bool on_support = std::fabs(run.makespan - t_par / 0.5) < 1e-6 ||
                            std::fabs(run.makespan - t_par / 1.0) < 1e-6;
    EXPECT_TRUE(on_support) << "seed=" << seed << " makespan=" << run.makespan;
  }
}

// ------------------------------------------------------------------ gantt --

TEST(Gantt, RendersOneRowPerWorkerPlusSerial) {
  const auto app = test::simple_app("a", 50, 450, {500.0});
  SimConfig config;
  config.collect_trace = true;
  const RunResult run = simulate_loop(app, 0, 4, test::full_availability(1),
                                      dls::TechniqueId::kFAC, config, 3);
  GanttOptions options;
  options.deadline = run.makespan * 0.9;
  const std::string chart = render_gantt(run, options);
  EXPECT_NE(chart.find("serial"), std::string::npos);
  EXPECT_NE(chart.find("worker 0"), std::string::npos);
  EXPECT_NE(chart.find("worker 3"), std::string::npos);
  EXPECT_NE(chart.find('='), std::string::npos);
  EXPECT_NE(chart.find('|'), std::string::npos);  // deadline marker
}

TEST(Gantt, ChunkCountsInLabels) {
  const auto app = test::simple_app("a", 0, 100, {100.0});
  SimConfig config;
  config.collect_trace = true;
  const RunResult run = simulate_loop(app, 0, 2, test::full_availability(1),
                                      dls::TechniqueId::kSS, config, 3);
  const std::string chart = render_gantt(run, GanttOptions{});
  EXPECT_NE(chart.find("chunks"), std::string::npos);
}

TEST(Gantt, Validation) {
  const auto app = test::simple_app("a", 0, 100, {100.0});
  const RunResult no_trace = simulate_loop(app, 0, 2, test::full_availability(1),
                                           dls::TechniqueId::kFAC, SimConfig{}, 3);
  EXPECT_THROW(render_gantt(no_trace, GanttOptions{}), std::invalid_argument);
  SimConfig config;
  config.collect_trace = true;
  const RunResult traced = simulate_loop(app, 0, 2, test::full_availability(1),
                                         dls::TechniqueId::kFAC, config, 3);
  GanttOptions tiny;
  tiny.width = 3;
  EXPECT_THROW(render_gantt(traced, tiny), std::invalid_argument);
}

// -------------------------------------------------------- timestep runner --

TEST(TimestepRunner, ProducesOneMakespanPerSweep) {
  const auto app = test::simple_app("a", 0, 2000, {2000.0});
  TimestepConfig config;
  config.timesteps = 5;
  const TimestepRunResult result =
      run_timesteps_awf(app, 0, 4, sysmodel::paper_case(1), config, 11);
  ASSERT_EQ(result.sweep_makespans.size(), 5u);
  double total = 0.0;
  for (double t : result.sweep_makespans) total += t;
  EXPECT_DOUBLE_EQ(result.total_time, total);
}

TEST(TimestepRunner, AwfLearnsInPersistentEnvironment) {
  // With one availability realization persisting across sweeps, AWF's
  // learned weights must make later sweeps no slower than the first.
  const auto app = test::simple_app("a", 0, 4000, {8000.0, 8000.0});
  TimestepConfig config;
  config.timesteps = 6;
  config.redraw_availability_each_step = false;
  double first_sum = 0.0;
  double later_sum = 0.0;
  std::size_t later_count = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TimestepRunResult result =
        run_timesteps_awf(app, 1, 8, sysmodel::paper_case(4), config, 500 + seed);
    first_sum += result.sweep_makespans.front();
    for (std::size_t s = 2; s < result.sweep_makespans.size(); ++s) {
      later_sum += result.sweep_makespans[s];
      ++later_count;
    }
  }
  const double first_mean = first_sum / 8.0;
  const double later_mean = later_sum / static_cast<double>(later_count);
  EXPECT_LE(later_mean, first_mean * 1.02);
}

TEST(TimestepRunner, AwfBeatsStaticBaselineInPersistentEnvironment) {
  const auto app = test::simple_app("a", 0, 4000, {8000.0, 8000.0});
  TimestepConfig config;
  config.timesteps = 6;
  config.redraw_availability_each_step = false;
  double awf_total = 0.0;
  double static_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    awf_total +=
        run_timesteps_awf(app, 1, 8, sysmodel::paper_case(4), config, 700 + seed).total_time;
    static_total += run_timesteps_baseline(app, 1, 8, sysmodel::paper_case(4),
                                           dls::TechniqueId::kStatic, config, 700 + seed)
                        .total_time;
  }
  EXPECT_LT(awf_total, static_total);
}

TEST(TimestepRunner, Validation) {
  const auto app = test::simple_app("a", 0, 100, {100.0});
  TimestepConfig config;
  config.timesteps = 0;
  EXPECT_THROW(run_timesteps_awf(app, 0, 2, sysmodel::paper_case(1), config, 1),
               std::invalid_argument);
  EXPECT_THROW(run_timesteps_baseline(app, 0, 2, sysmodel::paper_case(1),
                                      dls::TechniqueId::kFAC, config, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sim
