#include <gtest/gtest.h>

#include <cmath>

#include "sim/loop_executor.hpp"
#include "sysmodel/cases.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using test::full_availability;
using test::simple_app;

SimConfig deterministic_config() {
  SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = AvailabilityMode::kConstantMean;
  return config;
}

// ----------------------------------------------- deterministic baselines --

TEST(LoopSim, StaticOnDedicatedProcessorsMatchesEquationTwo) {
  // 300 serial + 700 parallel iterations, 1 time unit each, 4 workers:
  // serial 300, parallel 175 per worker -> makespan 475.
  const auto app = simple_app("a", 300, 700, {1000.0});
  const auto avail = full_availability(1);
  const RunResult run = simulate_loop(app, 0, 4, avail, dls::TechniqueId::kStatic,
                                      deterministic_config(), 1);
  EXPECT_NEAR(run.serial_end, 300.0, 1e-9);
  EXPECT_NEAR(run.makespan, 475.0, 1e-6);
}

TEST(LoopSim, SingleWorkerRunsSerially) {
  const auto app = simple_app("a", 100, 900, {1000.0});
  const RunResult run = simulate_loop(app, 0, 1, full_availability(1),
                                      dls::TechniqueId::kStatic, deterministic_config(), 1);
  EXPECT_NEAR(run.makespan, 1000.0, 1e-6);
}

TEST(LoopSim, HalfAvailabilityDoublesTime) {
  const auto app = simple_app("a", 0, 800, {800.0});
  sysmodel::AvailabilitySpec half("half", {pmf::Pmf::delta(0.5)});
  const RunResult run = simulate_loop(app, 0, 4, half, dls::TechniqueId::kStatic,
                                      deterministic_config(), 1);
  EXPECT_NEAR(run.makespan, 400.0, 1e-6);  // 200 iterations each at rate 0.5
}

TEST(LoopSim, AllIterationsExecutedExactlyOnce) {
  const auto app = simple_app("a", 10, 990, {1000.0});
  for (dls::TechniqueId id : dls::all_techniques()) {
    const RunResult run = simulate_loop(app, 0, 4, full_availability(1), id,
                                        deterministic_config(), 7);
    std::int64_t total = 0;
    for (const WorkerStats& w : run.workers) total += w.iterations;
    EXPECT_EQ(total, 990) << dls::technique_name(id);
  }
}

TEST(LoopSim, MakespanAtLeastSerialAndCriticalPath) {
  const auto app = simple_app("a", 200, 800, {1000.0});
  for (dls::TechniqueId id : dls::all_techniques()) {
    const RunResult run = simulate_loop(app, 0, 8, full_availability(1), id,
                                        deterministic_config(), 3);
    EXPECT_GE(run.makespan, run.serial_end) << dls::technique_name(id);
    // Lower bound: serial + perfectly balanced parallel work.
    EXPECT_GE(run.makespan, 200.0 + 100.0 - 1e-9) << dls::technique_name(id);
  }
}

TEST(LoopSim, OverheadIncreasesMakespan) {
  const auto app = simple_app("a", 0, 1000, {1000.0});
  SimConfig no_overhead = deterministic_config();
  SimConfig with_overhead = deterministic_config();
  with_overhead.scheduling_overhead = 2.0;
  const double lean = simulate_loop(app, 0, 4, full_availability(1), dls::TechniqueId::kSS,
                                    no_overhead, 5)
                          .makespan;
  const double heavy = simulate_loop(app, 0, 4, full_availability(1), dls::TechniqueId::kSS,
                                     with_overhead, 5)
                           .makespan;
  // SS dispatches one chunk per iteration: 250 chunks per worker.
  EXPECT_NEAR(heavy - lean, 250.0 * 2.0, 1.0);
}

TEST(LoopSim, SsPaysMoreOverheadThanFac) {
  const auto app = simple_app("a", 0, 1000, {1000.0});
  SimConfig config = deterministic_config();
  config.scheduling_overhead = 1.0;
  const RunResult ss = simulate_loop(app, 0, 4, full_availability(1), dls::TechniqueId::kSS,
                                     config, 5);
  const RunResult fac = simulate_loop(app, 0, 4, full_availability(1), dls::TechniqueId::kFAC,
                                      config, 5);
  EXPECT_GT(ss.total_chunks, 10 * fac.total_chunks);
  EXPECT_GT(ss.makespan, fac.makespan);
}

// --------------------------------------------------------- reproducibility --

TEST(LoopSim, DeterministicGivenSeed) {
  const auto app = simple_app("a", 50, 950, {2000.0});
  SimConfig config;  // stochastic defaults
  const auto avail = sysmodel::paper_case(1);
  const RunResult a = simulate_loop(app, 0, 4, avail, dls::TechniqueId::kAF, config, 123);
  const RunResult b = simulate_loop(app, 0, 4, avail, dls::TechniqueId::kAF, config, 123);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
}

TEST(LoopSim, DifferentSeedsDiffer) {
  const auto app = simple_app("a", 50, 950, {2000.0});
  SimConfig config;
  const auto avail = sysmodel::paper_case(1);
  const RunResult a = simulate_loop(app, 0, 4, avail, dls::TechniqueId::kFAC, config, 1);
  const RunResult b = simulate_loop(app, 0, 4, avail, dls::TechniqueId::kFAC, config, 2);
  EXPECT_NE(a.makespan, b.makespan);
}

// ----------------------------------------------------- availability modes --

TEST(LoopSim, SampleOnceMeanMatchesStageOneArithmetic) {
  // STATIC on 1 worker with sample-once availability: E[makespan] =
  // T * E[1/a]. Type-1 case-1 availability: E[1/a] = 7/6.
  const auto app = simple_app("a", 0, 1000, {1200.0});
  SimConfig config = deterministic_config();
  config.availability_mode = AvailabilityMode::kSampleOnce;
  double sum = 0.0;
  constexpr int kReps = 400;
  for (int r = 0; r < kReps; ++r) {
    sum += simulate_loop(app, 0, 1, sysmodel::paper_case(1), dls::TechniqueId::kStatic,
                         config, 1000 + r)
               .makespan;
  }
  EXPECT_NEAR(sum / kReps, 1200.0 * 7.0 / 6.0, 25.0);
}

TEST(LoopSim, IidEpochLongRunApproachesMeanRate) {
  // With epochs much shorter than the run, work completes at rate E[a].
  const auto app = simple_app("a", 0, 10000, {10000.0});
  SimConfig config = deterministic_config();
  config.availability_mode = AvailabilityMode::kIidEpoch;
  config.epoch_length = 20.0;
  const RunResult run = simulate_loop(app, 0, 1, sysmodel::paper_case(1),
                                      dls::TechniqueId::kStatic, config, 17);
  EXPECT_NEAR(run.makespan, 10000.0 / 0.875, 0.05 * 10000.0 / 0.875);
}

TEST(LoopSim, AdaptiveBeatsStaticUnderHeterogeneousAvailability) {
  // Case 4 type 2: workers persistently at {0.2, 0.8, 1.0}. STATIC is
  // hostage to the slowest worker; AF redistributes.
  const auto app = simple_app("a", 0, 4000, {8000.0, 8000.0});
  SimConfig config;
  config.iteration_cov = 0.1;
  const auto avail = sysmodel::paper_case(4);
  double static_sum = 0.0;
  double af_sum = 0.0;
  for (int r = 0; r < 10; ++r) {
    static_sum +=
        simulate_loop(app, 1, 8, avail, dls::TechniqueId::kStatic, config, 100 + r).makespan;
    af_sum += simulate_loop(app, 1, 8, avail, dls::TechniqueId::kAF, config, 100 + r).makespan;
  }
  EXPECT_LT(af_sum, static_sum);
}

// ---------------------------------------------------------------- trace --

TEST(LoopSim, TraceRecordsEveryChunk) {
  const auto app = simple_app("a", 0, 100, {100.0});
  SimConfig config = deterministic_config();
  config.collect_trace = true;
  const RunResult run = simulate_loop(app, 0, 4, full_availability(1),
                                      dls::TechniqueId::kFAC, config, 9);
  EXPECT_EQ(run.trace.size(), run.total_chunks);
  std::int64_t traced = 0;
  for (const ChunkTraceEntry& entry : run.trace) {
    EXPECT_LE(entry.dispatch_time, entry.start_time);
    EXPECT_LT(entry.start_time, entry.end_time);
    traced += entry.iterations;
  }
  EXPECT_EQ(traced, 100);
}

TEST(LoopSim, WorkerStatsAreConsistent) {
  const auto app = simple_app("a", 0, 500, {500.0});
  SimConfig config = deterministic_config();
  config.scheduling_overhead = 0.5;
  const RunResult run = simulate_loop(app, 0, 4, full_availability(1),
                                      dls::TechniqueId::kGSS, config, 4);
  for (const WorkerStats& w : run.workers) {
    EXPECT_NEAR(w.overhead_time, 0.5 * static_cast<double>(w.chunks), 1e-9);
    EXPECT_LE(w.finish_time, run.makespan + 1e-9);
  }
}

TEST(LoopSim, FinishTimeCovZeroWhenPerfectlyBalanced) {
  const auto app = simple_app("a", 0, 400, {400.0});
  const RunResult run = simulate_loop(app, 0, 4, full_availability(1),
                                      dls::TechniqueId::kStatic, deterministic_config(), 2);
  EXPECT_NEAR(run.finish_time_cov(), 0.0, 1e-9);
}

// ----------------------------------------------------------- edge cases --

TEST(LoopSim, NoParallelIterations) {
  const auto app = simple_app("a", 100, 0, {100.0});
  const RunResult run = simulate_loop(app, 0, 4, full_availability(1),
                                      dls::TechniqueId::kFAC, deterministic_config(), 1);
  EXPECT_NEAR(run.makespan, 100.0, 1e-9);
  EXPECT_EQ(run.total_chunks, 0u);
}

TEST(LoopSim, NoSerialIterations) {
  const auto app = simple_app("a", 0, 100, {100.0});
  const RunResult run = simulate_loop(app, 0, 2, full_availability(1),
                                      dls::TechniqueId::kFAC, deterministic_config(), 1);
  EXPECT_DOUBLE_EQ(run.serial_end, 0.0);
  EXPECT_NEAR(run.makespan, 50.0, 1e-6);
}

TEST(LoopSim, MoreWorkersThanIterations) {
  const auto app = simple_app("a", 0, 3, {3.0});
  const RunResult run = simulate_loop(app, 0, 8, full_availability(1),
                                      dls::TechniqueId::kSS, deterministic_config(), 1);
  std::int64_t total = 0;
  for (const WorkerStats& w : run.workers) total += w.iterations;
  EXPECT_EQ(total, 3);
}

TEST(LoopSim, Validation) {
  const auto app = simple_app("a", 0, 10, {10.0});
  const auto avail = full_availability(1);
  const SimConfig config = deterministic_config();
  EXPECT_THROW(simulate_loop(app, 0, 0, avail, dls::TechniqueId::kSS, config, 1),
               std::invalid_argument);
  EXPECT_THROW(simulate_loop(app, 5, 2, avail, dls::TechniqueId::kSS, config, 1),
               std::invalid_argument);
  SimConfig bad = config;
  bad.scheduling_overhead = -1.0;
  EXPECT_THROW(simulate_loop(app, 0, 2, avail, dls::TechniqueId::kSS, bad, 1),
               std::invalid_argument);
  bad = config;
  bad.epoch_length = 0.0;
  EXPECT_THROW(simulate_loop(app, 0, 2, avail, dls::TechniqueId::kSS, bad, 1),
               std::invalid_argument);
}

// ----------------------------------------------------------- replication --

TEST(Replication, SummaryStatisticsAreCoherent) {
  const auto app = simple_app("a", 50, 950, {2000.0});
  SimConfig config;
  const ReplicationSummary summary = simulate_replicated(
      app, 0, 4, sysmodel::paper_case(1), dls::TechniqueId::kFAC, config, 11, 20, 1e9);
  EXPECT_EQ(summary.replications, 20u);
  EXPECT_LE(summary.min_makespan, summary.mean_makespan);
  EXPECT_LE(summary.mean_makespan, summary.max_makespan);
  EXPECT_GE(summary.stddev_makespan, 0.0);
  EXPECT_DOUBLE_EQ(summary.deadline_hit_rate, 1.0);  // deadline huge
}

TEST(Replication, HitRateReflectsDeadline) {
  const auto app = simple_app("a", 0, 1000, {1000.0});
  const SimConfig config = deterministic_config();
  // Deterministic makespan = 250; deadline below it -> rate 0.
  const ReplicationSummary below = simulate_replicated(
      app, 0, 4, full_availability(1), dls::TechniqueId::kStatic, config, 1, 5, 200.0);
  EXPECT_DOUBLE_EQ(below.deadline_hit_rate, 0.0);
  const ReplicationSummary above = simulate_replicated(
      app, 0, 4, full_availability(1), dls::TechniqueId::kStatic, config, 1, 5, 300.0);
  EXPECT_DOUBLE_EQ(above.deadline_hit_rate, 1.0);
}

TEST(Replication, ZeroReplicationsThrows) {
  const auto app = simple_app("a", 0, 10, {10.0});
  EXPECT_THROW(simulate_replicated(app, 0, 2, full_availability(1), dls::TechniqueId::kSS,
                                   SimConfig{}, 1, 0, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sim
