// Straggler-tolerant Stage II: speculative chunk re-execution, the
// deadline-risk monitor, stale-probe hygiene in the MPI master, and the
// Gantt glyphs for backup / cancelled copies.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/gantt.hpp"
#include "sim/loop_executor.hpp"
#include "sim/master_worker.hpp"
#include "test_support.hpp"

namespace cdsf {
namespace {

constexpr std::int64_t kIterations = 2000;

workload::Application steady_app() {
  return test::simple_app("steady", 0, kIterations, {static_cast<double>(kIterations)});
}

/// Crash-free degraded worker: availability drops to `residual` at `time`
/// and never trips the crash detector — the scenario speculation exists for.
sim::SimConfig degrade_config(std::size_t worker, double time, double residual) {
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.collect_trace = true;
  config.failures.push_back({worker, time, residual});
  return config;
}

std::int64_t completed_iterations(const sim::RunResult& run) {
  std::int64_t total = 0;
  for (const sim::WorkerStats& worker : run.workers) total += worker.iterations;
  return total;
}

/// Exactly-once: the winning trace entries (not lost, not cancelled) must
/// tile [0, parallel) with no overlap and no hole — duplicate iterations
/// are never double-recorded, no matter how many copies ran.
void expect_exactly_once(const sim::RunResult& run, std::int64_t parallel) {
  std::vector<char> covered(static_cast<std::size_t>(parallel), 0);
  for (const sim::ChunkTraceEntry& entry : run.trace) {
    if (entry.lost || entry.cancelled) continue;
    ASSERT_GE(entry.first, 0);
    ASSERT_LE(entry.first + entry.iterations, parallel);
    for (std::int64_t i = entry.first; i < entry.first + entry.iterations; ++i) {
      EXPECT_FALSE(covered[static_cast<std::size_t>(i)]) << "iteration " << i << " twice";
      covered[static_cast<std::size_t>(i)] = 1;
    }
  }
  for (std::int64_t i = 0; i < parallel; ++i) {
    EXPECT_TRUE(covered[static_cast<std::size_t>(i)]) << "iteration " << i << " never ran";
  }
}

void expect_speculation_identity(const sim::SpeculationStats& spec,
                                 const sim::RunResult& run) {
  EXPECT_EQ(spec.backups_launched,
            spec.backups_won + spec.backups_cancelled + spec.backups_lost);
  EXPECT_LE(spec.backups_launched, spec.stragglers_flagged);
  std::uint64_t backup_entries = 0;
  for (const sim::ChunkTraceEntry& entry : run.trace) {
    if (entry.speculative) ++backup_entries;
  }
  EXPECT_EQ(spec.backups_launched, backup_entries);
}

// --------------------------------------------- idealized executor rescue --

TEST(Speculation, RescuesDegradedStragglerAcrossSeeds) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  // Degrade early: the straggler's primary copy limps for most of the run,
  // so a backup launched once the pool drains has room to overtake it.
  sim::SimConfig baseline = degrade_config(1, 50.0, 0.2);
  sim::SimConfig speculative = baseline;
  speculative.speculation.enabled = true;
  speculative.speculation.quantile = 2.0;

  for (dls::TechniqueId id : {dls::TechniqueId::kGSS, dls::TechniqueId::kFAC}) {
    double sum_base = 0.0;
    double sum_spec = 0.0;
    std::uint64_t rescues = 0;
    constexpr std::uint64_t kSeeds = 10;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const sim::RunResult base = sim::simulate_loop(app, 0, 4, full, id, baseline, seed);
      const sim::RunResult spec = sim::simulate_loop(app, 0, 4, full, id, speculative, seed);
      // Zero double-recorded iterations, with or without backups in play.
      EXPECT_EQ(completed_iterations(base), kIterations) << dls::technique_name(id);
      EXPECT_EQ(completed_iterations(spec), kIterations) << dls::technique_name(id);
      expect_exactly_once(spec, kIterations);
      expect_speculation_identity(spec.speculation, spec);
      // A crash-free degradation never touches the crash machinery.
      EXPECT_EQ(spec.faults.workers_crashed, 0u);
      EXPECT_EQ(spec.faults.chunks_lost, 0u);
      sum_base += base.makespan;
      sum_spec += spec.makespan;
      rescues += spec.speculation.backups_won;
    }
    // Under identical seeds, speculation strictly reduces the mean makespan
    // vs the re-dispatch-only baseline (which cannot help: nothing crashed).
    EXPECT_LT(sum_spec / kSeeds, sum_base / kSeeds) << dls::technique_name(id);
    EXPECT_GE(rescues, 1u) << dls::technique_name(id);
  }
}

TEST(Speculation, CancelledLoserChargesCancelledWorkNotFaults) {
  sim::SimConfig config = degrade_config(1, 50.0, 0.2);
  config.speculation.enabled = true;
  config.speculation.quantile = 2.0;
  const sim::RunResult run = sim::simulate_loop(steady_app(), 0, 4,
                                                test::full_availability(1),
                                                dls::TechniqueId::kGSS, config, 1);
  ASSERT_GE(run.speculation.backups_won, 1u);
  // The rescued primary was cancelled: its sunk work is the price of
  // speculation, accounted separately from crash waste.
  EXPECT_GE(run.speculation.primaries_cancelled, 1u);
  EXPECT_GT(run.speculation.cancelled_work, 0.0);
  EXPECT_DOUBLE_EQ(run.faults.wasted_work, 0.0);
  // Cancelled copies are visible in the trace for the gantt/obs layers.
  bool saw_cancelled = false;
  for (const sim::ChunkTraceEntry& entry : run.trace) {
    saw_cancelled = saw_cancelled || entry.cancelled;
  }
  EXPECT_TRUE(saw_cancelled);
}

TEST(Speculation, EnabledButNeverTriggeredIsBitIdenticalToDisabled) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig off = degrade_config(1, 250.0, 0.2);
  sim::SimConfig idle = off;
  idle.speculation.enabled = true;
  idle.speculation.quantile = 1e9;  // threshold beyond any chunk's lifetime
  const sim::RunResult a = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, off, 5);
  const sim::RunResult b = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, idle, 5);
  EXPECT_EQ(b.speculation.backups_launched, 0u);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace[i].end_time, b.trace[i].end_time);
  }
}

TEST(Speculation, RunsAreBitReproducible) {
  sim::SimConfig config = degrade_config(2, 200.0, 0.15);
  config.speculation.enabled = true;
  config.speculation.quantile = 1.5;
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::RunResult a = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kAF, config, 21);
  const sim::RunResult b = sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kAF, config, 21);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.speculation.backups_launched, b.speculation.backups_launched);
  EXPECT_EQ(a.speculation.backups_won, b.speculation.backups_won);
  EXPECT_DOUBLE_EQ(a.speculation.cancelled_work, b.speculation.cancelled_work);
}

TEST(Speculation, ReplicatedSummaryIsThreadCountInvariant) {
  sim::SimConfig config = degrade_config(1, 250.0, 0.2);
  config.collect_trace = false;
  config.speculation.enabled = true;
  config.speculation.quantile = 2.0;
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::ReplicationSummary one = sim::simulate_replicated(
      app, 0, 4, full, dls::TechniqueId::kFAC, config, 17, 8, 900.0, 1);
  const sim::ReplicationSummary eight = sim::simulate_replicated(
      app, 0, 4, full, dls::TechniqueId::kFAC, config, 17, 8, 900.0, 8);
  EXPECT_DOUBLE_EQ(one.mean_makespan, eight.mean_makespan);
  EXPECT_DOUBLE_EQ(one.stddev_makespan, eight.stddev_makespan);
  EXPECT_EQ(one.speculation_total.stragglers_flagged,
            eight.speculation_total.stragglers_flagged);
  EXPECT_EQ(one.speculation_total.backups_won, eight.speculation_total.backups_won);
  EXPECT_DOUBLE_EQ(one.speculation_total.cancelled_work,
                   eight.speculation_total.cancelled_work);
}

// ----------------------------------------------------- deadline-risk monitor --

TEST(Speculation, DeadlineRiskMonitorEscalatesUnderAnImpossibleDeadline) {
  sim::SimConfig config = degrade_config(1, 100.0, 0.1);
  config.speculation.enabled = true;
  config.speculation.quantile = 3.0;
  config.deadline_risk.enabled = true;
  config.deadline_risk.deadline = 300.0;  // realistic makespan is far higher
  config.deadline_risk.check_interval = 50.0;
  config.deadline_risk.risk_floor = 0.9;
  const sim::RunResult run = sim::simulate_loop(steady_app(), 0, 4,
                                                test::full_availability(1),
                                                dls::TechniqueId::kFAC, config, 9);
  EXPECT_TRUE(std::isfinite(run.makespan));
  EXPECT_EQ(completed_iterations(run), kIterations);
  EXPECT_GE(run.speculation.risk_escalations, 1u);
  bool saw_escalation_event = false;
  for (const sim::LifecycleEvent& event : run.events) {
    saw_escalation_event =
        saw_escalation_event || event.kind == sim::LifecycleEvent::Kind::kRiskEscalated;
  }
  EXPECT_TRUE(saw_escalation_event);
  expect_exactly_once(run, kIterations);
}

TEST(Speculation, DeadlineRiskWithoutSpeculationIsRejected) {
  sim::SimConfig config;
  config.deadline_risk.enabled = true;
  config.deadline_risk.deadline = 100.0;
  EXPECT_THROW(sim::simulate_loop(steady_app(), 0, 4, test::full_availability(1),
                                  dls::TechniqueId::kFAC, config, 1),
               std::invalid_argument);
}

TEST(Speculation, KnobsOutOfDomainAreRejected) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig config;
  config.speculation.enabled = true;
  config.speculation.quantile = 0.0;
  EXPECT_THROW(sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 1),
               std::invalid_argument);
  config = sim::SimConfig{};
  config.speculation.min_quantile = 5.0;  // above quantile
  EXPECT_THROW(sim::simulate_loop(app, 0, 4, full, dls::TechniqueId::kFAC, config, 1),
               std::invalid_argument);
}

// ------------------------------------------------------------- MPI executor --

TEST(Speculation, MpiRescuesDegradedStragglerAcrossSeeds) {
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  sim::SimConfig baseline = degrade_config(1, 50.0, 0.2);
  sim::SimConfig speculative = baseline;
  speculative.speculation.enabled = true;
  speculative.speculation.quantile = 2.0;

  double sum_base = 0.0;
  double sum_spec = 0.0;
  std::uint64_t rescues = 0;
  constexpr std::uint64_t kSeeds = 10;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const sim::MpiRunResult base = sim::simulate_loop_mpi(
        app, 0, 4, full, dls::TechniqueId::kGSS, baseline, sim::MessageModel{}, seed);
    const sim::MpiRunResult spec = sim::simulate_loop_mpi(
        app, 0, 4, full, dls::TechniqueId::kGSS, speculative, sim::MessageModel{}, seed);
    EXPECT_EQ(completed_iterations(base.run), kIterations);
    EXPECT_EQ(completed_iterations(spec.run), kIterations);
    expect_exactly_once(spec.run, kIterations);
    expect_speculation_identity(spec.run.speculation, spec.run);
    sum_base += base.run.makespan;
    sum_spec += spec.run.makespan;
    rescues += spec.run.speculation.backups_won;
  }
  EXPECT_LT(sum_spec / kSeeds, sum_base / kSeeds);
  EXPECT_GE(rescues, 1u);
}

TEST(Speculation, MpiRunsAreBitReproducible) {
  sim::SimConfig config = degrade_config(1, 250.0, 0.2);
  config.speculation.enabled = true;
  config.speculation.quantile = 2.0;
  const workload::Application app = steady_app();
  const sysmodel::AvailabilitySpec full = test::full_availability(1);
  const sim::MpiRunResult a = sim::simulate_loop_mpi(
      app, 0, 4, full, dls::TechniqueId::kGSS, config, sim::MessageModel{}, 23);
  const sim::MpiRunResult b = sim::simulate_loop_mpi(
      app, 0, 4, full, dls::TechniqueId::kGSS, config, sim::MessageModel{}, 23);
  EXPECT_DOUBLE_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.speculation.backups_launched, b.run.speculation.backups_launched);
  EXPECT_EQ(a.run.speculation.backups_won, b.run.speculation.backups_won);
}

// Regression: aggressive timeouts make the master suspect ALIVE workers.
// The probe guard must treat probes for an already-resolved assignment as
// stale no-ops, late reports must reinstate the worker, and the reclaimed
// (falsely-suspected) copy's trace entry must drop out of the delivered
// set — exactly-once coverage holds even when detection misfires.
TEST(Speculation, MpiStaleProbesAndFalseSuspicionsKeepExactlyOnce) {
  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.collect_trace = true;
  sim::SimConfig::Failure crash;
  crash.worker = 3;
  crash.time = 300.0;
  crash.kind = sim::SimConfig::FailureKind::kCrash;
  config.failures.push_back(crash);
  // Timeouts far below the true chunk round trip: healthy workers get
  // probed and declared dead long before their reports arrive.
  config.fault_detection.timeout_factor = 0.05;
  config.fault_detection.min_timeout = 0.1;
  config.fault_detection.backoff = 1.5;
  config.fault_detection.max_probes = 2;

  const sim::MpiRunResult result = sim::simulate_loop_mpi(
      steady_app(), 0, 4, test::full_availability(1), dls::TechniqueId::kFAC, config,
      sim::MessageModel{}, 31);
  EXPECT_TRUE(std::isfinite(result.run.makespan));
  EXPECT_EQ(completed_iterations(result.run), kIterations);
  EXPECT_GE(result.run.faults.false_suspicions, 1u);
  expect_exactly_once(result.run, kIterations);
  bool reinstated = false;
  for (const sim::LifecycleEvent& event : result.run.events) {
    reinstated =
        reinstated || event.kind == sim::LifecycleEvent::Kind::kWorkerReinstated;
  }
  EXPECT_TRUE(reinstated);

  const sim::MpiRunResult again = sim::simulate_loop_mpi(
      steady_app(), 0, 4, test::full_availability(1), dls::TechniqueId::kFAC, config,
      sim::MessageModel{}, 31);
  EXPECT_DOUBLE_EQ(result.run.makespan, again.run.makespan);
  EXPECT_EQ(result.run.faults.false_suspicions, again.run.faults.false_suspicions);
}

// ---------------------------------------------------------------- gantt --

TEST(Speculation, GanttRendersDistinctGlyphsForBackupAndCancelledCopies) {
  sim::RunResult result;
  result.makespan = 100.0;
  result.serial_end = 0.0;
  result.workers.resize(4);
  // Primary on worker 0 cancelled at t=60 after the backup on worker 1 won.
  result.trace.push_back({0, 50, 0.0, 1.0, 60.0, false, 0, false, true});
  result.trace.push_back({1, 50, 30.0, 31.0, 60.0, false, 0, true, false});
  // Ordinary chunk on worker 2; lost chunk on worker 3.
  result.trace.push_back({2, 50, 0.0, 1.0, 90.0, false, 50, false, false});
  result.trace.push_back({3, 50, 0.0, 1.0, 100.0, true, 100, false, false});

  const std::string gantt = sim::render_gantt(result, sim::GanttOptions{});
  EXPECT_NE(gantt.find('~'), std::string::npos);  // backup fill
  EXPECT_NE(gantt.find('<'), std::string::npos);  // backup boundary
  EXPECT_NE(gantt.find('-'), std::string::npos);  // cancelled fill
  EXPECT_NE(gantt.find('/'), std::string::npos);  // cancelled boundary
  EXPECT_NE(gantt.find('x'), std::string::npos);  // lost fill
  EXPECT_NE(gantt.find("speculative backup"), std::string::npos);
  EXPECT_NE(gantt.find("cancelled after the other copy"), std::string::npos);
}

TEST(Speculation, GanttOmitsSpeculationLegendWhenNothingSpeculated) {
  sim::RunResult result;
  result.makespan = 10.0;
  result.workers.resize(1);
  result.trace.push_back({0, 10, 0.0, 1.0, 10.0, false, 0, false, false});
  const std::string gantt = sim::render_gantt(result, sim::GanttOptions{});
  EXPECT_EQ(gantt.find("speculative backup"), std::string::npos);
  EXPECT_EQ(gantt.find("cancelled after"), std::string::npos);
}

}  // namespace
}  // namespace cdsf
