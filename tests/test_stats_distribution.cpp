#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/distribution.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace cdsf::stats {
namespace {

// -------------------------------------------------- special functions ----

TEST(SpecialFunctions, StandardNormalCdfKnownValues) {
  EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(standard_normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(standard_normal_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(SpecialFunctions, QuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(standard_normal_cdf(standard_normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(SpecialFunctions, QuantileEdges) {
  EXPECT_TRUE(std::isinf(standard_normal_quantile(0.0)));
  EXPECT_TRUE(std::isinf(standard_normal_quantile(1.0)));
  EXPECT_LT(standard_normal_quantile(0.0), 0.0);
  EXPECT_GT(standard_normal_quantile(1.0), 0.0);
  EXPECT_THROW(standard_normal_quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(standard_normal_quantile(1.1), std::invalid_argument);
}

TEST(SpecialFunctions, RegularizedGammaPMatchesExponential) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10) << "x=" << x;
  }
}

TEST(SpecialFunctions, RegularizedGammaPBoundsAndMonotone) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.5, 0.0), 0.0);
  double prev = 0.0;
  for (double x = 0.25; x < 20.0; x += 0.25) {
    const double p = regularized_gamma_p(2.5, x);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 1e-6);
}

// -------------------------------------------------------- shared checks --

void check_distribution_consistency(const Distribution& dist, double lo, double hi) {
  // CDF is nondecreasing and pdf integrates (roughly) to CDF differences.
  double prev_cdf = dist.cdf(lo);
  const int kSteps = 200;
  const double step = (hi - lo) / kSteps;
  for (int i = 1; i <= kSteps; ++i) {
    const double x = lo + i * step;
    const double c = dist.cdf(x);
    EXPECT_GE(c, prev_cdf - 1e-12) << dist.name() << " at x=" << x;
    // Midpoint rule on the density against the CDF increment.
    const double mid_density = dist.pdf(x - 0.5 * step);
    EXPECT_NEAR(c - prev_cdf, mid_density * step, 0.02 * std::max(1e-3, mid_density * step) + 1e-4)
        << dist.name() << " at x=" << x;
    prev_cdf = c;
  }
}

void check_quantile_roundtrip(const Distribution& dist) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist.quantile(p);
    EXPECT_NEAR(dist.cdf(x), p, 1e-6) << dist.name() << " p=" << p;
  }
}

void check_sampling_matches_cdf(const Distribution& dist, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<double> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) sample.push_back(dist.sample(rng));
  const double ks = ks_distance(sample, [&](double x) { return dist.cdf(x); });
  // KS 99.9% critical value ~ 1.95 / sqrt(n) ~ 0.0138 at n = 20000.
  EXPECT_LT(ks, 0.015) << dist.name();
}

void check_moments_match_sample(const Distribution& dist, std::uint64_t seed) {
  util::RngStream rng(seed);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = dist.sample(rng);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, dist.mean(), 5.0 * std::sqrt(dist.variance() / kDraws) + 1e-9)
      << dist.name();
  EXPECT_NEAR(var, dist.variance(), 0.1 * dist.variance() + 1e-9) << dist.name();
}

// --------------------------------------------------------------- Normal --

TEST(Normal, MomentsAndName) {
  const Normal dist(10.0, 2.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 10.0);
  EXPECT_DOUBLE_EQ(dist.variance(), 4.0);
  EXPECT_EQ(dist.name(), "Normal(10, 2)");
}

TEST(Normal, RejectsBadStddev) {
  EXPECT_THROW(Normal(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Normal(0.0, -1.0), std::invalid_argument);
}

TEST(Normal, CdfPdfConsistent) { check_distribution_consistency(Normal(5.0, 1.5), 0.0, 10.0); }
TEST(Normal, QuantileRoundtrip) { check_quantile_roundtrip(Normal(5.0, 1.5)); }
TEST(Normal, SamplingMatchesCdf) { check_sampling_matches_cdf(Normal(5.0, 1.5), 11); }
TEST(Normal, SampleMoments) { check_moments_match_sample(Normal(5.0, 1.5), 12); }

TEST(Normal, CloneIsIndependentCopy) {
  const Normal dist(1.0, 1.0);
  const std::unique_ptr<Distribution> copy = dist.clone();
  EXPECT_EQ(copy->name(), dist.name());
  EXPECT_DOUBLE_EQ(copy->mean(), dist.mean());
}

// ------------------------------------------------------------ LogNormal --

TEST(LogNormal, FromMeanStddevMatchesMoments) {
  const LogNormal dist = LogNormal::from_mean_stddev(100.0, 25.0);
  EXPECT_NEAR(dist.mean(), 100.0, 1e-9);
  EXPECT_NEAR(std::sqrt(dist.variance()), 25.0, 1e-9);
}

TEST(LogNormal, SupportIsPositive) {
  const LogNormal dist(0.0, 1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
}

TEST(LogNormal, CdfPdfConsistent) { check_distribution_consistency(LogNormal(0.0, 0.5), 0.2, 5.0); }
TEST(LogNormal, QuantileRoundtrip) { check_quantile_roundtrip(LogNormal(0.0, 0.5)); }
TEST(LogNormal, SamplingMatchesCdf) { check_sampling_matches_cdf(LogNormal(0.0, 0.5), 13); }
TEST(LogNormal, SampleMoments) { check_moments_match_sample(LogNormal(0.0, 0.5), 14); }

// ---------------------------------------------------------------- Gamma --

TEST(Gamma, FromMeanStddevMatchesMoments) {
  const Gamma dist = Gamma::from_mean_stddev(40.0, 10.0);
  EXPECT_NEAR(dist.mean(), 40.0, 1e-9);
  EXPECT_NEAR(std::sqrt(dist.variance()), 10.0, 1e-9);
}

TEST(Gamma, RejectsBadParameters) {
  EXPECT_THROW(Gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Gamma(1.0, 0.0), std::invalid_argument);
}

TEST(Gamma, CdfPdfConsistent) { check_distribution_consistency(Gamma(3.0, 2.0), 0.2, 20.0); }
TEST(Gamma, QuantileRoundtrip) { check_quantile_roundtrip(Gamma(3.0, 2.0)); }
TEST(Gamma, SamplingMatchesCdf) { check_sampling_matches_cdf(Gamma(3.0, 2.0), 15); }
TEST(Gamma, SampleMoments) { check_moments_match_sample(Gamma(3.0, 2.0), 16); }

// ---------------------------------------------------------- Exponential --

TEST(Exponential, KnownCdf) {
  const Exponential dist(2.0);
  EXPECT_NEAR(dist.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(dist.cdf(-1.0), 0.0);
}

TEST(Exponential, QuantileClosedForm) {
  const Exponential dist(0.5);
  EXPECT_NEAR(dist.quantile(0.5), std::log(2.0) / 0.5, 1e-12);
}

TEST(Exponential, CdfPdfConsistent) { check_distribution_consistency(Exponential(1.5), 0.05, 4.0); }
TEST(Exponential, SamplingMatchesCdf) { check_sampling_matches_cdf(Exponential(1.5), 17); }
TEST(Exponential, SampleMoments) { check_moments_match_sample(Exponential(1.5), 18); }

// -------------------------------------------------------------- Uniform --

TEST(Uniform, MomentsAndSupport) {
  const Uniform dist(2.0, 6.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
  EXPECT_NEAR(dist.variance(), 16.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(7.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 3.0);
}

TEST(Uniform, RejectsInvertedRange) { EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument); }

TEST(Uniform, SamplingMatchesCdf) { check_sampling_matches_cdf(Uniform(2.0, 6.0), 19); }

// -------------------------------------------------------------- Weibull --

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull weibull(1.0, 2.0);
  const Exponential exponential(0.5);
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(weibull.cdf(x), exponential.cdf(x), 1e-12);
  }
}

TEST(Weibull, CdfPdfConsistent) { check_distribution_consistency(Weibull(2.0, 3.0), 0.1, 9.0); }
TEST(Weibull, QuantileRoundtrip) { check_quantile_roundtrip(Weibull(2.0, 3.0)); }
TEST(Weibull, SamplingMatchesCdf) { check_sampling_matches_cdf(Weibull(2.0, 3.0), 20); }
TEST(Weibull, SampleMoments) { check_moments_match_sample(Weibull(2.0, 3.0), 21); }

}  // namespace
}  // namespace cdsf::stats
