#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace cdsf::stats {
namespace {

// -------------------------------------------------------- OnlineSummary --

TEST(OnlineSummary, EmptyState) {
  OnlineSummary summary;
  EXPECT_TRUE(summary.empty());
  EXPECT_DOUBLE_EQ(summary.count(), 0.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
}

TEST(OnlineSummary, SingleObservation) {
  OnlineSummary summary;
  summary.add(4.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 4.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
  EXPECT_DOUBLE_EQ(summary.min(), 4.0);
  EXPECT_DOUBLE_EQ(summary.max(), 4.0);
}

TEST(OnlineSummary, MeanAndPopulationVariance) {
  OnlineSummary summary;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) summary.add(x);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 4.0);  // classic example
  EXPECT_DOUBLE_EQ(summary.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(summary.cov(), 0.4);
}

TEST(OnlineSummary, WeightedAddMatchesRepeats) {
  OnlineSummary weighted;
  weighted.add(3.0, 5.0);
  weighted.add(7.0, 2.0);
  OnlineSummary repeated;
  for (int i = 0; i < 5; ++i) repeated.add(3.0);
  for (int i = 0; i < 2; ++i) repeated.add(7.0);
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
  EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-12);
}

TEST(OnlineSummary, ZeroWeightIgnored) {
  OnlineSummary summary;
  summary.add(1.0);
  summary.add(100.0, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 1.0);
  EXPECT_DOUBLE_EQ(summary.count(), 1.0);
}

TEST(OnlineSummary, MergeMatchesSequential) {
  OnlineSummary left;
  OnlineSummary right;
  OnlineSummary all;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.7 - 3.0;
    (i < 5 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineSummary, MergeWithEmptyIsNoop) {
  OnlineSummary summary;
  summary.add(2.0);
  summary.merge(OnlineSummary{});
  EXPECT_DOUBLE_EQ(summary.mean(), 2.0);
  OnlineSummary empty;
  empty.merge(summary);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineSummary, CovZeroWhenMeanZero) {
  OnlineSummary summary;
  summary.add(-1.0);
  summary.add(1.0);
  EXPECT_DOUBLE_EQ(summary.cov(), 0.0);
}

// ------------------------------------------------------ batch statistics --

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(sample, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 0.5), 3.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(BatchStats, MeanAndStddev) {
  const std::vector<double> sample = {2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(sample), 4.0);
  EXPECT_DOUBLE_EQ(stddev_of(sample), 2.0);  // sample stddev (n-1)
  EXPECT_DOUBLE_EQ(stddev_of({7.0}), 0.0);
  EXPECT_THROW(mean_of({}), std::invalid_argument);
}

// ------------------------------------------------------------ Histogram --

TEST(Histogram, BinsCountsAndFractions) {
  Histogram histogram(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9}) histogram.add(x);
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(histogram.count(1), 2u);
  EXPECT_EQ(histogram.count(9), 1u);
  EXPECT_DOUBLE_EQ(histogram.fraction(1), 0.5);
  EXPECT_EQ(histogram.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram histogram(0.0, 1.0, 2);
  histogram.add(-0.1);
  histogram.add(1.0);  // hi is exclusive
  histogram.add(0.5);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 1u);
  EXPECT_EQ(histogram.total(), 3u);
}

TEST(Histogram, BinCenters) {
  Histogram histogram(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(histogram.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.bin_center(4), 9.0);
  EXPECT_THROW(histogram.bin_center(5), std::out_of_range);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

// --------------------------------------------------------------- KS ----

TEST(KsDistance, PerfectUniformSampleIsSmall) {
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back((i + 0.5) / 1000.0);
  EXPECT_LT(ks_distance(sample, [](double x) { return std::clamp(x, 0.0, 1.0); }), 0.001);
}

TEST(KsDistance, DetectsWrongDistribution) {
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back((i + 0.5) / 1000.0);
  // Claim the sample is Uniform(0, 2): half the mass is missing.
  const double ks = ks_distance(sample, [](double x) { return std::clamp(x / 2.0, 0.0, 1.0); });
  EXPECT_GT(ks, 0.45);
}

TEST(KsDistance, EmptySampleThrows) {
  EXPECT_THROW(ks_distance({}, [](double) { return 0.5; }), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::stats
