// Shared factories for the test suite.
#pragma once

#include "pmf/pmf.hpp"
#include "sysmodel/availability.hpp"
#include "sysmodel/platform.hpp"
#include "workload/application.hpp"

namespace cdsf::test {

/// Two-type platform mirroring the paper's (4 x type1, 8 x type2).
inline sysmodel::Platform small_platform() {
  return sysmodel::Platform({{"type1", 4}, {"type2", 8}});
}

/// A fully available spec for `types` processor types.
inline sysmodel::AvailabilitySpec full_availability(std::size_t types) {
  std::vector<pmf::Pmf> laws(types, pmf::Pmf::delta(1.0));
  return sysmodel::AvailabilitySpec("full", std::move(laws));
}

/// One application: 10% serial, Normal time laws with means per type.
inline workload::Application simple_app(const std::string& name, std::int64_t serial,
                                        std::int64_t parallel,
                                        std::vector<double> means, double cov = 0.1) {
  std::vector<workload::TimeLaw> laws;
  laws.reserve(means.size());
  for (double mean : means) {
    laws.push_back(workload::TimeLaw{workload::TimeLawKind::kNormal, mean, cov});
  }
  return workload::Application(name, serial, parallel, std::move(laws));
}

}  // namespace cdsf::test
