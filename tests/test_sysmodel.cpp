#include <gtest/gtest.h>

#include <cmath>

#include "sysmodel/availability.hpp"
#include "sysmodel/cases.hpp"
#include "sysmodel/platform.hpp"

namespace cdsf::sysmodel {
namespace {

// --------------------------------------------------------------- Platform --

TEST(Platform, CountsAndNames) {
  const Platform platform = paper_platform();
  EXPECT_EQ(platform.type_count(), 2u);
  EXPECT_EQ(platform.processors_of_type(0), 4u);
  EXPECT_EQ(platform.processors_of_type(1), 8u);
  EXPECT_EQ(platform.total_processors(), 12u);
  EXPECT_EQ(platform.type(0).name, "type1");
}

TEST(Platform, Validation) {
  EXPECT_THROW(Platform({}), std::invalid_argument);
  EXPECT_THROW(Platform({{"empty", 0}}), std::invalid_argument);
}

// ------------------------------------------------------- AvailabilitySpec --

TEST(AvailabilitySpec, PaperCase1Expectations) {
  const AvailabilitySpec spec = paper_case(1);
  EXPECT_NEAR(spec.expected(0), 0.875, 1e-12);   // Table I: 87.50
  EXPECT_NEAR(spec.expected(1), 0.6875, 1e-12);  // Table I: 68.75
  EXPECT_NEAR(spec.weighted_system_availability(paper_platform()), 0.75, 1e-12);
}

TEST(AvailabilitySpec, PaperCase2Expectations) {
  const AvailabilitySpec spec = paper_case(2);
  EXPECT_NEAR(spec.expected(0), 0.525, 1e-12);
  EXPECT_NEAR(spec.expected(1), 0.5455, 1e-10);
  EXPECT_NEAR(spec.weighted_system_availability(paper_platform()), 0.5387, 1e-4);
}

TEST(AvailabilitySpec, PaperCase4Expectations) {
  const AvailabilitySpec spec = paper_case(4);
  EXPECT_NEAR(spec.expected(0), 0.4125, 1e-12);
  EXPECT_NEAR(spec.expected(1), 0.55, 1e-12);
  EXPECT_NEAR(spec.weighted_system_availability(paper_platform()), 0.5042, 1e-4);
}

TEST(AvailabilitySpec, DecreasesMatchTableOneBrackets) {
  const Platform platform = paper_platform();
  const AvailabilitySpec reference = paper_case(1);
  // Bracketed values of Table I: 28.17%, ~30.8%, 32.77% (case 3 published
  // as 30.77% from unrounded inputs; rounded inputs give 30.89%).
  EXPECT_NEAR(availability_decrease(reference, paper_case(2), platform), 0.2817, 1e-3);
  EXPECT_NEAR(availability_decrease(reference, paper_case(3), platform), 0.308, 2e-3);
  EXPECT_NEAR(availability_decrease(reference, paper_case(4), platform), 0.3277, 1e-3);
}

TEST(AvailabilitySpec, CasesAreOrderedByWeightedAvailability) {
  const Platform platform = paper_platform();
  const auto cases = paper_cases();
  for (std::size_t k = 1; k < cases.size(); ++k) {
    EXPECT_LT(cases[k].weighted_system_availability(platform),
              cases[k - 1].weighted_system_availability(platform));
  }
}

TEST(AvailabilitySpec, Validation) {
  EXPECT_THROW(AvailabilitySpec("x", {}), std::invalid_argument);
  EXPECT_THROW(AvailabilitySpec("x", {pmf::Pmf::delta(0.0)}), std::invalid_argument);
  EXPECT_THROW(AvailabilitySpec("x", {pmf::Pmf::delta(1.5)}), std::invalid_argument);
  const AvailabilitySpec ok("ok", {pmf::Pmf::delta(1.0)});
  EXPECT_THROW(ok.weighted_system_availability(paper_platform()), std::invalid_argument);
  EXPECT_THROW(paper_case(0), std::invalid_argument);
  EXPECT_THROW(paper_case(5), std::invalid_argument);
}

// ---------------------------------------------------- ConstantAvailability --

TEST(ConstantAvailability, FinishTimeScalesWork) {
  ConstantAvailability half(0.5);
  EXPECT_DOUBLE_EQ(half.availability_at(123.0), 0.5);
  EXPECT_DOUBLE_EQ(half.finish_time(10.0, 5.0), 20.0);
  EXPECT_TRUE(std::isinf(half.next_change_after(0.0)));
}

TEST(ConstantAvailability, Validation) {
  EXPECT_THROW(ConstantAvailability(0.0), std::invalid_argument);
  EXPECT_THROW(ConstantAvailability(1.01), std::invalid_argument);
  EXPECT_NO_THROW(ConstantAvailability(1.0));
}

TEST(AvailabilityProcess, WorkDeliveredInvertsFinishTime) {
  ConstantAvailability a(0.75);
  const double end = a.finish_time(3.0, 6.0);
  EXPECT_NEAR(a.work_delivered(3.0, end), 6.0, 1e-12);
  EXPECT_THROW(a.work_delivered(5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(a.finish_time(0.0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------- IidEpochAvailability --

TEST(IidEpoch, PiecewiseConstantWithinEpoch) {
  IidEpochAvailability process(paper_case(1).of_type(1), 100.0, 42);
  const double a0 = process.availability_at(0.0);
  EXPECT_DOUBLE_EQ(process.availability_at(50.0), a0);
  EXPECT_DOUBLE_EQ(process.availability_at(99.999), a0);
  EXPECT_DOUBLE_EQ(process.next_change_after(50.0), 100.0);
}

TEST(IidEpoch, DeterministicAndSeedSensitive) {
  const pmf::Pmf law = paper_case(1).of_type(1);
  IidEpochAvailability a(law, 10.0, 7);
  IidEpochAvailability b(law, 10.0, 7);
  IidEpochAvailability c(law, 10.0, 8);
  bool differs = false;
  for (int e = 0; e < 50; ++e) {
    const double t = e * 10.0 + 1.0;
    EXPECT_DOUBLE_EQ(a.availability_at(t), b.availability_at(t));
    if (a.availability_at(t) != c.availability_at(t)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(IidEpoch, MarginalMatchesLawLongRun) {
  const pmf::Pmf law = paper_case(1).of_type(1);  // {0.75: .5, 1.0: .5}
  IidEpochAvailability process(law, 1.0, 11);
  double sum = 0.0;
  constexpr int kEpochs = 20000;
  for (int e = 0; e < kEpochs; ++e) sum += process.availability_at(e + 0.5);
  EXPECT_NEAR(sum / kEpochs, law.expectation(), 0.005);
}

TEST(IidEpoch, ValuesComeFromSupport) {
  const pmf::Pmf law = paper_case(4).of_type(0);  // {0.33, 0.66}
  IidEpochAvailability process(law, 5.0, 3);
  for (int e = 0; e < 100; ++e) {
    const double a = process.availability_at(e * 5.0 + 0.1);
    EXPECT_TRUE(std::fabs(a - 0.33) < 1e-12 || std::fabs(a - 0.66) < 1e-12);
  }
}

TEST(IidEpoch, FinishTimeIntegratesAcrossEpochs) {
  IidEpochAvailability process(paper_case(1).of_type(0), 10.0, 9);
  const double end = process.finish_time(0.0, 40.0);
  // Work delivered in [0, end] must equal the requested work.
  EXPECT_NEAR(process.work_delivered(0.0, end), 40.0, 1e-9);
  EXPECT_GE(end, 40.0);   // availability <= 1
  EXPECT_LE(end, 60.0);   // availability >= 0.75 in case 1 / type 1
}

TEST(IidEpoch, QueriesMayGoBackward) {
  IidEpochAvailability process(paper_case(1).of_type(1), 10.0, 13);
  const double late = process.availability_at(1000.0);
  const double early = process.availability_at(5.0);
  EXPECT_DOUBLE_EQ(process.availability_at(1000.0), late);  // cached, stable
  EXPECT_DOUBLE_EQ(process.availability_at(5.0), early);
}

TEST(IidEpoch, Validation) {
  const pmf::Pmf law = paper_case(1).of_type(0);
  EXPECT_THROW(IidEpochAvailability(law, 0.0, 1), std::invalid_argument);
  IidEpochAvailability process(law, 1.0, 1);
  EXPECT_THROW(process.availability_at(-1.0), std::invalid_argument);
}

// -------------------------------------------------- MarkovEpochAvailability --

TEST(MarkovEpoch, ZeroPersistenceBehavesLikeIid) {
  const pmf::Pmf law = paper_case(1).of_type(1);
  MarkovEpochAvailability process(law, 1.0, 0.0, 21);
  double sum = 0.0;
  constexpr int kEpochs = 20000;
  for (int e = 0; e < kEpochs; ++e) sum += process.availability_at(e + 0.5);
  EXPECT_NEAR(sum / kEpochs, law.expectation(), 0.005);
}

TEST(MarkovEpoch, HighPersistenceRepeatsValues) {
  const pmf::Pmf law = paper_case(1).of_type(1);
  MarkovEpochAvailability process(law, 1.0, 0.95, 22);
  int changes = 0;
  double prev = process.availability_at(0.5);
  for (int e = 1; e < 2000; ++e) {
    const double a = process.availability_at(e + 0.5);
    if (a != prev) ++changes;
    prev = a;
  }
  // With persistence 0.95 and a 2-point law, changes per epoch = 0.05 * 0.5.
  EXPECT_LT(changes, 150);
  EXPECT_GT(changes, 10);
}

TEST(MarkovEpoch, Validation) {
  const pmf::Pmf law = paper_case(1).of_type(0);
  EXPECT_THROW(MarkovEpochAvailability(law, 1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(MarkovEpochAvailability(law, 1.0, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(MarkovEpochAvailability(law, 0.0, 0.5, 1), std::invalid_argument);
}

// -------------------------------------------------------- TraceAvailability --

TEST(Trace, StepsAtGivenTimes) {
  TraceAvailability trace({0.0, 10.0, 20.0}, {1.0, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(trace.availability_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.availability_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(trace.availability_at(10.0), 0.5);
  EXPECT_DOUBLE_EQ(trace.availability_at(1000.0), 0.25);
  EXPECT_DOUBLE_EQ(trace.next_change_after(0.0), 10.0);
  EXPECT_DOUBLE_EQ(trace.next_change_after(10.0), 20.0);
  EXPECT_TRUE(std::isinf(trace.next_change_after(20.0)));
}

TEST(Trace, FinishTimeCrossesSteps) {
  TraceAvailability trace({0.0, 10.0}, {1.0, 0.5});
  // 15 units of work: 10 delivered in [0, 10], remaining 5 at rate 0.5.
  EXPECT_DOUBLE_EQ(trace.finish_time(0.0, 15.0), 20.0);
}

TEST(Trace, Validation) {
  EXPECT_THROW(TraceAvailability({}, {}), std::invalid_argument);
  EXPECT_THROW(TraceAvailability({1.0}, {0.5}), std::invalid_argument);        // must start at 0
  EXPECT_THROW(TraceAvailability({0.0, 0.0}, {0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(TraceAvailability({0.0}, {0.0}), std::invalid_argument);        // value > 0
  EXPECT_THROW(TraceAvailability({0.0}, {0.5, 0.6}), std::invalid_argument);   // size mismatch
}

// ----------------------------------------------------- FailingAvailability --

TEST(Failing, FailureAtTimeZeroIsResidualFromTheStart) {
  FailingAvailability process(std::make_unique<ConstantAvailability>(1.0), 0.0, 0.25);
  EXPECT_DOUBLE_EQ(process.availability_at(0.0), 0.25);
  EXPECT_DOUBLE_EQ(process.availability_at(100.0), 0.25);
  EXPECT_DOUBLE_EQ(process.finish_time(0.0, 1.0), 4.0);
}

TEST(Failing, ResidualExactlyOneIsAccepted) {
  // residual = 1.0 sits ON the boundary of (0, 1]: a "failure" to full
  // availability is legal (and a no-op once the inner process is constant).
  FailingAvailability process(std::make_unique<ConstantAvailability>(0.5), 10.0, 1.0);
  EXPECT_DOUBLE_EQ(process.availability_at(9.9), 0.5);
  EXPECT_DOUBLE_EQ(process.availability_at(10.0), 1.0);
}

TEST(Failing, TinyResidualStillDeliversWork) {
  // The lower boundary is open: any residual > 0 keeps the work integral
  // finite (this is what distinguishes degrade from crash).
  FailingAvailability process(std::make_unique<ConstantAvailability>(1.0), 1.0, 1e-9);
  const double finish = process.finish_time(0.0, 2.0);
  EXPECT_TRUE(std::isfinite(finish));
  EXPECT_NEAR(process.work_delivered(0.0, finish), 2.0, 1e-9);
}

TEST(Failing, RejectsResidualOutsideUnitInterval) {
  EXPECT_THROW(FailingAvailability(std::make_unique<ConstantAvailability>(1.0), 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(FailingAvailability(std::make_unique<ConstantAvailability>(1.0), 1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(FailingAvailability(std::make_unique<ConstantAvailability>(1.0), 1.0, 1.1),
               std::invalid_argument);
}

// ---------------------------------------------------- CrashingAvailability --

TEST(Crashing, PermanentCrashDeliversNothingAfterCrashTime) {
  CrashingAvailability process(std::make_unique<ConstantAvailability>(1.0), 5.0);
  EXPECT_DOUBLE_EQ(process.availability_at(4.999), 1.0);
  EXPECT_DOUBLE_EQ(process.availability_at(5.0), 0.0);
  EXPECT_FALSE(process.is_down(4.999));
  EXPECT_TRUE(process.is_down(5.0));
  EXPECT_TRUE(std::isinf(process.recovery_time()));
  // Work that cannot complete before the crash never completes.
  EXPECT_DOUBLE_EQ(process.finish_time(0.0, 5.0), 5.0);
  EXPECT_TRUE(std::isinf(process.finish_time(0.0, 5.0 + 1e-9)));
  EXPECT_DOUBLE_EQ(process.work_delivered(0.0, 100.0), 5.0);
}

TEST(Crashing, RecoveryResumesTheInnerProcess) {
  CrashingAvailability process(std::make_unique<ConstantAvailability>(0.5), 10.0, 20.0);
  EXPECT_DOUBLE_EQ(process.availability_at(15.0), 0.0);
  EXPECT_DOUBLE_EQ(process.availability_at(20.0), 0.5);
  EXPECT_FALSE(process.is_down(20.0));
  // 6 work units from t = 0 at rate 0.5: 5 delivered by t = 10, the outage
  // [10, 20) delivers nothing, the last unit takes 2 more time units.
  EXPECT_DOUBLE_EQ(process.finish_time(0.0, 6.0), 22.0);
  EXPECT_DOUBLE_EQ(process.next_change_after(12.0), 20.0);
  EXPECT_DOUBLE_EQ(process.next_change_after(0.0), 10.0);
}

TEST(Crashing, Validation) {
  EXPECT_THROW(CrashingAvailability(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(CrashingAvailability(std::make_unique<ConstantAvailability>(1.0), -1.0),
               std::invalid_argument);
  EXPECT_THROW(CrashingAvailability(std::make_unique<ConstantAvailability>(1.0), 5.0, 5.0),
               std::invalid_argument);
  EXPECT_THROW(CrashingAvailability(std::make_unique<ConstantAvailability>(1.0), 5.0, 4.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::sysmodel
