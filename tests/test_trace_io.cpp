#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cdsf/paper_example.hpp"
#include "ra/heuristics.hpp"
#include "ra/robustness.hpp"
#include "sysmodel/trace_io.hpp"

namespace cdsf {
namespace {

constexpr const char* kTraceText = R"(# machine-17 availability log
time,availability
0,100
100,50
250,75
400,25
)";

// ---------------------------------------------------------------- parsing --

TEST(TraceIo, ParsesCsvWithHeaderAndComments) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text(kTraceText);
  ASSERT_EQ(trace.time_points.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.time_points[1], 100.0);
  // Percent form converted to fractions.
  EXPECT_DOUBLE_EQ(trace.values[0], 1.0);
  EXPECT_DOUBLE_EQ(trace.values[3], 0.25);
}

TEST(TraceIo, FractionFormAccepted) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text("0,0.8\n10,0.5\n");
  EXPECT_DOUBLE_EQ(trace.values[0], 0.8);
  EXPECT_DOUBLE_EQ(trace.values[1], 0.5);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(sysmodel::parse_trace_text(""), std::invalid_argument);
  EXPECT_THROW(sysmodel::parse_trace_text("0 0.5\n"), std::runtime_error);     // no comma
  EXPECT_THROW(sysmodel::parse_trace_text("5,0.5\n"), std::invalid_argument);  // not at 0
  EXPECT_THROW(sysmodel::parse_trace_text("0,0.5\n0,0.6\n"), std::invalid_argument);
  EXPECT_THROW(sysmodel::parse_trace_text("0,0.0\n"), std::invalid_argument);  // value 0
  EXPECT_THROW(sysmodel::parse_trace_text("0,0.5\nx,y\n"), std::runtime_error);
}

TEST(TraceIo, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/cdsf_trace_test.csv";
  {
    std::ofstream out(path);
    out << kTraceText;
  }
  const sysmodel::ParsedTrace trace = sysmodel::load_trace(path);
  EXPECT_EQ(trace.values.size(), 4u);
  std::remove(path.c_str());
  EXPECT_THROW(sysmodel::load_trace("/no/such/file.csv"), std::runtime_error);
}

// ----------------------------------------------------------------- process --

TEST(TraceIo, ProcessReproducesTheTrace) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text(kTraceText);
  const auto process = trace.make_process();
  EXPECT_DOUBLE_EQ(process->availability_at(50.0), 1.0);
  EXPECT_DOUBLE_EQ(process->availability_at(100.0), 0.5);
  EXPECT_DOUBLE_EQ(process->availability_at(300.0), 0.75);
  EXPECT_DOUBLE_EQ(process->availability_at(1000.0), 0.25);
}

// -------------------------------------------------------------- to_pmf ----

TEST(TraceIo, PmfIsTimeWeighted) {
  // Steps: 1.0 for 100, 0.5 for 150, 0.75 for 150, 0.25 for 100 (horizon
  // 500). Total 500.
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text(kTraceText);
  const pmf::Pmf pmf = trace.to_pmf(500.0);
  EXPECT_NEAR(pmf.cdf(0.25), 100.0 / 500.0, 1e-12);
  EXPECT_NEAR(pmf.cdf(0.5), 250.0 / 500.0, 1e-12);
  EXPECT_NEAR(pmf.expectation(),
              (1.0 * 100 + 0.5 * 150 + 0.75 * 150 + 0.25 * 100) / 500.0, 1e-12);
}

TEST(TraceIo, PmfMergesRepeatedValues) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text("0,0.5\n10,1.0\n20,0.5\n");
  const pmf::Pmf pmf = trace.to_pmf(30.0);
  EXPECT_EQ(pmf.size(), 2u);
  EXPECT_NEAR(pmf.cdf(0.5), 20.0 / 30.0, 1e-12);
}

TEST(TraceIo, PmfHorizonValidation) {
  const sysmodel::ParsedTrace trace = sysmodel::parse_trace_text("0,0.5\n10,1.0\n");
  EXPECT_THROW(trace.to_pmf(10.0), std::invalid_argument);
  EXPECT_NO_THROW(trace.to_pmf(10.5));
}

// ------------------------------------------- end-to-end: trace -> Stage I --

TEST(TraceIo, HistoricalTraceDrivesStageOne) {
  // Build Â for both paper types from synthetic "historical logs" whose
  // time-weighted PMFs equal the paper's case 1, and check Stage I still
  // lands on the paper's allocation.
  const sysmodel::ParsedTrace type1 =
      sysmodel::parse_trace_text("0,0.75\n500,1.0\n");  // 50/50
  const sysmodel::ParsedTrace type2 =
      sysmodel::parse_trace_text("0,0.25\n250,0.5\n500,1.0\n");  // 25/25/50
  const sysmodel::AvailabilitySpec reference(
      "from-traces", {type1.to_pmf(1000.0), type2.to_pmf(1000.0)});

  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, reference, example.deadline);
  const ra::Allocation allocation = ra::ExhaustiveOptimal().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  EXPECT_EQ(allocation, core::paper_robust_allocation());
  EXPECT_NEAR(evaluator.joint_probability(allocation), 0.745, 0.01);
}

// ----------------------------------------------------------- portfolio ----

TEST(BestOfPortfolio, MatchesExhaustiveAtPaperScale) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const ra::Allocation portfolio = ra::BestOfPortfolio().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo);
  const double optimal = evaluator.joint_probability(ra::ExhaustiveOptimal().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo));
  EXPECT_NEAR(evaluator.joint_probability(portfolio), optimal, 1e-9);
}

TEST(BestOfPortfolio, AtLeastAsGoodAsEveryMember) {
  const auto example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const double portfolio = evaluator.joint_probability(ra::BestOfPortfolio().allocate(
      evaluator, example.platform, ra::CountRule::kPowerOfTwo));
  for (const auto& heuristic : ra::all_heuristics(false)) {
    const double member = evaluator.joint_probability(
        heuristic->allocate(evaluator, example.platform, ra::CountRule::kPowerOfTwo));
    EXPECT_GE(portfolio, member - 1e-9) << heuristic->name();
  }
}

}  // namespace
}  // namespace cdsf
