#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cdsf::util {
namespace {

// ------------------------------------------------------------------ rng --

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownReferenceValue) {
  // First output for seed 0 from the reference implementation.
  SplitMix64 gen(0);
  EXPECT_EQ(gen.next(), 0xE220A8397B1DCDAFULL);
}

TEST(RngStream, Uniform01InRange) {
  RngStream rng(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngStream, UniformIntCoversInclusiveRange) {
  RngStream rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngStream, SameSeedSameDraws) {
  RngStream a(5);
  RngStream b(5);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(RngStream, NormalMeanApproximatelyCorrect) {
  RngStream rng(17);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(SeedSequence, ChildSeedsAreOrderIndependent) {
  SeedSequence seq(42);
  const std::uint64_t fifth = seq.child(5);
  const std::uint64_t second = seq.child(2);
  EXPECT_EQ(seq.child(5), fifth);
  EXPECT_EQ(seq.child(2), second);
  EXPECT_NE(fifth, second);
}

TEST(SeedSequence, ChildrenOfDifferentMastersDiffer) {
  EXPECT_NE(SeedSequence(1).child(0), SeedSequence(2).child(0));
}

TEST(SeedSequence, ManyChildrenAreDistinct) {
  SeedSequence seq(1234);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(seq.child(i));
  EXPECT_EQ(seen.size(), 1000u);
}

// ---------------------------------------------------------------- table --

TEST(Table, RendersHeadersAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, TitleAppearsBeforeTable) {
  Table table({"x"});
  table.set_title("My Title");
  table.add_row({"1"});
  EXPECT_EQ(table.render().rfind("My Title", 0), 0u);
}

TEST(Table, SeparatorAddsRule) {
  Table table({"x"});
  table.add_row({"1"});
  const std::string before = table.render();
  const auto lines_before = std::count(before.begin(), before.end(), '\n');
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), lines_before + 1);
}

TEST(Table, AlignmentLeftPadsRight) {
  Table table({"col"});
  table.set_alignment({Align::kLeft});
  table.add_row({"ab"});
  table.add_row({"abcd"});
  EXPECT_NE(table.render().find("| ab   |"), std::string::npos);
}

TEST(TableFormat, FixedAndPercent) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_percent(0.745, 1), "74.5%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

// ------------------------------------------------------------------ csv --

TEST(Csv, PlainCellsUnquoted) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesCellsWithCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"x,y", "he said \"hi\""});
  EXPECT_EQ(out.str(), "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, EscapeIsIdempotentForPlainText) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

// ------------------------------------------------------------------ cli --

TEST(Cli, DefaultsApplyWithoutArguments) {
  Cli cli("test");
  cli.add_int("count", 7, "a count");
  cli.add_double("rate", 1.5, "a rate");
  cli.add_string("name", "dflt", "a name");
  cli.add_flag("verbose", "a flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "dflt");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, ParsesSeparateAndEqualsForms) {
  Cli cli("test");
  cli.add_int("a", 0, "");
  cli.add_int("b", 0, "");
  const char* argv[] = {"prog", "--a", "3", "--b=4"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("a"), 3);
  EXPECT_EQ(cli.get_int("b"), 4);
}

TEST(Cli, FlagPresenceSetsTrue) {
  Cli cli("test");
  cli.add_flag("on", "");
  const char* argv[] = {"prog", "--on"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_flag("on"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  const char* argv[] = {"prog", "--n", "12x"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("n"), std::invalid_argument);
}

TEST(Cli, WrongTypeAccessThrows) {
  Cli cli("test");
  cli.add_int("n", 0, "");
  EXPECT_THROW(cli.get_string("n"), std::logic_error);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// ------------------------------------------------------------------ log --

TEST(Log, ThresholdSuppressesBelowLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  // These must not crash and must be cheap; output itself is not captured.
  CDSF_LOG_DEBUG << "invisible";
  CDSF_LOG_ERROR << "visible";
  set_log_level(saved);
  SUCCEED();
}

TEST(Log, LevelRoundTrips) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
  set_log_level(saved);
}

}  // namespace
}  // namespace cdsf::util
