// Crash-consistent checkpoint recovery: a complete cdsf.master_checkpoint/1
// document round-trips exactly, and a torn one (truncated at ANY byte)
// salvages a strict prefix of the WAL without ever throwing — the
// torn-write contract a recovery path must honor to be worth having.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/master_worker.hpp"
#include "sim/wal_recovery.hpp"
#include "test_support.hpp"

namespace cdsf::sim {
namespace {

using test::full_availability;
using test::simple_app;

bool records_equal(const WalRecord& a, const WalRecord& b) {
  return a.kind == b.kind && a.time == b.time && a.worker == b.worker && a.seq == b.seq &&
         a.first == b.first && a.count == b.count;
}

/// One checkpointed MPI run with the final state written to `path`.
RunResult checkpointed_run(const std::string& path) {
  SimConfig config;
  config.scheduling_overhead = 0.0;
  config.iteration_cov = 0.0;
  config.availability_mode = AvailabilityMode::kConstantMean;
  config.checkpoint.enabled = true;
  config.checkpoint.interval = 50.0;
  config.checkpoint.json_path = path;
  const auto app = simple_app("a", 0, 240, {500.0});
  return simulate_loop_mpi(app, 0, 3, full_availability(1), dls::TechniqueId::kFAC, config,
                           MessageModel{}, 11)
      .run;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(WalRecovery, KindNamesRoundTrip) {
  for (WalRecord::Kind kind :
       {WalRecord::Kind::kAssign, WalRecord::Kind::kAck, WalRecord::Kind::kComplete,
        WalRecord::Kind::kSnapshot, WalRecord::Kind::kRestart}) {
    EXPECT_EQ(wal_kind_from_name(wal_kind_name(kind)), kind);
  }
  EXPECT_THROW(wal_kind_from_name("checkpoint"), std::invalid_argument);
  EXPECT_THROW(wal_kind_from_name(""), std::invalid_argument);
}

TEST(WalRecovery, CompleteCheckpointRoundTripsExactly) {
  const std::string path = "wal_recovery_full.json";
  const RunResult run = checkpointed_run(path);
  ASSERT_FALSE(run.wal.empty());

  const RecoveredCheckpoint recovered = load_checkpoint_json(path);
  EXPECT_TRUE(recovered.complete);
  EXPECT_FALSE(recovered.torn);
  EXPECT_DOUBLE_EQ(recovered.makespan, run.makespan);
  EXPECT_EQ(recovered.wal_records, run.checkpoint.wal_records);
  EXPECT_EQ(recovered.snapshots, run.checkpoint.snapshots);
  EXPECT_EQ(recovered.master_restarts, run.checkpoint.master_restarts);
  ASSERT_EQ(recovered.wal.size(), run.wal.size());
  for (std::size_t i = 0; i < run.wal.size(); ++i) {
    EXPECT_TRUE(records_equal(recovered.wal[i], run.wal[i])) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(WalRecovery, TruncationSweepNeverThrowsAndSalvagesAPrefix) {
  const std::string path = "wal_recovery_sweep.json";
  const RunResult run = checkpointed_run(path);
  const std::string full = read_file(path);
  std::remove(path.c_str());
  ASSERT_FALSE(full.empty());

  std::size_t previous_records = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    RecoveredCheckpoint recovered;
    ASSERT_NO_THROW(recovered = recover_checkpoint_json(
                        std::string_view(full).substr(0, cut)))
        << "truncated at byte " << cut;
    // Whatever survived must be a prefix of the real log, record for
    // record — salvage may lose the tail, never invent or reorder.
    ASSERT_LE(recovered.wal.size(), run.wal.size()) << "truncated at byte " << cut;
    for (std::size_t i = 0; i < recovered.wal.size(); ++i) {
      ASSERT_TRUE(records_equal(recovered.wal[i], run.wal[i]))
          << "truncated at byte " << cut << ", record " << i;
    }
    // Longer prefixes never recover fewer records.
    ASSERT_GE(recovered.wal.size(), previous_records) << "truncated at byte " << cut;
    previous_records = recovered.wal.size();
    if (cut < full.size()) {
      // Cutting only trailing whitespace leaves the document complete;
      // any cut into the JSON itself must flag the tear.
      const bool only_whitespace_cut =
          full.find_first_not_of(" \n\r\t", cut) == std::string::npos;
      ASSERT_EQ(recovered.complete, only_whitespace_cut) << "truncated at byte " << cut;
      ASSERT_NE(recovered.torn, recovered.complete) << "truncated at byte " << cut;
    }
  }
  // The untruncated text is the complete document.
  const RecoveredCheckpoint whole = recover_checkpoint_json(full);
  EXPECT_TRUE(whole.complete);
  EXPECT_EQ(whole.wal.size(), run.wal.size());
}

TEST(WalRecovery, TornHeaderFieldIsNotTrustedMidNumber) {
  // A tear inside a number must drop the field, not silently shorten it:
  // "makespan": 1234.5 cut after "123" reads as 123 to a naive scanner.
  const std::string torn = "{\n  \"schema\": \"cdsf.master_checkpoint/1\",\n"
                           "  \"makespan\": 123";
  const RecoveredCheckpoint recovered = recover_checkpoint_json(torn);
  EXPECT_TRUE(recovered.torn);
  EXPECT_DOUBLE_EQ(recovered.makespan, 0.0);
}

TEST(WalRecovery, GarbageIsTornNotFatal) {
  for (const char* text : {"", "not json", "{\"schema\": 3", "[1, 2"}) {
    RecoveredCheckpoint recovered;
    EXPECT_NO_THROW(recovered = recover_checkpoint_json(text)) << text;
    EXPECT_TRUE(recovered.wal.empty()) << text;
  }
}

TEST(WalRecovery, CompleteDocumentWithWrongSchemaThrows) {
  // A complete parse that is NOT a master checkpoint is a different
  // corruption class than a torn write and must be loud, not salvaged.
  EXPECT_THROW((void)recover_checkpoint_json("{\"schema\": \"cdsf.flight_record/1\"}"),
               std::runtime_error);
  EXPECT_THROW((void)recover_checkpoint_json("{}"), std::runtime_error);
}

TEST(WalRecovery, MissingFileThrows) {
  EXPECT_THROW((void)load_checkpoint_json("wal_recovery_does_not_exist.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace cdsf::sim
