#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"
#include "workload/application.hpp"
#include "workload/generator.hpp"

namespace cdsf::workload {
namespace {

// -------------------------------------------------------------- TimeLaw --

TEST(TimeLaw, MakesEachKindWithMatchingMoments) {
  for (TimeLawKind kind : {TimeLawKind::kNormal, TimeLawKind::kLogNormal, TimeLawKind::kGamma,
                           TimeLawKind::kUniform}) {
    const TimeLaw law{kind, 1000.0, 0.1};
    const auto dist = law.make_distribution();
    EXPECT_NEAR(dist->mean(), 1000.0, 1e-6) << to_string(kind);
    EXPECT_NEAR(std::sqrt(dist->variance()), 100.0, 1e-6) << to_string(kind);
  }
}

TEST(TimeLaw, ExponentialMatchesMeanOnly) {
  const TimeLaw law{TimeLawKind::kExponential, 500.0, 0.1};
  const auto dist = law.make_distribution();
  EXPECT_NEAR(dist->mean(), 500.0, 1e-9);
  EXPECT_NEAR(std::sqrt(dist->variance()), 500.0, 1e-9);  // cov fixed at 1
}

TEST(TimeLaw, Validation) {
  EXPECT_THROW((TimeLaw{TimeLawKind::kNormal, 0.0, 0.1}).make_distribution(),
               std::invalid_argument);
  EXPECT_THROW((TimeLaw{TimeLawKind::kNormal, 10.0, 0.0}).make_distribution(),
               std::invalid_argument);
}

TEST(TimeLaw, KindNames) {
  EXPECT_EQ(to_string(TimeLawKind::kNormal), "Normal");
  EXPECT_EQ(to_string(TimeLawKind::kExponential), "Exponential");
}

// ---------------------------------------------------------- Application --

TEST(Application, PaperApp1Characteristics) {
  const Application app = test::simple_app("app1", 439, 1024, {1800.0, 4000.0});
  EXPECT_EQ(app.total_iterations(), 1463);
  EXPECT_NEAR(app.split().serial_fraction, 0.3001, 0.0002);  // Table II: 30%
  EXPECT_NEAR(app.split().parallel_fraction, 0.6999, 0.0002);
  EXPECT_EQ(app.type_count(), 2u);
  EXPECT_DOUBLE_EQ(app.mean_time(0), 1800.0);
  EXPECT_DOUBLE_EQ(app.mean_time(1), 4000.0);
}

TEST(Application, MeanIterationTime) {
  const Application app = test::simple_app("a", 100, 900, {1000.0});
  EXPECT_DOUBLE_EQ(app.mean_iteration_time(0), 1.0);
}

TEST(Application, ExpectedParallelTimeFollowsEquationTwo) {
  const Application app = test::simple_app("a", 300, 700, {1000.0});
  EXPECT_DOUBLE_EQ(app.expected_parallel_time(0, 1), 1000.0);
  EXPECT_DOUBLE_EQ(app.expected_parallel_time(0, 2), 300.0 + 350.0);
  EXPECT_DOUBLE_EQ(app.expected_parallel_time(0, 1000000), 300.0 + 0.0007);
}

TEST(Application, SingleProcessorPmfMatchesLaw) {
  const Application app = test::simple_app("a", 0, 1000, {2000.0}, 0.1);
  const pmf::Pmf p = app.single_processor_pmf(0, 128);
  EXPECT_NEAR(p.expectation(), 2000.0, 1.0);
  EXPECT_NEAR(p.stddev(), 200.0, 10.0);
  EXPECT_GT(p.min(), 0.0);
}

TEST(Application, ParallelPmfScalesPulses) {
  const Application app = test::simple_app("a", 500, 500, {1000.0});
  const pmf::Pmf p = app.parallel_pmf(0, 2, 64);
  EXPECT_NEAR(p.expectation(), 750.0, 1.0);
}

TEST(Application, Validation) {
  EXPECT_THROW(Application("x", 0, 0, {{TimeLawKind::kNormal, 1.0, 0.1}}),
               std::invalid_argument);
  EXPECT_THROW(Application("x", -1, 10, {{TimeLawKind::kNormal, 1.0, 0.1}}),
               std::invalid_argument);
  EXPECT_THROW(Application("x", 1, 1, {}), std::invalid_argument);
  const Application app = test::simple_app("a", 1, 1, {1.0});
  EXPECT_THROW(app.time_law(5), std::out_of_range);
}

TEST(Application, ZeroSerialIterationsAllowed) {
  const Application app = test::simple_app("a", 0, 100, {10.0});
  EXPECT_DOUBLE_EQ(app.split().serial_fraction, 0.0);
  EXPECT_DOUBLE_EQ(app.expected_parallel_time(0, 10), 1.0);
}

// ----------------------------------------------------------------- Batch --

TEST(Batch, AddAndAccess) {
  Batch batch;
  EXPECT_TRUE(batch.empty());
  batch.add(test::simple_app("a", 1, 9, {10.0, 20.0}));
  batch.add(test::simple_app("b", 2, 8, {30.0, 40.0}));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.at(1).name(), "b");
  EXPECT_EQ(batch.type_count(), 2u);
}

TEST(Batch, RejectsTypeCountMismatch) {
  Batch batch;
  batch.add(test::simple_app("a", 1, 9, {10.0, 20.0}));
  EXPECT_THROW(batch.add(test::simple_app("b", 1, 9, {10.0})), std::invalid_argument);
}

TEST(Batch, RangeForIteration) {
  Batch batch({test::simple_app("a", 1, 9, {10.0}), test::simple_app("b", 1, 9, {10.0})});
  std::size_t count = 0;
  for (const Application& app : batch) {
    EXPECT_FALSE(app.name().empty());
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

// ------------------------------------------------------------- generator --

TEST(Generator, ProducesRequestedShape) {
  BatchSpec spec;
  spec.applications = 12;
  spec.processor_types = 3;
  const Batch batch = generate_batch(spec, 99);
  EXPECT_EQ(batch.size(), 12u);
  EXPECT_EQ(batch.type_count(), 3u);
}

TEST(Generator, DeterministicGivenSeed) {
  const BatchSpec spec;
  const Batch a = generate_batch(spec, 7);
  const Batch b = generate_batch(spec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Generator, DifferentSeedsDiffer) {
  const BatchSpec spec;
  const Batch a = generate_batch(spec, 1);
  const Batch b = generate_batch(spec, 2);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.at(i) == b.at(i))) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, RespectsRanges) {
  BatchSpec spec;
  spec.applications = 50;
  spec.min_total_iterations = 100;
  spec.max_total_iterations = 200;
  spec.min_serial_fraction = 0.1;
  spec.max_serial_fraction = 0.2;
  spec.min_mean_time = 500.0;
  spec.max_mean_time = 1000.0;
  const Batch batch = generate_batch(spec, 3);
  for (const Application& app : batch) {
    EXPECT_GE(app.total_iterations(), 100);
    EXPECT_LE(app.total_iterations(), 200);
    EXPECT_GE(app.split().serial_fraction, 0.05);  // rounding slack
    EXPECT_LE(app.split().serial_fraction, 0.25);
    for (std::size_t t = 0; t < app.type_count(); ++t) {
      EXPECT_GE(app.mean_time(t), 500.0);
      EXPECT_LE(app.mean_time(t), 1000.0);
    }
    EXPECT_GE(app.parallel_iterations(), 1);  // always at least one parallel iteration
  }
}

TEST(Generator, Validation) {
  BatchSpec spec;
  spec.applications = 0;
  EXPECT_THROW(generate_batch(spec, 1), std::invalid_argument);
  spec = BatchSpec{};
  spec.max_total_iterations = spec.min_total_iterations - 1;
  EXPECT_THROW(generate_batch(spec, 1), std::invalid_argument);
  spec = BatchSpec{};
  spec.min_mean_time = -1.0;
  EXPECT_THROW(generate_batch(spec, 1), std::invalid_argument);
  spec = BatchSpec{};
  spec.max_serial_fraction = 1.5;
  EXPECT_THROW(generate_batch(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cdsf::workload
