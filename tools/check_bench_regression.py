#!/usr/bin/env python3
"""Recorded-benchmark regression gate for CI (ROADMAP item 2).

Compares a freshly generated benchmark JSON document against the recorded
baseline committed at the repository root (BENCH_online_overload.json and
friends). The gated benchmarks are DETERMINISTIC -- fixed seeds, simulated
time only, medians over seeds -- so every service-level leaf (hit rates,
shed/reject rates, utilization, queueing-delay medians) must reproduce the
recorded value up to a tiny relative tolerance that only absorbs
cross-toolchain floating-point drift. A real behavior change (an admission
regression, a scheduling change that moves the service-level curve) lands
far outside the tolerance and fails the gate; the fix is either to repair
the regression or to consciously re-record the baseline in the same PR
that changes the behavior.

Usage:
    python3 tools/check_bench_regression.py RECORDED.json FRESH.json
    python3 tools/check_bench_regression.py --suite \
        [--manifest tools/bench_baselines.json] \
        [--bench-dir build/bench] [--baseline-dir .]

The two-argument form compares one pre-generated document. The --suite
form reads the manifest (tools/bench_baselines.json), re-runs every
listed bench with its recorded arguments plus `--json` into a temporary
directory, and gates each fresh document against its committed baseline
-- this is what the `bench_regression` ctest and the CI release job run,
so EVERY recorded baseline (speculation, gray failure, online overload,
service storm) is gated, not just the one wired into the workflow by
hand.

Only numeric leaves whose key matches GATED_KEY_PATTERN are compared (the
curve values, not counters or configuration echoes). Exit status 0 when
every gated leaf matches, 1 on any mismatch, a schema mismatch, or a
missing/extra gated leaf. Requires only the Python standard library.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

# Leaves that carry the service-level curve; everything else (config echo,
# schedule counts) is structural and compared for presence only.
GATED_KEY_PATTERN = re.compile(
    r"(hit_rate|shed_rate|reject_rate|utilization|queueing_delay|median|mean)"
)
REL_TOLERANCE = 1e-6
ABS_TOLERANCE = 1e-9


def numeric_leaves(node, path=""):
    """Yields (path, value) for every numeric leaf, depth-first."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from numeric_leaves(value, f"{path}[{index}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def gated(leaves):
    return {path: value for path, value in leaves if GATED_KEY_PATTERN.search(path)}


def compare_files(recorded_path: str, fresh_path: str) -> int:
    """The original two-file gate; returns a process exit status."""
    try:
        with open(recorded_path, encoding="utf-8") as handle:
            recorded = json.load(handle)
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench_regression: {error}", file=sys.stderr)
        return 1

    if recorded.get("schema") != fresh.get("schema"):
        print(f"check_bench_regression: schema mismatch: recorded "
              f"{recorded.get('schema')!r} vs fresh {fresh.get('schema')!r}",
              file=sys.stderr)
        return 1

    recorded_leaves = gated(numeric_leaves(recorded))
    fresh_leaves = gated(numeric_leaves(fresh))
    if not recorded_leaves:
        print(f"check_bench_regression: no gated leaves in {recorded_path}",
              file=sys.stderr)
        return 1

    failed = False
    for path in sorted(recorded_leaves.keys() | fresh_leaves.keys()):
        if path not in fresh_leaves:
            print(f"  {path}: missing from fresh run", file=sys.stderr)
            failed = True
            continue
        if path not in recorded_leaves:
            print(f"  {path}: not in recorded baseline (re-record?)",
                  file=sys.stderr)
            failed = True
            continue
        want, got = recorded_leaves[path], fresh_leaves[path]
        scale = max(abs(want), abs(got))
        if abs(got - want) > max(ABS_TOLERANCE, REL_TOLERANCE * scale):
            print(f"  {path}: recorded {want!r} vs fresh {got!r}",
                  file=sys.stderr)
            failed = True

    if failed:
        print(f"check_bench_regression: {fresh_path} diverges from the "
              f"recorded baseline {recorded_path} -- fix the regression or "
              f"re-record the baseline in the same PR", file=sys.stderr)
        return 1
    print(f"check_bench_regression: {len(recorded_leaves)} gated leaves "
          f"match {recorded_path}")
    return 0


def run_suite(manifest_path: str, bench_dir: str, baseline_dir: str) -> int:
    """Re-runs every manifest bench and gates it against its baseline."""
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_bench_regression: {error}", file=sys.stderr)
        return 1
    if manifest.get("schema") != "cdsf.bench_baselines/1":
        print(f"check_bench_regression: unexpected manifest schema "
              f"{manifest.get('schema')!r} in {manifest_path}", file=sys.stderr)
        return 1
    entries = manifest.get("baselines", [])
    if not entries:
        print(f"check_bench_regression: empty manifest {manifest_path}",
              file=sys.stderr)
        return 1

    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench_regression_") as scratch:
        for entry in entries:
            baseline = os.path.join(baseline_dir, entry["baseline"])
            bench = os.path.join(bench_dir, entry["bench"])
            fresh = os.path.join(scratch, "fresh_" + entry["baseline"])
            command = [bench, *entry.get("args", []), "--json", fresh]
            print(f"check_bench_regression: {' '.join(command)}")
            try:
                completed = subprocess.run(
                    command, stdout=subprocess.DEVNULL, check=False)
            except OSError as error:
                print(f"  {bench}: {error}", file=sys.stderr)
                failures += 1
                continue
            if completed.returncode != 0:
                print(f"  {bench}: exited {completed.returncode}",
                      file=sys.stderr)
                failures += 1
                continue
            if compare_files(baseline, fresh) != 0:
                failures += 1
    if failures:
        print(f"check_bench_regression: {failures} of {len(entries)} "
              f"baseline(s) FAILED the gate", file=sys.stderr)
        return 1
    print(f"check_bench_regression: all {len(entries)} recorded baselines "
          f"reproduced")
    return 0


def main(argv: list) -> int:
    if len(argv) == 3 and not argv[1].startswith("-"):
        return compare_files(argv[1], argv[2])
    parser = argparse.ArgumentParser(
        prog="check_bench_regression.py",
        description="Recorded-benchmark regression gate")
    parser.add_argument("--suite", action="store_true",
                        help="re-run every manifest bench and gate it")
    parser.add_argument("--manifest", default="tools/bench_baselines.json")
    parser.add_argument("--bench-dir", default="build/bench")
    parser.add_argument("--baseline-dir", default=".")
    options = parser.parse_args(argv[1:])
    if not options.suite:
        print(__doc__, file=sys.stderr)
        return 1
    return run_suite(options.manifest, options.bench_dir, options.baseline_dir)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
