#!/usr/bin/env python3
"""Flight-recorder overhead gate for CI.

Runs bench_micro_sim twice -- once with the flight recorder disabled
(CDSF_FLIGHT=off) and once with the shipping default (recorder on) -- and
compares the median real_time of the simulate-loop benchmark. The recorder
rides inside the hot simulation loop, so its cost budget is part of the
observability contract (docs/observability.md): the recorder-on median may
not regress more than BUDGET over recorder-off. A NOISE allowance on top
keeps shared CI runners from flaking the gate; a genuine regression shows
up far above budget+noise.

Usage:
    python3 tools/check_obs_overhead.py [path/to/bench_micro_sim]

Exit status 0 when within budget, 1 on a budget violation or a benchmark
that fails to run. Requires only the Python standard library.
"""

import json
import os
import subprocess
import sys
import tempfile

# The benchmark whose inner loop carries the recorder; the name must stay
# in sync with bench/bench_micro_sim.cpp and BENCH_baseline.json.
BENCH_FILTER = "BM_SimulateLoopApp3"
REPETITIONS = 5
BUDGET = 0.02  # documented recorder-on overhead budget (2%)
NOISE = 0.03   # CI-runner jitter allowance on top of the budget


def run_bench(binary: str, flight_off: bool) -> dict:
    """Runs the benchmark and returns {name: median_real_time_ns}."""
    env = dict(os.environ)
    if flight_off:
        env["CDSF_FLIGHT"] = "off"
    else:
        env.pop("CDSF_FLIGHT", None)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as out:
        out_path = out.name
    try:
        cmd = [
            binary,
            f"--benchmark_filter={BENCH_FILTER}",
            f"--benchmark_repetitions={REPETITIONS}",
            "--benchmark_report_aggregates_only=true",
            "--benchmark_out_format=json",
            f"--benchmark_out={out_path}",
        ]
        subprocess.run(cmd, env=env, check=True)
        with open(out_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    finally:
        os.unlink(out_path)
    medians = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        if name.endswith("_median"):
            medians[name[: -len("_median")]] = float(bench["real_time"])
    return medians


def main(argv: list) -> int:
    binary = argv[1] if len(argv) > 1 else "build/bench/bench_micro_sim"
    if not os.path.exists(binary):
        print(f"check_obs_overhead: benchmark binary not found: {binary}",
              file=sys.stderr)
        return 1

    print(f"check_obs_overhead: {BENCH_FILTER} x{REPETITIONS} repetitions, "
          f"budget {BUDGET:.0%} + noise allowance {NOISE:.0%}")
    off = run_bench(binary, flight_off=True)
    on = run_bench(binary, flight_off=False)

    failed = False
    for name, base in sorted(off.items()):
        if name not in on:
            print(f"  {name}: missing from recorder-on run", file=sys.stderr)
            failed = True
            continue
        ratio = on[name] / base if base > 0.0 else float("inf")
        overhead = ratio - 1.0
        verdict = "ok" if overhead <= BUDGET + NOISE else "FAIL"
        print(f"  {name}: off={base:.1f}ns on={on[name]:.1f}ns "
              f"overhead={overhead:+.2%} ({verdict})")
        if verdict == "FAIL":
            failed = True
    if not off:
        print(f"check_obs_overhead: no *_median entries matched "
              f"{BENCH_FILTER}", file=sys.stderr)
        failed = True

    if failed:
        print("check_obs_overhead: recorder overhead exceeds the "
              f"{BUDGET:.0%} budget (docs/observability.md)", file=sys.stderr)
        return 1
    print("check_obs_overhead: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
